"""Sequential minimal optimisation for the C-SVC dual (Eq. 3).

Solves::

    min_a   0.5 a' Q a - e' a
    s.t.    0 <= a_i <= C_i,   y' a = 0

with ``Q_ij = y_i y_j k(x_i, x_j)``, using maximal-violating-pair working
set selection (the classic LIBSVM strategy): at each step pick the index
pair that most violates the KKT conditions, solve the two-variable
subproblem analytically, clip to the box, and update the gradient.  This
is the same optimisation LIBSVM performs, minus shrinking — training sets
here are per-cluster and small, so clarity wins over the last constant
factor.

Per-sample box bounds ``C_i`` implement class weighting, which the
population-balancing step leans on for residually imbalanced clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SvmError

_TAU = 1e-12


@dataclass
class SmoResult:
    """Solver output: dual variables, bias, and convergence telemetry."""

    alpha: np.ndarray
    bias: float
    iterations: int
    converged: bool
    objective: float


def solve_smo(
    kernel_matrix: np.ndarray,
    labels: np.ndarray,
    upper_bounds: np.ndarray,
    tolerance: float = 1e-3,
    max_iterations: int = 100_000,
) -> SmoResult:
    """Solve the C-SVC dual by maximal-violating-pair SMO.

    Parameters
    ----------
    kernel_matrix:
        Precomputed ``(n, n)`` Gram matrix ``k(x_i, x_j)``.
    labels:
        Class labels in ``{-1, +1}``.
    upper_bounds:
        Per-sample box bound ``C_i`` (class weighting folds in here).
    tolerance:
        KKT violation threshold for convergence.
    max_iterations:
        Hard iteration cap; hitting it returns ``converged=False`` rather
        than raising, because a slightly-unconverged SVM is still a usable
        classifier during iterative parameter search.
    """
    n = labels.shape[0]
    if kernel_matrix.shape != (n, n):
        raise SvmError(
            f"kernel matrix shape {kernel_matrix.shape} does not match {n} labels"
        )
    if not np.all(np.isin(labels, (-1, 1))):
        raise SvmError("labels must be -1 or +1")
    if np.any(upper_bounds <= 0):
        raise SvmError("upper bounds must be positive")
    if len(np.unique(labels)) < 2:
        raise SvmError("SMO needs both classes present")

    y = labels.astype(np.float64)
    q_matrix = kernel_matrix * np.outer(y, y)
    alpha = np.zeros(n)
    gradient = -np.ones(n)  # gradient of the dual objective at alpha = 0

    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        # I_up: can increase y_i a_i ; I_low: can decrease it.
        up_mask = ((y > 0) & (alpha < upper_bounds)) | ((y < 0) & (alpha > 0))
        low_mask = ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < upper_bounds))
        minus_y_grad = -y * gradient
        up_values = np.where(up_mask, minus_y_grad, -np.inf)
        low_values = np.where(low_mask, minus_y_grad, np.inf)
        i = int(np.argmax(up_values))
        j = int(np.argmin(low_values))
        gap = up_values[i] - low_values[j]
        if gap < tolerance:
            converged = True
            break

        # Two-variable analytic step along the equality constraint.
        quad = q_matrix[i, i] + q_matrix[j, j] - 2.0 * y[i] * y[j] * q_matrix[i, j]
        if quad <= _TAU:
            quad = _TAU
        delta = gap / quad

        # Move y_i a_i up by t and y_j a_j down by t, i.e.
        # a_i += y_i t, a_j -= y_j t, with box clipping on both.
        t = delta
        if y[i] > 0:
            t = min(t, upper_bounds[i] - alpha[i])
        else:
            t = min(t, alpha[i])
        if y[j] > 0:
            t = min(t, alpha[j])
        else:
            t = min(t, upper_bounds[j] - alpha[j])
        if t <= 0:
            converged = True  # numerically stuck at the boundary
            break

        alpha[i] += y[i] * t
        alpha[j] -= y[j] * t
        gradient += t * (y * (kernel_matrix[:, i] - kernel_matrix[:, j]))

    bias = _compute_bias(alpha, gradient, y, upper_bounds)
    objective = float(0.5 * alpha @ (q_matrix @ alpha) - alpha.sum())
    return SmoResult(alpha, bias, iterations, converged, objective)


def _compute_bias(
    alpha: np.ndarray,
    gradient: np.ndarray,
    y: np.ndarray,
    upper_bounds: np.ndarray,
) -> float:
    """Bias from the KKT conditions.

    Free support vectors give ``y_i (f(x_i)) = 1`` exactly; average over
    them.  With no free vectors, take the midpoint of the feasible
    interval defined by the bound vectors.
    """
    free = (alpha > 1e-9) & (alpha < upper_bounds - 1e-9)
    minus_y_grad = -y * gradient
    if np.any(free):
        return float(minus_y_grad[free].mean())
    up_mask = ((y > 0) & (alpha < upper_bounds)) | ((y < 0) & (alpha > 0))
    low_mask = ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < upper_bounds))
    upper = minus_y_grad[up_mask].max() if np.any(up_mask) else 0.0
    lower = minus_y_grad[low_mask].min() if np.any(low_mask) else 0.0
    return float((upper + lower) / 2.0)
