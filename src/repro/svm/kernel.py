"""Kernel functions for the SVM substrate.

The paper uses the Gaussian radial basis kernel (Eq. 3)::

    k(x_n, x_m) = exp(-gamma * ||x_n - x_m||^2)

which is symmetric positive semi-definite, so the dual problem solved by
:mod:`repro.svm.smo` is convex with a global optimum.  A linear kernel is
provided for baselines and tests (its dual is easy to verify by hand).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SvmError

KernelFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


def squared_distances(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between row sets.

    Uses the expansion ``||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` with a
    clamp at zero to absorb the cancellation error the expansion incurs.
    """
    first_sq = np.einsum("ij,ij->i", first, first)
    second_sq = np.einsum("ij,ij->i", second, second)
    cross = first @ second.T
    distances = first_sq[:, None] + second_sq[None, :] - 2.0 * cross
    np.maximum(distances, 0.0, out=distances)
    return distances


def rbf_kernel(gamma: float) -> KernelFunction:
    """The Gaussian RBF kernel with fixed ``gamma`` (Eq. 3)."""
    if gamma <= 0:
        raise SvmError(f"gamma must be positive, got {gamma}")

    def kernel(first: np.ndarray, second: np.ndarray) -> np.ndarray:
        return np.exp(-gamma * squared_distances(first, second))

    return kernel


def linear_kernel() -> KernelFunction:
    """The plain inner-product kernel."""

    def kernel(first: np.ndarray, second: np.ndarray) -> np.ndarray:
        return first @ second.T

    return kernel


def make_kernel(name: str, gamma: float = 0.01) -> KernelFunction:
    """Kernel factory by name ("rbf" or "linear")."""
    if name == "rbf":
        return rbf_kernel(gamma)
    if name == "linear":
        return linear_kernel()
    raise SvmError(f"unknown kernel {name!r}")
