"""Two-class soft-margin C-SVM (Section III-D1).

:class:`SupportVectorClassifier` mirrors the LIBSVM C-SVC the paper used:
RBF kernel, per-class weights, decision function
``f(x) = sum_i a_i y_i k(x_i, x) + b``.  Prediction keeps only support
vectors.  An adjustable decision threshold lets the detector trade hit
rate against extras (the "ours_low"/"ours_med" operating points and the
Fig. 15 sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import NotFittedError, SvmError
from repro.svm.kernel import KernelFunction, make_kernel
from repro.svm.scaling import MinMaxScaler, StandardScaler
from repro.svm.smo import SmoResult, solve_smo


@dataclass
class SupportVectorClassifier:
    """Soft-margin C-SVM with RBF (or linear) kernel.

    Parameters mirror Eq. 3; ``class_weight`` maps label (+1/-1) to a
    multiplier on ``C`` so the minority class can be penalised harder.
    """

    C: float = 1000.0
    gamma: float = 0.01
    kernel: str = "rbf"
    class_weight: Optional[dict[int, float]] = None
    tolerance: float = 1e-3
    max_iterations: int = 100_000
    #: "minmax" (LIBSVM's svm-scale convention, against which the paper's
    #: gamma schedule is calibrated), "standard", or "none".
    scale_features: str = "minmax"
    #: Far-field guard for RBF kernels: as a sample's maximum kernel
    #: similarity to any support vector falls below this floor, the
    #: decision interpolates from ``f(x)`` toward -1 ("unknown means
    #: nonhotspot").  Without the guard, ``f(x)`` collapses to the bias
    #: at far-field points, and a positive-bias model flags everything it
    #: has never seen.  0 disables the guard.
    far_field_floor: float = 0.0

    # fitted state
    support_vectors_: Optional[np.ndarray] = field(default=None, repr=False)
    dual_coef_: Optional[np.ndarray] = field(default=None, repr=False)
    bias_: float = field(default=0.0, repr=False)
    scaler_: object = field(default=None, repr=False)
    last_result_: Optional[SmoResult] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.C <= 0:
            raise SvmError(f"C must be positive, got {self.C}")

    # ------------------------------------------------------------------
    def _kernel(self) -> KernelFunction:
        return make_kernel(self.kernel, self.gamma)

    def fit(self, matrix: np.ndarray, labels: np.ndarray) -> "SupportVectorClassifier":
        """Train on ``matrix`` (n, d) with labels in {-1, +1}."""
        labels = np.asarray(labels, dtype=np.int64)
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != labels.shape[0]:
            raise SvmError(
                f"matrix {matrix.shape} does not align with labels {labels.shape}"
            )
        if self.scale_features == "minmax" or self.scale_features is True:
            self.scaler_ = MinMaxScaler()
            matrix = self.scaler_.fit_transform(matrix)
        elif self.scale_features == "standard":
            self.scaler_ = StandardScaler()
            matrix = self.scaler_.fit_transform(matrix)
        else:
            self.scaler_ = None

        weights = self.class_weight or {}
        upper = np.array(
            [self.C * weights.get(int(label), 1.0) for label in labels]
        )
        gram = self._kernel()(matrix, matrix)
        result = solve_smo(
            gram, labels, upper, self.tolerance, self.max_iterations
        )
        self.last_result_ = result

        support = result.alpha > 1e-9
        if not np.any(support):
            # Degenerate but legal: fall back to a constant classifier at
            # the bias (predicts the majority side).
            support = np.zeros_like(support)
            support[0] = True
        self.support_vectors_ = matrix[support]
        self.dual_coef_ = (result.alpha * labels)[support]
        self.bias_ = result.bias
        self._fast_state_ = None
        return self

    # ------------------------------------------------------------------
    def _gram_rows(self, matrix: np.ndarray):
        """Scaled per-row kernel rows against the support vectors.

        Evaluated one row at a time: BLAS matrix products round
        differently depending on operand shapes, so a batched gram would
        give each sample bits that depend on which other samples share
        its batch.  Margins must be a pure function of the sample (the
        cache and the sharded scan both re-batch arbitrarily), and that
        holds only if every row is computed in an identically-shaped
        operation.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if self.scaler_ is not None:
            matrix = self.scaler_.transform(matrix)
        kernel = self._kernel()
        for i in range(matrix.shape[0]):
            yield kernel(matrix[i : i + 1], self.support_vectors_)[0]

    def decision_function(self, matrix: np.ndarray) -> np.ndarray:
        """Signed margin ``f(x)`` for each row of ``matrix``.

        Bit-reproducible per row: the value of a sample does not depend
        on the rest of the batch (see :meth:`_gram_rows`).
        """
        if self.support_vectors_ is None or self.dual_coef_ is None:
            raise NotFittedError("classifier used before fit()")
        single = np.asarray(matrix).ndim == 1
        far_field = self.far_field_floor > 0 and self.kernel == "rbf"
        values = []
        for gram in self._gram_rows(matrix):
            value = float(gram @ self.dual_coef_) + self.bias_
            if far_field:
                weight = min(1.0, float(gram.max()) / self.far_field_floor)
                value = weight * value + (1.0 - weight) * -1.0
            values.append(value)
        values = np.array(values, dtype=np.float64)
        return values[0] if single else values

    def support_similarity(self, matrix: np.ndarray) -> np.ndarray:
        """Maximum RBF kernel value to any support vector, per row.

        1.0 means "sits on a support vector", ~0 means the model has no
        evidence about the sample.  Callers use this to treat far-field
        samples specially (e.g. the feedback kernel must not overrule the
        primary kernels on clips it knows nothing about).
        """
        if self.support_vectors_ is None:
            raise NotFittedError("classifier used before fit()")
        return np.array(
            [float(gram.max()) for gram in self._gram_rows(matrix)],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    def fast_state(self):
        """This classifier's blocked-GEMM evaluation state, built lazily.

        See :mod:`repro.svm.fastpath`; the state is invalidated by
        ``fit`` and rebuilt on first use, so callers may hold it only
        transiently.
        """
        state = getattr(self, "_fast_state_", None)
        if state is None:
            from repro.svm.fastpath import FastKernelState

            state = FastKernelState.from_classifier(self)
            self._fast_state_ = state
        return state

    def decision_function_fast(self, matrix: np.ndarray) -> np.ndarray:
        """Blocked-GEMM margins: batch-partition-invariant, not bit-equal
        to :meth:`decision_function` (drift bounded by
        :data:`repro.svm.fastpath.MAX_ULP_DRIFT` scale-ulps)."""
        single = np.asarray(matrix).ndim == 1
        values = self.fast_state().decision_function(matrix)
        return values[0] if single else values

    def decision_and_similarity_fast(
        self, matrix: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fast margins plus max support-vector similarity in one pass."""
        return self.fast_state().evaluate(matrix)

    def predict(self, matrix: np.ndarray, threshold: float = 0.0) -> np.ndarray:
        """Class labels (+1/-1); ``threshold`` shifts the decision boundary.

        A positive threshold demands more confidence for the +1 (hotspot)
        class — the lever behind the accuracy/false-alarm trade-off.
        """
        values = self.decision_function(matrix)
        return np.where(values >= threshold, 1, -1)

    def score(self, matrix: np.ndarray, labels: np.ndarray) -> float:
        """Plain accuracy on a labelled set."""
        labels = np.asarray(labels, dtype=np.int64)
        predictions = self.predict(matrix)
        return float((predictions == labels).mean())

    @property
    def n_support_(self) -> int:
        if self.support_vectors_ is None:
            raise NotFittedError("classifier used before fit()")
        return int(self.support_vectors_.shape[0])
