"""Iterative self-training of SVM parameters (Section III-D2).

"Appropriate values of C and gamma may result in a good training quality
...  we introduce a self-training process to iteratively adapt C and
gamma.  In our experiments, the initial values of C and gamma are 1000 and
0.01 ...  C and gamma are doubled if the stopping criterion is not
satisfied.  The stopping criterion ... is that the number of self-training
iterations exceeds a user-defined bound or the hotspot/nonhotspot
detection accuracy rate (with respect to the training data) exceeds a
user-defined training accuracy, say 90%."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import SvmError
from repro.obs import trace
from repro.svm.model import SupportVectorClassifier


@dataclass(frozen=True)
class IterativeConfig:
    """Self-training schedule; defaults are the paper's Section V values."""

    initial_c: float = 1000.0
    initial_gamma: float = 0.01
    target_accuracy: float = 0.90
    max_rounds: int = 8
    class_weight: Optional[dict[int, float]] = None
    kernel: str = "rbf"
    far_field_floor: float = 0.0
    #: Feature scaling of every trained kernel: "minmax", "standard" or
    #: "none".  Persisted with the model (:mod:`repro.core.persist`).
    scale_features: str = "minmax"

    def __post_init__(self) -> None:
        if not 0.0 < self.target_accuracy <= 1.0:
            raise SvmError(
                f"target accuracy must be in (0, 1], got {self.target_accuracy}"
            )
        if self.max_rounds < 1:
            raise SvmError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.scale_features not in ("minmax", "standard", "none"):
            raise SvmError(
                f"scale_features must be minmax/standard/none, "
                f"got {self.scale_features!r}"
            )


@dataclass
class TrainingRound:
    """Telemetry of one self-training round (drives the convergence bench)."""

    round_index: int
    c_value: float
    gamma: float
    train_accuracy: float
    hotspot_recall: float


@dataclass
class IterativeResult:
    """Final model plus per-round history."""

    model: SupportVectorClassifier
    history: list[TrainingRound] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.history)

    @property
    def final_accuracy(self) -> float:
        return self.history[-1].train_accuracy if self.history else 0.0


def train_iterative(
    matrix: np.ndarray,
    labels: np.ndarray,
    config: IterativeConfig = IterativeConfig(),
) -> IterativeResult:
    """Double C and gamma until self-evaluation accuracy meets the target.

    Keeps the best round's model (highest training accuracy, hotspot
    recall as tie-break) so a late overshooting round cannot degrade the
    returned kernel.
    """
    labels = np.asarray(labels, dtype=np.int64)
    history: list[TrainingRound] = []
    best_model: Optional[SupportVectorClassifier] = None
    best_key: tuple[float, float] = (-1.0, -1.0)

    with trace("svm.fit", samples=int(labels.size)) as span:
        c_value, gamma = config.initial_c, config.initial_gamma
        for round_index in range(config.max_rounds):
            model = SupportVectorClassifier(
                C=c_value,
                gamma=gamma,
                kernel=config.kernel,
                class_weight=config.class_weight,
                far_field_floor=config.far_field_floor,
                scale_features=config.scale_features,
            )
            model.fit(matrix, labels)
            predictions = model.predict(matrix)
            accuracy = float((predictions == labels).mean())
            hotspot_mask = labels == 1
            recall = (
                float((predictions[hotspot_mask] == 1).mean())
                if np.any(hotspot_mask)
                else 1.0
            )
            history.append(TrainingRound(round_index, c_value, gamma, accuracy, recall))

            key = (accuracy, recall)
            if key > best_key:
                best_key, best_model = key, model

            if accuracy >= config.target_accuracy:
                break
            c_value *= 2.0
            gamma *= 2.0
        span.set(
            rounds=len(history),
            accuracy=history[-1].train_accuracy if history else 0.0,
        )

    assert best_model is not None  # max_rounds >= 1 guarantees one round
    return IterativeResult(best_model, history)
