"""Blocked-GEMM margin evaluation: the ``compute="fast"`` SVM path.

The exact path (:meth:`~repro.svm.model.SupportVectorClassifier.
decision_function`) evaluates one kernel row per sample so margins are a
pure function of the sample — BLAS products round differently per
operand shape, and the cache and sharded scan re-batch arbitrarily.
That per-row loop is the single-node throughput ceiling (ROADMAP item
1): python-level iteration costs far more than the arithmetic it wraps.

Fast mode restores batched BLAS while keeping the property that made
the exact path per-row: every sample is evaluated inside a
**fixed-shape** block.  Samples are packed into zero-padded blocks of
exactly :data:`FAST_BLOCK` rows, so the GEMM operand shapes — and hence
the rounding — never depend on how a batch was partitioned.  A sample's
fast margin is therefore bit-identical however the caller batches,
orders or shards its clips (property-tested in
``tests/test_fast_compute.py``); it may differ from the exact margin by
a few last-place bits, bounded by :data:`MAX_ULP_DRIFT`.

The drift bound is expressed at the *decision scale*, not per value:
margins near zero have tiny float spacing, so a raw per-value ulp count
explodes exactly where an absolute drift of 1e-13 is most harmless.
The decision function is a sum bounded by ``sum(|dual_coef|) + |bias|``
(kernel values lie in [0, 1]); one ulp at that scale is the smallest
increment the accumulation itself can resolve, so drift is measured in
multiples of ``np.spacing(scale)``.  Observed drift on trained models
is under ~16 scale-ulps; the bound leaves two orders of magnitude of
headroom while still catching any algorithmic divergence.

:class:`FastKernelState` holds the precomputed per-kernel state —
compacted support vectors (zero-coefficient rows dropped), their
squared norms, the dual coefficients — built once per trained model and
cached per ``model_fingerprint`` (:func:`fast_states`), so serving
loads compact at registry-load time rather than on the first request.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import NotFittedError, SvmError

#: Fixed evaluation block height (rows per GEMM).  Every block is
#: zero-padded to exactly this many rows so the BLAS operand shape —
#: and therefore the rounding — is independent of batch partitioning.
#: The value trades padding waste on tiny batches against per-block
#: python overhead on large ones; it is part of the numeric contract
#: (changing it changes fast-mode bits) and must not be tuned casually.
FAST_BLOCK = 128

#: Documented bound on exact-vs-fast margin drift, in float64 ulps *at
#: the decision scale* (see module docs and :func:`decision_scale`).
#: Asserted by the differential suite and the bench gates.
MAX_ULP_DRIFT = 4096


# ----------------------------------------------------------------------
# drift measurement
# ----------------------------------------------------------------------
def decision_scale(dual_coef: np.ndarray, bias: float) -> float:
    """The magnitude the decision sum is bounded by.

    RBF kernel values lie in ``[0, 1]``, so ``|f(x)| <= sum|a_i| + |b|``;
    one float64 ulp at this scale is the finest increment the decision
    accumulation can resolve.  Floored at 1.0 so the far-field guard's
    interpolation toward -1 is always inside the scale.
    """
    return max(float(np.abs(dual_coef).sum()) + abs(float(bias)), 1.0)


def ulp_diff(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Distance between float64 arrays in representable-value steps.

    Uses the sign-folded integer ordering of IEEE-754 doubles: mapping
    the bit patterns of negative floats to ``-2**63 - i`` makes the
    int64 view monotone in the float order, so the integer difference
    counts the representable doubles between the operands.
    """
    a = np.asarray(first, dtype=np.float64).view(np.int64)
    b = np.asarray(second, dtype=np.float64).view(np.int64)
    a = np.where(a < 0, np.int64(-(2**63)) - a, a)
    b = np.where(b < 0, np.int64(-(2**63)) - b, b)
    return np.abs(a - b)


def margin_drift_ulps(
    exact: np.ndarray, fast: np.ndarray, scale: float
) -> float:
    """Worst exact-vs-fast drift in ulps at the decision scale.

    ``|exact - fast| / spacing(scale)``: absolute drift normalised by
    the value of one ulp at ``scale``.  Returns 0.0 for empty inputs.
    """
    exact = np.asarray(exact, dtype=np.float64)
    fast = np.asarray(fast, dtype=np.float64)
    if exact.size == 0:
        return 0.0
    return float(np.abs(exact - fast).max() / np.spacing(max(scale, 1.0)))


# ----------------------------------------------------------------------
# precomputed per-kernel state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FastKernelState:
    """Everything fast evaluation needs from one trained classifier.

    Built by :meth:`from_classifier`: support vectors with exactly-zero
    dual coefficients are dropped (they contribute nothing to the
    decision sum; fast mode also excludes them from the similarity
    guard), the surviving matrix is made C-contiguous for the GEMM, and
    the squared norms are computed once instead of per batch.
    """

    kernel: str
    gamma: float
    support_vectors: np.ndarray
    sv_norms: np.ndarray
    dual_coef: np.ndarray
    bias: float
    far_field_floor: float
    scaler: Optional[object]
    #: Zero-coefficient support vectors dropped by compaction.
    dropped: int

    @staticmethod
    def from_classifier(classifier) -> "FastKernelState":
        if classifier.support_vectors_ is None or classifier.dual_coef_ is None:
            raise NotFittedError("fast state requested before fit()")
        vectors = np.asarray(classifier.support_vectors_, dtype=np.float64)
        dual = np.asarray(classifier.dual_coef_, dtype=np.float64)
        keep = dual != 0.0
        if np.any(keep) and not np.all(keep):
            vectors = vectors[keep]
            dual = dual[keep]
            dropped = int(keep.size - np.count_nonzero(keep))
        else:
            # Nothing to drop — or all-zero duals (the degenerate
            # constant classifier), which keep their vector so the
            # similarity guard stays defined.
            dropped = 0
        return FastKernelState(
            kernel=classifier.kernel,
            gamma=float(classifier.gamma),
            support_vectors=np.ascontiguousarray(vectors),
            sv_norms=np.einsum("ij,ij->i", vectors, vectors),
            dual_coef=np.ascontiguousarray(dual),
            bias=float(classifier.bias_),
            far_field_floor=float(classifier.far_field_floor),
            scaler=classifier.scaler_,
            dropped=dropped,
        )

    @property
    def scale(self) -> float:
        """Decision scale of this kernel (see :func:`decision_scale`)."""
        return decision_scale(self.dual_coef, self.bias)

    # ------------------------------------------------------------------
    def _prepare(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.shape[1] != self.support_vectors.shape[1]:
            raise SvmError(
                f"matrix width {matrix.shape[1]} does not match support "
                f"vectors ({self.support_vectors.shape[1]})"
            )
        if self.scaler is not None:
            # Elementwise affine transform: per-element rounding is
            # shape-independent, so scaling the whole matrix at once
            # matches the exact path bit for bit.
            matrix = self.scaler.transform(matrix)
        return matrix

    def evaluate(self, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(margins, max kernel similarity) per row, blocked evaluation.

        The arithmetic mirrors the exact path exactly — squared-distance
        expansion clamped at zero, ``exp``, dot with the dual
        coefficients, far-field interpolation — only batched.  Each
        block is zero-padded to :data:`FAST_BLOCK` rows so every sample
        sees the same GEMM shape regardless of batch partitioning.
        """
        matrix = self._prepare(matrix)
        count = matrix.shape[0]
        values = np.empty(count, dtype=np.float64)
        similarity = np.empty(count, dtype=np.float64)
        width = self.support_vectors.shape[1]
        far_field = self.far_field_floor > 0 and self.kernel == "rbf"
        for start in range(0, count, FAST_BLOCK):
            chunk = matrix[start : start + FAST_BLOCK]
            rows = chunk.shape[0]
            block = np.zeros((FAST_BLOCK, width), dtype=np.float64)
            block[:rows] = chunk
            if self.kernel == "rbf":
                row_norms = np.einsum("ij,ij->i", block, block)
                cross = block @ self.support_vectors.T
                distances = (
                    row_norms[:, None] + self.sv_norms[None, :] - 2.0 * cross
                )
                np.maximum(distances, 0.0, out=distances)
                gram = np.exp(-self.gamma * distances)
            else:
                gram = block @ self.support_vectors.T
            block_values = gram @ self.dual_coef + self.bias
            block_similarity = gram.max(axis=1)
            if far_field:
                weight = np.minimum(
                    1.0, block_similarity / self.far_field_floor
                )
                block_values = weight * block_values + (1.0 - weight) * -1.0
            values[start : start + rows] = block_values[:rows]
            similarity[start : start + rows] = block_similarity[:rows]
        return values, similarity

    def decision_function(self, matrix: np.ndarray) -> np.ndarray:
        """Fast signed margins per row (see :meth:`evaluate`)."""
        return self.evaluate(matrix)[0]


# ----------------------------------------------------------------------
# per-model state cache
# ----------------------------------------------------------------------
_STATES_LOCK = threading.Lock()
_STATES: "OrderedDict[str, tuple[FastKernelState, ...]]" = OrderedDict()
#: A handful of models at most live in one process (serve registry hot
#: reloads, test fixtures); the LRU bound only guards leaks.
_STATES_LIMIT = 8


def fast_states(model) -> tuple[FastKernelState, ...]:
    """Per-kernel fast states of a trained MultiKernelModel, memoized.

    Keyed by the model's margin-cache fingerprint (which embeds the
    compute mode and the trained weights), so a hot-reloaded archive
    gets fresh states and identical models share one compaction.
    """
    key = model._cache_fingerprint()
    with _STATES_LOCK:
        cached = _STATES.get(key)
        if cached is not None:
            _STATES.move_to_end(key)
            return cached
    states = tuple(
        FastKernelState.from_classifier(kernel.model) for kernel in model.kernels
    )
    with _STATES_LOCK:
        _STATES[key] = states
        _STATES.move_to_end(key)
        while len(_STATES) > _STATES_LIMIT:
            _STATES.popitem(last=False)
    return states


def warm_fast_states(detector) -> int:
    """Eagerly compact a detector's kernels (registry-load-time hook).

    Builds the per-kernel fast states and the feedback kernel's state so
    the first fast-mode request pays no compaction latency.  Returns the
    number of states built; a no-op (0) for unfitted detectors.
    """
    model = getattr(detector, "model_", None)
    if model is None:
        return 0
    built = len(fast_states(model))
    feedback = getattr(detector, "feedback_", None)
    if feedback is not None:
        feedback.model.fast_state()
        built += 1
    return built
