"""From-scratch SVM substrate (replaces LIBSVM): RBF kernel, SMO solver,
C-SVC model, feature scaling, iterative C/gamma self-training."""

from repro.svm.kernel import linear_kernel, make_kernel, rbf_kernel, squared_distances
from repro.svm.scaling import MinMaxScaler, StandardScaler
from repro.svm.smo import SmoResult, solve_smo
from repro.svm.model import SupportVectorClassifier
from repro.svm.grid_search import (
    IterativeConfig,
    IterativeResult,
    TrainingRound,
    train_iterative,
)

__all__ = [
    "rbf_kernel",
    "linear_kernel",
    "make_kernel",
    "squared_distances",
    "StandardScaler",
    "MinMaxScaler",
    "solve_smo",
    "SmoResult",
    "SupportVectorClassifier",
    "IterativeConfig",
    "IterativeResult",
    "TrainingRound",
    "train_iterative",
]
