"""Feature standardisation for SVM inputs.

RBF kernels are scale-sensitive: a raw feature mixing nanometre distances
(thousands) with densities (fractions) would let the big coordinates
dominate ``||x - y||^2``.  Every kernel therefore trains on standardised
features; the scaler is stored with the model and applied at prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import NotFittedError, SvmError


@dataclass
class StandardScaler:
    """Per-column zero-mean unit-variance scaling with constant-column guard."""

    mean_: Optional[np.ndarray] = field(default=None, repr=False)
    scale_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, matrix: np.ndarray) -> "StandardScaler":
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise SvmError(f"scaler needs a non-empty 2-D matrix, got {matrix.shape}")
        self.mean_ = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        # Constant columns carry no information; dividing by 1 leaves them
        # at zero after centring instead of exploding.
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform called before fit")
        if matrix.shape[-1] != self.mean_.shape[0]:
            raise SvmError(
                f"scaler fitted on {self.mean_.shape[0]} columns, got {matrix.shape[-1]}"
            )
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)


@dataclass
class MinMaxScaler:
    """Per-column scaling to [0, 1] — LIBSVM's ``svm-scale`` convention.

    The paper's toolchain (LIBSVM) conventionally scales features to the
    unit interval before training; the RBF ``gamma`` defaults (0.01 with
    doubling) are calibrated against that range.  Constant columns map to
    zero.
    """

    min_: Optional[np.ndarray] = field(default=None, repr=False)
    span_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, matrix: np.ndarray) -> "MinMaxScaler":
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise SvmError(f"scaler needs a non-empty 2-D matrix, got {matrix.shape}")
        self.min_ = matrix.min(axis=0)
        span = matrix.max(axis=0) - self.min_
        span[span < 1e-12] = 1.0
        self.span_ = span
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.span_ is None:
            raise NotFittedError("MinMaxScaler.transform called before fit")
        if matrix.shape[-1] != self.min_.shape[0]:
            raise SvmError(
                f"scaler fitted on {self.min_.shape[0]} columns, got {matrix.shape[-1]}"
            )
        return (matrix - self.min_) / self.span_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)
