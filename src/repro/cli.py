"""Command-line interface: the detection flow as a tool.

Eight subcommands cover the practical lifecycle::

    python -m repro generate --benchmark benchmark1 --scale 0.5 --out data/
    python -m repro train    --clips data/training_clips.gds --model model.npz
    python -m repro scan     --model model.npz --layout data/testing_layout.gds \
                             --report reports.gds
    python -m repro score    --model model.npz --benchmark benchmark1 --scale 0.5
    python -m repro info     --model model.npz
    python -m repro explain  --model model.npz --layout layout.gds --x 3279 --y 3719
    python -m repro serve    --model model.npz --port 8976
    python -m repro client   --url http://127.0.0.1:8976 health

``generate`` writes a benchmark pair to GDSII; ``train`` fits the full
framework on a clip archive and persists the model; ``scan`` detects
hotspots in a GDSII layout and writes a marker overlay; ``score`` runs a
self-contained generate+train+scan+grade loop; ``info`` describes a
saved model; ``explain`` walks through the model's decision for one
layout site (gates, margins, features, feedback verdict); ``serve``
runs the long-lived batched HTTP inference service
(:mod:`repro.serve`); ``client`` queries a running server.

The fleet family (:mod:`repro.fleet`, see ``docs/FLEET.md``) spans
multiple nodes: ``fleet-scan`` runs a distributed scan (coordinator
in-process, worker subprocesses it supervises and respawns),
``fleet-worker`` joins a remote coordinator, ``fleet-cache`` serves the
shared remote blob-cache tier, and ``fleet-frontend`` round-robins
``/v1/predict`` across registered serve replicas.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro import obs
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.persist import load_detector, save_detector
from repro.data.benchmarks import BENCHMARKS, ICCAD_SPEC, generate_benchmark
from repro.gdsii import GdsBoundary, GdsLibrary, write_library_file
from repro.layout.io import (
    load_clipset_gds,
    load_layout_auto,
    save_clipset_gds,
    save_layout_gds,
)
from repro.resilience import CheckpointStore, Deadline, QuarantineReport, faults


def _add_obs_arguments(parser, manifest_by_default: bool) -> None:
    """The shared observability flags (train/scan/score)."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a Chrome-trace (chrome://tracing) JSON of all pipeline stages",
    )
    group.add_argument(
        "--manifest",
        type=Path,
        default=None,
        metavar="PATH",
        help="run-manifest path"
        + (
            " (default: next to the main artifact)"
            if manifest_by_default
            else " (off unless given)"
        ),
    )
    if manifest_by_default:
        group.add_argument(
            "--no-manifest", action="store_true", help="skip the run manifest"
        )
    group.add_argument(
        "--json-logs",
        action="store_true",
        help="structured JSON logs on stderr",
    )
    group.add_argument("--run-id", default=None, help="override the generated run id")


class _ObsSession:
    """Per-command observability lifecycle: tracer, manifest, logging.

    Installs a recording tracer only when the command will write a
    manifest or a trace (otherwise every ``trace(...)`` call site stays
    on the no-op path), and always restores the process-global tracer
    and logging state on exit — CLI invocations must not leak tracers
    into the embedding process (tests call ``main()`` in-process).

    Artifact notices go to stderr so commands with stdout contracts
    (``score --json`` prints a bare JSON line) stay parseable.
    """

    #: Commands whose manifest is on by default (written next to the
    #: command's main artifact); elsewhere a manifest is opt-in.
    MANIFEST_DEFAULT = ("train", "scan")

    def __init__(self, args, command: str) -> None:
        self.command = command
        self.trace_path: Optional[Path] = getattr(args, "trace", None)
        explicit: Optional[Path] = getattr(args, "manifest", None)
        self.wants_manifest = not getattr(args, "no_manifest", False) and (
            explicit is not None or command in self.MANIFEST_DEFAULT
        )
        self.manifest_path = explicit
        self.tracer: Optional[obs.Tracer] = None
        self.manifest: Optional[obs.RunManifest] = None
        if self.wants_manifest or self.trace_path is not None:
            self.tracer = obs.set_tracer(obs.Tracer())
            self.manifest = obs.RunManifest.new(
                command,
                argv=getattr(args, "_argv", None),
                run_id=getattr(args, "run_id", None),
            )
        if getattr(args, "json_logs", False):
            obs.configure_logging(
                True,
                command=command,
                run_id=self.manifest.run_id if self.manifest else obs.new_run_id(),
            )

    def __enter__(self) -> "_ObsSession":
        return self

    def __exit__(self, *exc) -> bool:
        obs.set_tracer(None)
        obs.configure_logging(False)
        return False

    # ------------------------------------------------------------------
    def set_config(self, config) -> None:
        if self.manifest is not None:
            self.manifest.config = obs.config_summary(config)

    def set_dataset(self, name: str, value) -> None:
        if self.manifest is not None:
            self.manifest.dataset[name] = value

    def record(self, **metrics) -> None:
        if self.manifest is not None:
            self.manifest.record_metrics(**metrics)

    def artifact(self, kind: str, path) -> None:
        if self.manifest is not None:
            self.manifest.record_artifact(kind, path)

    def finish(self, default_manifest: Optional[Path] = None) -> None:
        """Write the trace and manifest artifacts (notices on stderr)."""
        if self.trace_path is not None and self.tracer is not None:
            try:
                self.tracer.write_chrome(self.trace_path)
                print(f"trace -> {self.trace_path}", file=sys.stderr)
            except OSError as exc:
                print(f"warning: could not write trace: {exc}", file=sys.stderr)
        if self.wants_manifest and self.manifest is not None:
            path = self.manifest_path or default_manifest
            if path is None:
                return
            if self.trace_path is not None:
                self.manifest.record_artifact("trace", self.trace_path)
            self.manifest.finish(self.tracer)
            try:
                self.manifest.write(path)
                print(f"manifest -> {path}", file=sys.stderr)
            except OSError as exc:
                print(f"warning: could not write manifest: {exc}", file=sys.stderr)


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate", help="generate a benchmark pair and write it as GDSII"
    )
    parser.add_argument(
        "--benchmark",
        default="benchmark1",
        choices=[cfg.name for cfg in BENCHMARKS],
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--out", type=Path, default=Path("."))


def _add_train(subparsers) -> None:
    parser = subparsers.add_parser(
        "train", help="train the framework on a GDSII clip archive"
    )
    parser.add_argument("--clips", type=Path, required=True)
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument(
        "--variant",
        default="ours",
        choices=("ours", "ours_med", "ours_low", "basic", "topology", "removal"),
    )
    parser.add_argument("--parallel", action="store_true")
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--resume",
        action="store_true",
        help="reuse kernel checkpoints left by an interrupted run",
    )
    group.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="per-kernel checkpoint directory (default: <model>.ckpt)",
    )
    group.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="train without writing kernel checkpoints",
    )
    group.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="training deadline; a timed-out run resumes with --resume",
    )
    _add_obs_arguments(parser, manifest_by_default=True)


def _add_scan(subparsers) -> None:
    parser = subparsers.add_parser(
        "scan", help="scan a GDSII layout with a trained model"
    )
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument("--layout", type=Path, required=True)
    parser.add_argument("--layer", type=int, default=1)
    parser.add_argument("--threshold", type=float, default=None)
    parser.add_argument(
        "--report", type=Path, default=None, help="write reports as a GDSII overlay"
    )
    parser.add_argument(
        "--quarantine",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSON report of inputs quarantined during the scan",
    )
    group = parser.add_argument_group("execution")
    group.add_argument(
        "--backend",
        choices=("thread", "process"),
        default=None,
        help="scan execution backend (default: the model's config, "
        "normally 'thread'); 'process' runs a crash-isolated, "
        "journaled sharded scan",
    )
    group.add_argument(
        "--compute",
        choices=("exact", "fast"),
        default=None,
        help="margin compute mode (default: the model's config, normally "
        "'exact'); 'fast' evaluates margins with blocked vectorized "
        "kernels — same hotspot set, margins within the documented "
        "ulp bound (docs/PERFORMANCE.md)",
    )
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for either backend",
    )
    group.add_argument(
        "--shard-side",
        type=int,
        default=None,
        metavar="DBU",
        help="process backend: shard cell edge (default 4x clip side)",
    )
    group.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="process backend: shard journal directory "
        "(default: <layout>.scanjournal)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="process backend: skip shards journaled by an interrupted run",
    )
    group.add_argument(
        "--no-journal",
        action="store_true",
        help="process backend: scan without writing a shard journal",
    )
    cache = parser.add_argument_group("caching")
    cache.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="on-disk content-addressed feature/margin cache; a warm "
        "rescan skips extraction and SVM work for unchanged geometry",
    )
    cache.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the in-process feature/margin cache",
    )
    cache.add_argument(
        "--incremental",
        action="store_true",
        help="process backend: reuse journaled shards whose influence-"
        "region geometry is unchanged since the previous run; the "
        "journal is kept for the next incremental scan",
    )
    _add_obs_arguments(parser, manifest_by_default=True)


def _add_score(subparsers) -> None:
    parser = subparsers.add_parser(
        "score", help="end-to-end generate/train/scan/grade on a benchmark"
    )
    parser.add_argument(
        "--benchmark",
        default="benchmark1",
        choices=[cfg.name for cfg in BENCHMARKS],
    )
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--variant",
        default="ours",
        choices=("ours", "ours_med", "ours_low", "basic", "topology", "removal"),
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    _add_obs_arguments(parser, manifest_by_default=False)


def _add_report(subparsers) -> None:
    parser = subparsers.add_parser(
        "report", help="render or compare run manifests"
    )
    parser.add_argument("manifest", type=Path, help="a RunManifest JSON file")
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="OTHER",
        help="second manifest; prints stage/metric deltas",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")


def _add_info(subparsers) -> None:
    parser = subparsers.add_parser("info", help="describe a saved model")
    parser.add_argument("--model", type=Path, required=True)


def _add_explain(subparsers) -> None:
    parser = subparsers.add_parser(
        "explain", help="explain the model's decision for one layout site"
    )
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument("--layout", type=Path, required=True)
    parser.add_argument("--x", type=int, required=True, help="core anchor x (DBU)")
    parser.add_argument("--y", type=int, required=True, help="core anchor y (DBU)")
    parser.add_argument("--layer", type=int, default=1)


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="run the batched HTTP inference service"
    )
    parser.add_argument(
        "--model",
        action="append",
        required=True,
        metavar="[NAME=]PATH",
        help="detector archive to serve; repeatable for multiple versions",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8976, help="0 = ephemeral")
    parser.add_argument(
        "--batch-clips", type=int, default=64, help="flush a batch at this many clips"
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        help="max milliseconds a request waits for batch-mates",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=1024, help="max queued clips (backpressure)"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--request-timeout", type=float, default=30.0, help="seconds; per request"
    )
    parser.add_argument("--verbose", action="store_true", help="log every request")
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist the feature/margin cache on disk (shared across "
        "restarts and with repro scan --cache-dir)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cross-request feature/margin cache",
    )
    parser.add_argument(
        "--compute",
        choices=("exact", "fast"),
        default=None,
        help="margin compute mode for every served model (default: each "
        "archive's saved mode); 'fast' precompacts support vectors at "
        "load time and evaluates with blocked vectorized kernels",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record pipeline spans and expose per-stage histograms on /metrics",
    )
    parser.add_argument(
        "--frontend",
        default=None,
        metavar="URL",
        help="self-register with this fleet-frontend and heartbeat at "
        "TTL/3 (re-registers after a frontend restart)",
    )
    parser.add_argument(
        "--json-logs", action="store_true", help="structured JSON logs on stderr"
    )


def _add_client(subparsers) -> None:
    parser = subparsers.add_parser(
        "client", help="query a running inference server"
    )
    parser.add_argument("--url", required=True, help="e.g. http://127.0.0.1:8976")
    parser.add_argument(
        "action", choices=("health", "metrics", "models", "predict", "scan")
    )
    parser.add_argument(
        "--clips", type=Path, default=None, help="GDSII clip archive (predict)"
    )
    parser.add_argument(
        "--layout", type=Path, default=None, help="GDSII/OASIS layout (scan)"
    )
    parser.add_argument("--layer", type=int, default=1)
    parser.add_argument("--model-name", default=None, help="served model version")
    parser.add_argument("--threshold", type=float, default=None)
    parser.add_argument(
        "--limit", type=int, default=None, help="send at most this many clips"
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")


def _add_fleet_scan(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet-scan",
        help="distributed scan: in-process coordinator + supervised "
        "worker subprocesses (bit-identical to a local scan)",
    )
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument("--layout", type=Path, required=True)
    parser.add_argument("--layer", type=int, default=1)
    parser.add_argument("--threshold", type=float, default=None)
    parser.add_argument(
        "--report", type=Path, default=None, help="write reports as a GDSII overlay"
    )
    parser.add_argument(
        "--quarantine",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSON report of inputs quarantined during the scan",
    )
    parser.add_argument(
        "--compute",
        choices=("exact", "fast"),
        default=None,
        help="margin compute mode (default: the model's config); the "
        "coordinator publishes it in the handshake, so every fleet "
        "worker evaluates in the same mode",
    )
    fleet = parser.add_argument_group("fleet")
    fleet.add_argument(
        "--fleet-workers",
        type=int,
        default=3,
        metavar="N",
        help="worker subprocesses to spawn and supervise",
    )
    fleet.add_argument(
        "--lease-ttl",
        type=float,
        default=5.0,
        metavar="S",
        help="seconds a shard lease survives without a heartbeat",
    )
    fleet.add_argument(
        "--worker-restarts",
        type=int,
        default=None,
        metavar="N",
        help="total worker respawn budget (default: 3x worker count)",
    )
    fleet.add_argument("--host", default="127.0.0.1")
    fleet.add_argument(
        "--port", type=int, default=0, help="coordinator port (0 = ephemeral)"
    )
    fleet.add_argument(
        "--standby",
        action="store_true",
        help="supervise a warm-standby coordinator; workers get both "
        "endpoints and re-home if the primary dies",
    )
    fleet.add_argument(
        "--probe-interval",
        type=float,
        default=0.5,
        metavar="S",
        help="standby health-probe period (promotes after 2 misses)",
    )
    fleet.add_argument(
        "--cache-url",
        action="append",
        default=None,
        metavar="URL",
        help="remote cache node (repeatable); workers share it as a "
        "warm feature/margin tier",
    )
    group = parser.add_argument_group("journal")
    group.add_argument(
        "--shard-side",
        type=int,
        default=None,
        metavar="DBU",
        help="shard cell edge (default 4x clip side; must match any "
        "journal being resumed)",
    )
    group.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="shard journal directory (default: <layout>.scanjournal)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="skip shards journaled by an interrupted fleet (or local "
        "process-backend) scan",
    )
    group.add_argument(
        "--no-journal", action="store_true", help="scan without a shard journal"
    )
    group.add_argument(
        "--keep-journal",
        action="store_true",
        help="keep the journal after a successful scan",
    )
    _add_obs_arguments(parser, manifest_by_default=False)


def _add_fleet_status(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet-status",
        help="live status plane of a running fleet-scan coordinator",
    )
    parser.add_argument("--url", required=True, help="coordinator URL")
    parser.add_argument(
        "--json",
        action="store_true",
        help="print one status document as JSON on stdout",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="refresh until the scan reports done",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="refresh period with --watch",
    )


def _add_fleet_worker(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet-worker", help="join a fleet coordinator as a scan worker"
    )
    parser.add_argument(
        "--url",
        required=True,
        help="ordered, comma-separated coordinator URLs (primary first, "
        "then standbys); the worker re-homes down the list on failure",
    )
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument("--layout", type=Path, required=True)
    parser.add_argument(
        "--worker-id", default=None, help="stable worker name (default: host-pid)"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="local disk cache tier in front of any fleet remote tier",
    )
    parser.add_argument(
        "--json-logs", action="store_true", help="structured JSON logs on stderr"
    )


def _add_fleet_coordinator(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet-coordinator",
        help="standalone fleet coordinator (primary or warm standby); "
        "serves leases until done and leaves the journal for merging",
    )
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument("--layout", type=Path, required=True)
    parser.add_argument("--layer", type=int, default=1)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=5.0,
        metavar="S",
        help="seconds a shard lease survives without a heartbeat",
    )
    parser.add_argument(
        "--shard-side", type=int, default=None, metavar="DBU"
    )
    parser.add_argument(
        "--compute",
        choices=("exact", "fast"),
        default=None,
        help="margin compute mode (must match the primary when running "
        "as a standby; default: the model's config)",
    )
    parser.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="shard journal directory (kept on exit for external merge)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip shards already journaled in --journal-dir",
    )
    parser.add_argument(
        "--cache-url",
        action="append",
        default=None,
        metavar="URL",
        help="remote cache node workers should use (repeatable); "
        "piggybacked on every lease answer, so late joins via "
        "POST /fleet/v1/cache-join propagate mid-scan",
    )
    standby = parser.add_argument_group("standby")
    standby.add_argument(
        "--standby-of",
        default=None,
        metavar="URL",
        help="run as a warm standby tailing this primary's replicate "
        "feed; promotes under epoch+1 when probes go unanswered",
    )
    standby.add_argument(
        "--probe-interval",
        type=float,
        default=0.5,
        metavar="S",
        help="replication/health-probe period as a standby",
    )
    standby.add_argument(
        "--max-missed-probes",
        type=int,
        default=2,
        metavar="N",
        help="consecutive missed probes before promotion",
    )
    parser.add_argument(
        "--linger",
        type=float,
        default=3.0,
        metavar="S",
        help="keep serving this long after the scan completes",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the merged chrome trace (own spans + worker-shipped)",
    )
    parser.add_argument(
        "--json-logs", action="store_true", help="structured JSON logs on stderr"
    )


def _add_chaos(subparsers) -> None:
    parser = subparsers.add_parser(
        "chaos",
        help="run a seeded fleet chaos drill and assert bit-identical "
        "output against a quiet single-node scan",
    )
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument("--layout", type=Path, required=True)
    parser.add_argument("--layer", type=int, default=1)
    parser.add_argument(
        "--schedule",
        required=True,
        metavar="SPEC",
        help="drill schedule DSL ('seed N; at T verb target [arg]'), or "
        "@FILE to read it from a file",
    )
    parser.add_argument(
        "--fleet-workers", type=int, default=2, metavar="N"
    )
    parser.add_argument(
        "--no-standby",
        action="store_true",
        help="drill without a warm standby (coordinator death then hangs "
        "the fleet — useful for testing the deadline path)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=2.0, metavar="S"
    )
    parser.add_argument(
        "--probe-interval", type=float, default=0.3, metavar="S"
    )
    parser.add_argument(
        "--shard-side", type=int, default=None, metavar="DBU"
    )
    parser.add_argument(
        "--workdir",
        type=Path,
        default=None,
        metavar="DIR",
        help="journals, role logs and traces land here (default: next "
        "to the layout)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="trace the drill; each coordinator writes a merged timeline",
    )
    parser.add_argument(
        "--expect-promotion",
        action="store_true",
        help="fail unless the standby actually promoted",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=240.0,
        metavar="S",
        help="abort the drill after this many seconds",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the drill report (timeline + verdict) as JSON",
    )
    cache = parser.add_argument_group("cache tier")
    cache.add_argument(
        "--cache-nodes",
        type=int,
        default=0,
        metavar="N",
        help="spawn N remote cache nodes (RF=2 tier) the fleet scans "
        "through; schedule targets cache-0..cache-N",
    )
    cache.add_argument(
        "--scans",
        type=int,
        default=1,
        metavar="N",
        help="run the fleet scan N times against the surviving cache "
        "tier; scan 2+ measures the warm-rescan remote hit rate",
    )
    serve = parser.add_argument_group("serve fleet")
    serve.add_argument(
        "--serve-replicas",
        type=int,
        default=0,
        metavar="N",
        help="drill a serve fleet instead of a scan: a fleet-frontend "
        "over N serve replicas; schedule targets replica-0..replica-N "
        "and frontend",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=40,
        metavar="N",
        help="predict requests the serve drill fires (with --serve-replicas)",
    )


def _add_fleet_cache(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet-cache", help="serve a shared remote blob-cache node"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="back the node with an on-disk store (default: in-memory LRU)",
    )
    parser.add_argument(
        "--max-entries",
        type=int,
        default=65536,
        help="in-memory store capacity (ignored with --dir)",
    )
    parser.add_argument(
        "--join",
        default=None,
        metavar="URLS",
        help="comma-separated coordinator URLs to announce this node to "
        "(POST /fleet/v1/cache-join); workers pick the new ring up on "
        "their next lease answer",
    )
    parser.add_argument(
        "--advertise",
        default=None,
        metavar="URL",
        help="URL to announce with --join (default: the bound address)",
    )


def _add_fleet_frontend(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet-frontend",
        help="round-robin /v1/predict across registered serve replicas",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--replica",
        action="append",
        default=None,
        metavar="URL",
        help="pre-register a serve replica (repeatable); replicas can "
        "also self-register via POST /fleet/v1/register",
    )
    parser.add_argument(
        "--member-ttl",
        type=float,
        default=10.0,
        metavar="S",
        help="seconds a member stays routable without a heartbeat",
    )


def _config_for(variant: str, parallel: bool = False) -> DetectorConfig:
    factory = {
        "ours": DetectorConfig.ours,
        "ours_med": DetectorConfig.ours_med,
        "ours_low": DetectorConfig.ours_low,
        "basic": DetectorConfig.basic,
        "topology": DetectorConfig.with_topology,
        "removal": DetectorConfig.with_removal,
    }[variant]
    config = factory()
    if parallel:
        from dataclasses import replace

        config = replace(config, parallel=True)
    return config


def cmd_generate(args) -> int:
    bench = generate_benchmark(args.benchmark, args.scale)
    args.out.mkdir(parents=True, exist_ok=True)
    clips_path = args.out / f"{args.benchmark}_training_clips.gds"
    layout_path = args.out / f"{args.benchmark}_testing_layout.gds"
    truth_path = args.out / f"{args.benchmark}_truth.json"
    save_clipset_gds(bench.training, clips_path)
    save_layout_gds(bench.testing.layout, layout_path)
    truth = {
        "area_um2": bench.testing.area_um2,
        "hotspot_cores": [
            [c.x0, c.y0, c.x1, c.y1] for c in bench.testing.hotspot_cores()
        ],
    }
    truth_path.write_text(json.dumps(truth))
    stats = bench.stats()
    print(
        f"wrote {clips_path} ({stats['train_hs']} hs / {stats['train_nhs']} nhs), "
        f"{layout_path} ({stats['test_hs']} planted hotspots), {truth_path}"
    )
    return 0


def cmd_train(args) -> int:
    with _ObsSession(args, "train") as session:
        training = load_clipset_gds(args.clips, ICCAD_SPEC)
        detector = HotspotDetector(_config_for(args.variant, args.parallel))
        session.set_config(detector.config)
        session.set_dataset("training_clips", obs.fingerprint_clipset(training))
        session.set_dataset("source", str(args.clips))
        checkpoint = None
        if not args.no_checkpoint:
            checkpoint_dir = args.checkpoint_dir or args.model.with_suffix(".ckpt")
            checkpoint = CheckpointStore(checkpoint_dir)
        resumable = (
            len(checkpoint.completed_indices())
            if checkpoint is not None and args.resume
            else 0
        )
        started = time.perf_counter()
        report = detector.fit(
            training,
            checkpoint=checkpoint,
            deadline=Deadline.after(args.max_seconds),
            resume=args.resume,
        )
        save_detector(detector, args.model, name=args.model.stem)
        if checkpoint is not None:
            # The model archive now holds every kernel; the per-kernel
            # checkpoints have served their purpose.
            checkpoint.clear()
        session.record(
            kernels=report.kernels,
            hotspot_clusters=report.hotspot_clusters,
            nonhotspot_centroids=report.nonhotspot_centroids,
            upsampled_hotspots=report.upsampled_hotspots,
            feedback_trained=report.feedback_trained,
            resumed_kernels=resumable,
            train_seconds=round(report.train_seconds, 4),
        )
        session.artifact("model", args.model)
        resumed_note = f", {resumable} resumed" if resumable else ""
        print(
            f"trained {report.kernels} kernels "
            f"(feedback={report.feedback_trained}{resumed_note}) in "
            f"{time.perf_counter() - started:.1f}s -> {args.model}"
        )
        session.finish(
            default_manifest=args.model.with_suffix(".manifest.json")
        )
    return 0


def cmd_scan(args) -> int:
    import signal
    import threading
    from dataclasses import replace

    from repro.errors import ScanDrainedError

    with _ObsSession(args, "scan") as session:
        detector = load_detector(args.model)
        layout = load_layout_auto(args.layout)
        if not args.no_cache:
            from repro.cache import HotspotCache

            detector.attach_cache(HotspotCache(directory=args.cache_dir))
        backend = args.backend or detector.config.backend
        if args.compute is not None:
            detector.set_compute(args.compute)
        if args.incremental:
            if args.no_journal:
                print(
                    "--incremental needs the shard journal; "
                    "drop --no-journal",
                    file=sys.stderr,
                )
                return 2
            if backend != "process":
                print(
                    "--incremental implies --backend process", file=sys.stderr
                )
                backend = "process"
        if backend == "thread" and args.workers:
            detector.config = replace(
                detector.config, parallel=True, worker_count=args.workers
            )
        session.set_config(detector.config)
        session.set_dataset("layout", obs.fingerprint_layout(layout.layer(args.layer)))
        session.set_dataset("source", str(args.layout))
        quarantine = QuarantineReport()

        work = None
        stop_event = None
        previous_sigterm = None
        if backend == "process":
            from repro.work import ScanOptions

            stop_event = threading.Event()
            journal_dir = (
                None
                if args.no_journal
                else args.journal_dir or args.layout.with_suffix(".scanjournal")
            )
            work = ScanOptions(
                workers=args.workers or detector.config.worker_count,
                shard_side=args.shard_side,
                journal_dir=journal_dir,
                resume=args.resume,
                stop_event=stop_event,
                incremental=args.incremental,
                cache_dir=args.cache_dir,
            )

            def _drain(signum, frame):
                print(
                    f"signal {signum}: draining scan "
                    "(finished shards stay journaled; rerun with --resume)",
                    file=sys.stderr,
                )
                stop_event.set()

            try:
                previous_sigterm = signal.signal(signal.SIGTERM, _drain)
            except ValueError:
                previous_sigterm = None  # not the main thread (tests)
        try:
            result = detector.detect(
                layout,
                layer=args.layer,
                threshold=args.threshold,
                quarantine=quarantine,
                work=work,
            )
        except ScanDrainedError as exc:
            print(f"scan drained: {exc}", file=sys.stderr)
            session.record(drained=True, backend=backend)
            session.finish(
                default_manifest=args.model.with_suffix(".scan.manifest.json")
            )
            return 3
        finally:
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
        session.record(
            candidates=result.extraction.candidate_count,
            reports=result.report_count,
            flagged_before_feedback=result.flagged_before_feedback,
            flagged_after_feedback=result.flagged_after_feedback,
            quarantined=result.quarantined,
            feedback_degraded=result.feedback_degraded,
            eval_seconds=round(result.eval_seconds, 4),
            backend=result.backend,
            compute=result.compute,
        )
        if result.backend == "process":
            session.record(
                workers=work.workers,
                shards_total=result.shards_total,
                shards_resumed=result.shards_resumed,
                shards_reused=result.shards_reused,
                worker_restarts=result.worker_restarts,
                poison_tasks=result.poison_tasks,
            )
        if result.cache_stats is not None:
            session.record(
                **{f"cache_{key}": value for key, value in result.cache_stats.items()}
            )
        quarantine_note = (
            f", {result.quarantined} quarantined" if result.quarantined else ""
        )
        print(
            f"{result.extraction.candidate_count} candidates, "
            f"{result.report_count} hotspot reports{quarantine_note} "
            f"({result.eval_seconds:.1f}s)"
        )
        if result.backend == "process":
            print(
                f"process backend: {result.shards_total} shards "
                f"({result.shards_resumed} resumed, "
                f"{result.shards_reused} reused), "
                f"{result.worker_restarts} worker restarts, "
                f"{result.poison_tasks} poison tasks",
                file=sys.stderr,
            )
        if args.quarantine is not None:
            quarantine.write(args.quarantine)
            session.artifact("quarantine", args.quarantine)
            print(f"quarantine report -> {args.quarantine}", file=sys.stderr)
        for clip in result.reports:
            print(f"  core ({clip.core.x0}, {clip.core.y0}) - ({clip.core.x1}, {clip.core.y1})")
        if args.report is not None:
            library = GdsLibrary(name="HOTSPOTS")
            top = library.new_structure("HOTSPOT_MARKERS")
            for clip in result.reports:
                top.add(GdsBoundary(63, 0, list(clip.core.corners())))
            write_library_file(library, args.report)
            session.artifact("report", args.report)
            print(f"marker overlay -> {args.report}")
        default = (
            args.report.with_suffix(".manifest.json")
            if args.report is not None
            else args.model.with_suffix(".scan.manifest.json")
        )
        session.finish(default_manifest=default)
    return 0


def cmd_score(args) -> int:
    with _ObsSession(args, "score") as session:
        bench = generate_benchmark(args.benchmark, args.scale)
        detector = HotspotDetector(_config_for(args.variant))
        session.set_config(detector.config)
        session.set_dataset("training_clips", obs.fingerprint_clipset(bench.training))
        session.set_dataset("benchmark", args.benchmark)
        session.set_dataset("scale", args.scale)
        detector.fit(bench.training)
        result = detector.score(bench.testing)
        score = result.score
        session.record(
            hits=score.hits,
            actual=score.actual_hotspots,
            extras=score.extras,
            accuracy=score.accuracy,
            eval_seconds=round(result.eval_seconds, 4),
        )
        if args.json:
            print(
                json.dumps(
                    {
                        "benchmark": args.benchmark,
                        "variant": args.variant,
                        "hits": score.hits,
                        "actual": score.actual_hotspots,
                        "extras": score.extras,
                        "accuracy": score.accuracy,
                    }
                )
            )
        else:
            print(
                f"{args.benchmark} [{args.variant}]: "
                f"{score.hits}/{score.actual_hotspots} hits, "
                f"{score.extras} extras, accuracy {score.accuracy:.2%}"
            )
        session.finish()
    return 0


def cmd_report(args) -> int:
    try:
        manifest = obs.RunManifest.load(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"cannot read manifest {args.manifest}: {exc}", file=sys.stderr)
        return 2
    if args.compare is not None:
        try:
            other = obs.RunManifest.load(args.compare)
        except (OSError, ValueError) as exc:
            print(f"cannot read manifest {args.compare}: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps({"base": manifest.to_dict(), "other": other.to_dict()}))
        else:
            print(obs.compare_manifests(manifest, other))
        return 0
    if args.json:
        print(json.dumps(manifest.to_dict()))
    else:
        print(obs.render_manifest(manifest))
    return 0


def cmd_info(args) -> int:
    detector = load_detector(args.model)
    model = detector.model_
    assert model is not None
    print(f"model: {args.model}")
    print(f"  clip spec: core {detector.config.spec.core_side}, clip {detector.config.spec.clip_side}")
    print(f"  kernels: {len(model.kernels)}")
    for kernel in model.kernels:
        gate = len(kernel.key_set) if kernel.key_set is not None else "open"
        print(
            f"    #{kernel.cluster_index}: {kernel.hotspot_count} hs / "
            f"{kernel.nonhotspot_count} nhs, {kernel.model.n_support_} SVs, "
            f"gate keys: {gate}"
        )
    print(f"  feedback kernel: {'yes' if detector.feedback_ else 'no'}")
    print(f"  decision threshold: {detector.config.decision_threshold:+.2f}")
    from repro.core.persist import read_archive_info

    registry = read_archive_info(args.model).get("registry")
    if registry and registry.get("name"):
        print(f"  registry name: {registry['name']}")
    return 0


def cmd_explain(args) -> int:
    from repro.core.inspect import explain_clip
    from repro.geometry.rect import Rect

    detector = load_detector(args.model)
    layout = load_layout_auto(args.layout)
    spec = detector.config.spec
    core = Rect(args.x, args.y, args.x + spec.core_side, args.y + spec.core_side)
    clip = layout.cut_clip_at_core(spec, core, args.layer)
    explanation = explain_clip(detector, clip)
    print(f"site ({args.x}, {args.y}) + {spec.core_side} core:")
    for line in explanation.summary_lines():
        print(f"  {line}")
    return 0


def cmd_serve(args) -> int:
    import signal

    from repro.serve import (
        BatchingConfig,
        HotspotServer,
        ServeService,
        ServerConfig,
    )

    cache = None
    if not args.no_cache:
        from repro.cache import HotspotCache

        cache = HotspotCache(directory=args.cache_dir)
    service = ServeService(
        batching=BatchingConfig(
            max_batch_clips=args.batch_clips,
            max_delay_s=args.batch_window_ms / 1000.0,
            max_queue_clips=args.queue_limit,
            workers=args.workers,
            default_timeout_s=args.request_timeout,
        ),
        cache=cache,
        compute=args.compute,
    )
    if args.trace:
        # Spans bridge into the service registry, so /metrics exposes
        # repro_pipeline_stage_seconds{stage=...} histograms per stage.
        obs.set_tracer(obs.Tracer(metrics=service.metrics, max_spans=10_000))
    if args.json_logs:
        obs.configure_logging(True, command="serve", run_id=obs.new_run_id())
    for index, spec in enumerate(args.model):
        name, sep, path = spec.partition("=")
        if sep:
            entry = service.load_model(Path(path), name)
        else:
            entry = service.load_model(Path(spec), "default" if index == 0 else None)
        print(
            f"loaded model {entry.name!r} from {entry.path} "
            f"({entry.info['kernels']} kernels, "
            f"feedback={entry.info['feedback']})"
        )

    server = HotspotServer(
        service,
        ServerConfig(host=args.host, port=args.port),
        verbose=args.verbose,
    )
    server.start()
    print(f"serving on {server.url} (Ctrl-C or SIGTERM drains and stops)")
    registration = None
    if args.frontend:
        registration = _register_with_frontend(args.frontend, server, service)
        print(f"registering with frontend {args.frontend}")

    def _shutdown(signum, frame):
        print(f"signal {signum}: draining queue and shutting down")
        # stop() joins worker threads; run it off the signal frame.
        import threading

        threading.Thread(target=server.stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    server.wait()
    if registration is not None:
        registration.set()
    obs.set_tracer(None)
    obs.configure_logging(False)
    print("server stopped")
    return 0


def _register_with_frontend(frontend_url: str, server, service):
    """Self-register this replica with a FleetFrontend, and keep it so.

    Registers on startup and heartbeats at TTL/3; a heartbeat answered
    404 means the frontend restarted and forgot this replica, so it
    simply re-registers — the rotation heals without operator action.
    Returns the Event that stops the loop.
    """
    import threading

    from repro.errors import TransientError
    from repro.fleet import FleetClient

    client = FleetClient(frontend_url, timeout=5.0)
    name = f"replica-{server.url}"
    stop = threading.Event()
    state = {"ttl_s": 10.0, "registered": False}

    def _version() -> str:
        try:
            return str(service.registry.signature())
        except Exception:
            return ""

    def _register() -> None:
        try:
            code, answer = client.post_json(
                "/fleet/v1/register",
                {
                    "name": name,
                    "url": server.url,
                    "kind": "serve",
                    "version": _version(),
                },
            )
        except TransientError:
            state["registered"] = False
            return
        state["registered"] = code == 200
        if code == 200:
            state["ttl_s"] = float(answer.get("ttl_s", state["ttl_s"]))

    def _loop() -> None:
        _register()
        while not stop.wait(max(0.5, state["ttl_s"] / 3)):
            if not state["registered"]:
                _register()
                continue
            try:
                code, _ = client.post_json(
                    "/fleet/v1/heartbeat",
                    {"name": name, "version": _version()},
                )
            except TransientError:
                continue  # frontend blip; next beat retries
            if code == 404:
                _register()

    threading.Thread(
        target=_loop, name="repro-serve-register", daemon=True
    ).start()
    return stop


def cmd_fleet_scan(args) -> int:
    import subprocess

    from repro.errors import ScanDrainedError
    from repro.fleet import FleetCoordinator, FleetOptions

    with _ObsSession(args, "fleet-scan") as session:
        detector = load_detector(args.model)
        if args.compute is not None:
            detector.set_compute(args.compute)
        layout = load_layout_auto(args.layout)
        journal_dir = (
            None
            if args.no_journal
            else args.journal_dir or args.layout.with_suffix(".scanjournal")
        )
        options = FleetOptions(
            host=args.host,
            port=args.port,
            lease_ttl_s=args.lease_ttl,
            shard_side=args.shard_side,
            journal_dir=journal_dir,
            resume=args.resume,
            keep_journal=args.keep_journal,
            cache_urls=list(args.cache_url or []),
            # The manifest run id doubles as the fleet's root request
            # id: every worker RPC, log line and shipped span carries it.
            request_id=(
                session.manifest.run_id
                if session.manifest is not None
                else obs.new_request_id()
            ),
            trace=args.trace is not None,
        )
        session.set_config(detector.config)
        session.set_dataset("layout", obs.fingerprint_layout(layout.layer(args.layer)))
        session.set_dataset("source", str(args.layout))

        coordinator = FleetCoordinator(
            detector, layout, layer=args.layer, options=options
        )
        coordinator.start()
        print(
            f"coordinator on {coordinator.url}: "
            f"{len(coordinator.shards)} shards "
            f"({len(coordinator._resumed)} resumed), "
            f"epoch {coordinator.epoch}",
            file=sys.stderr,
        )

        # Warm standby: a fleet-coordinator subprocess tailing this
        # coordinator's replicate feed on a pre-allocated port, so every
        # worker's endpoint list stays valid across standby respawns.
        endpoints = [coordinator.url]
        standby_port = None
        standby = None
        if args.standby:
            from repro.resilience.drill import _free_port

            standby_port = _free_port()
            endpoints.append(f"http://{args.host}:{standby_port}")

        def spawn_standby() -> subprocess.Popen:
            command = [
                sys.executable,
                "-m",
                "repro",
                "fleet-coordinator",
                "--model",
                str(args.model),
                "--layout",
                str(args.layout),
                "--layer",
                str(args.layer),
                "--host",
                args.host,
                "--port",
                str(standby_port),
                "--lease-ttl",
                str(args.lease_ttl),
                "--standby-of",
                coordinator.url,
                "--probe-interval",
                str(args.probe_interval),
            ]
            if args.shard_side is not None:
                command += ["--shard-side", str(args.shard_side)]
            if args.compute is not None:
                command += ["--compute", args.compute]
            if journal_dir is not None:
                command += [
                    "--journal-dir",
                    str(Path(journal_dir).with_name(
                        Path(journal_dir).name + "-standby"
                    )),
                ]
            return subprocess.Popen(command)

        if args.standby:
            standby = spawn_standby()
            print(
                f"standby coordinator on {endpoints[1]} "
                f"(probe every {args.probe_interval}s)",
                file=sys.stderr,
            )

        def spawn(index: int) -> subprocess.Popen:
            command = [
                sys.executable,
                "-m",
                "repro",
                "fleet-worker",
                "--url",
                ",".join(endpoints),
                "--model",
                str(args.model),
                "--layout",
                str(args.layout),
                "--worker-id",
                f"worker-{index}",
            ]
            return subprocess.Popen(command)

        budget = (
            args.worker_restarts
            if args.worker_restarts is not None
            else 3 * args.fleet_workers
        )
        workers = {i: spawn(i) for i in range(args.fleet_workers)}
        restarts = 0
        started = time.perf_counter()
        try:
            while not coordinator.wait(timeout=0.2):
                if standby is not None and standby.poll() is not None:
                    # The standby shares the worker respawn budget: a
                    # crash-looping standby drains it instead of
                    # flapping forever.
                    code = standby.poll()
                    standby = None
                    if restarts < budget:
                        restarts += 1
                        print(
                            f"standby died (exit {code}); "
                            f"respawning ({restarts}/{budget})",
                            file=sys.stderr,
                        )
                        standby = spawn_standby()
                for index, proc in list(workers.items()):
                    code = proc.poll()
                    if code is None or code == 0:
                        continue
                    # A dead worker's lease expires on its own; respawn
                    # within budget so throughput recovers.
                    del workers[index]
                    if restarts < budget:
                        restarts += 1
                        print(
                            f"worker-{index} died (exit {code}); "
                            f"respawning ({restarts}/{budget})",
                            file=sys.stderr,
                        )
                        workers[index] = spawn(index)
                if not workers and not coordinator.wait(timeout=0):
                    status = coordinator.status()
                    print(
                        f"fleet drained: every worker is gone and the "
                        f"respawn budget ({budget}) is spent; "
                        f"{status['completed']}/{status['shards']} shards "
                        "journaled — rerun with --resume to finish",
                        file=sys.stderr,
                    )
                    session.record(drained=True, worker_restarts=restarts)
                    session.finish()
                    return 3
            for proc in workers.values():
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.terminate()
            quarantine = QuarantineReport()
            try:
                scan = coordinator.result(quarantine)
            except ScanDrainedError as exc:  # pragma: no cover — raced stop
                print(f"fleet scan drained: {exc}", file=sys.stderr)
                return 3
            result = detector.detect(
                layout, layer=args.layer, threshold=args.threshold, scan=scan
            )
        finally:
            status = coordinator.status()
            coordinator.stop()
            if standby is not None and standby.poll() is None:
                standby.terminate()
            for proc in workers.values():
                if proc.poll() is None:
                    proc.terminate()
        if args.trace is not None and session.tracer is not None:
            # One coordinator-rooted timeline: this process's spans plus
            # every span document the workers shipped with their pushes.
            documents = [
                obs.span_document(
                    session.tracer, "coordinator", options.request_id
                )
            ]
            documents.extend(coordinator.trace_documents())
            merged = obs.merge_chrome_traces(documents)
            try:
                args.trace.write_text(json.dumps(merged))
                print(f"fleet trace -> {args.trace}", file=sys.stderr)
                session.artifact("trace", args.trace)
            except OSError as exc:
                print(f"warning: could not write trace: {exc}", file=sys.stderr)
            # finish() must not overwrite the merged trace with the
            # coordinator-only view.
            session.trace_path = None
        cache_nodes = {}
        for url in options.cache_urls:
            from repro.fleet import FleetClient

            try:
                code, document = FleetClient(url, timeout=5.0).get_json(
                    "/cache/v1/stats"
                )
            except Exception:
                continue
            if code == 200:
                cache_nodes[url] = document
        session.record(
            candidates=result.extraction.candidate_count,
            reports=result.report_count,
            quarantined=result.quarantined,
            eval_seconds=round(result.eval_seconds, 4),
            backend=result.backend,
            fleet_workers=args.fleet_workers,
            fleet_standby=bool(args.standby),
            fleet_epoch=status.get("epoch", 1),
            worker_restarts=restarts,
            shards_total=status["shards"],
            shards_resumed=status["resumed"],
            leases_expired=status["leases_expired"],
            pushes_stale=status["pushes_stale"],
            pushes_rejected=status["pushes_rejected"],
            lease_reassignments=sum(status["reassigned_shards"].values()),
            fleet_request_id=options.request_id,
            fleet_cache=status.get("cache", {}),
            cache_nodes=cache_nodes,
        )
        quarantine_note = (
            f", {result.quarantined} quarantined" if result.quarantined else ""
        )
        print(
            f"{result.extraction.candidate_count} candidates, "
            f"{result.report_count} hotspot reports{quarantine_note} "
            f"({time.perf_counter() - started:.1f}s across "
            f"{args.fleet_workers} workers)"
        )
        print(
            f"fleet: {status['shards']} shards ({status['resumed']} resumed), "
            f"{status['leases_expired']} leases expired, "
            f"{status['pushes_stale']} stale pushes, "
            f"{restarts} worker restarts",
            file=sys.stderr,
        )
        if args.quarantine is not None:
            quarantine.write(args.quarantine)
            session.artifact("quarantine", args.quarantine)
            print(f"quarantine report -> {args.quarantine}", file=sys.stderr)
        for clip in result.reports:
            print(
                f"  core ({clip.core.x0}, {clip.core.y0}) - "
                f"({clip.core.x1}, {clip.core.y1})"
            )
        if args.report is not None:
            library = GdsLibrary(name="HOTSPOTS")
            top = library.new_structure("HOTSPOT_MARKERS")
            for clip in result.reports:
                top.add(GdsBoundary(63, 0, list(clip.core.corners())))
            write_library_file(library, args.report)
            session.artifact("report", args.report)
            print(f"marker overlay -> {args.report}")
        session.finish(
            default_manifest=args.model.with_suffix(".fleet.manifest.json")
        )
    return 0


def _render_fleet_status(status: dict, url: str) -> None:
    """Human rendering of one /fleet/v1/status document."""
    state = "done" if status.get("done") else "running"
    request_id = status.get("request_id") or "?"
    role = status.get("role", "primary")
    epoch = status.get("epoch", "?")
    print(
        f"fleet {url} [{state}]  {role} epoch {epoch}  request {request_id}"
    )
    eta = status.get("eta_s")
    line = (
        f"  shards {status.get('completed', 0)}/{status.get('shards', 0)} "
        f"({status.get('leased', 0)} leased, {status.get('pending', 0)} "
        f"pending, {status.get('resumed', 0)} resumed)  "
        f"{status.get('throughput_shards_per_s', 0.0):.2f} shards/s"
    )
    if eta is not None:
        line += f"  eta {eta:.0f}s"
    print(line)
    print(
        f"  leases: {status.get('leases_granted', 0)} granted, "
        f"{status.get('leases_expired', 0)} expired; pushes: "
        f"{status.get('pushes_accepted', 0)} ok, "
        f"{status.get('pushes_stale', 0)} stale, "
        f"{status.get('pushes_rejected', 0)} rejected"
    )
    durations = status.get("durations") or {}
    if durations.get("count"):
        print(
            f"  shard wall: p50 {durations['p50']:.3f}s  "
            f"p95 {durations['p95']:.3f}s  mean {durations['mean']:.3f}s"
        )
    cache = status.get("cache") or {}
    if cache.get("remote_hits") or cache.get("remote_misses"):
        line = (
            f"  remote cache: {cache.get('remote_hits', 0)} hits / "
            f"{cache.get('remote_misses', 0)} misses "
            f"(rate {cache.get('hit_rate', 0.0):.2f})"
        )
        if cache.get("repairs") or cache.get("probes"):
            line += (
                f", {cache.get('repairs', 0)} repairs, "
                f"{cache.get('probes', 0)} probes"
            )
        print(line)
    marks = {"up": "+", "half_open": "~", "down": "-"}
    for node, health in sorted((cache.get("nodes") or {}).items()):
        state = health.get("state", "?")
        print(
            f"    {marks.get(state, '?')} {node} [{state}]: "
            f"{health.get('failures', 0)} failing, "
            f"{health.get('errors', 0)} errors, "
            f"{health.get('repairs', 0)} repairs, "
            f"{health.get('hints_pending', 0)} hints pending"
        )
    for worker in status.get("worker_details", []):
        mark = "+" if worker.get("alive") else "-"
        print(
            f"  {mark} {worker.get('name')}: {worker.get('pushes', 0)} "
            f"pushes, {worker.get('shards_done', 0)} done, "
            f"{worker.get('shards_stale', 0)} stale"
        )
    stragglers = set(status.get("stragglers") or ())
    for lease in status.get("leases", []):
        flag = "  <- straggler" if lease.get("shard") in stragglers else ""
        print(
            f"    shard {lease.get('shard')} -> {lease.get('worker')} "
            f"(age {lease.get('age_s', 0.0):.1f}s, expires in "
            f"{lease.get('expires_in_s', 0.0):.1f}s){flag}"
        )


def cmd_fleet_status(args) -> int:
    from repro.errors import FleetError, TransientError
    from repro.fleet import FleetClient

    try:
        client = FleetClient(args.url, timeout=5.0)
    except FleetError as exc:
        print(f"bad coordinator URL: {exc}", file=sys.stderr)
        return 2
    interval = max(0.2, args.interval)
    misses = 0
    while True:
        try:
            code, status = client.get_json("/fleet/v1/status")
            if code != 200:
                raise TransientError(f"status fetch failed with HTTP {code}")
        except (FleetError, TransientError) as exc:
            # A restarting coordinator (or a standby mid-promotion) is a
            # row in the watch, not a crash; one-shot mode still exits.
            if not args.watch:
                print(f"coordinator unreachable: {exc}", file=sys.stderr)
                return 2
            misses += 1
            if not args.json:
                print("\x1b[2J\x1b[H", end="")
                print(
                    f"fleet {args.url} [coordinator unreachable (epoch ?)]"
                    f"  retry {misses}"
                )
            # Bounded backoff: 1x..8x the refresh interval, capped.
            time.sleep(min(30.0, interval * min(2 ** (misses - 1), 8)))
            continue
        misses = 0
        if args.json:
            print(json.dumps(status, sort_keys=True))
        else:
            if args.watch:
                # Clear + home: a live refreshing pane, not a scrollback
                # flood.
                print("\x1b[2J\x1b[H", end="")
            _render_fleet_status(status, args.url)
        if not args.watch or status.get("done"):
            return 0
        time.sleep(interval)


def cmd_fleet_worker(args) -> int:
    import os

    from repro.errors import FleetError, TransientError
    from repro.fleet import FleetWorker

    if args.json_logs:
        obs.configure_logging(True, command="fleet-worker", run_id=obs.new_run_id())
    worker_id = args.worker_id or f"{os.uname().nodename}-{os.getpid()}"
    detector = load_detector(args.model)
    layout = load_layout_auto(args.layout)
    worker = FleetWorker(
        args.url, detector, layout, worker_id=worker_id, cache_dir=args.cache_dir
    )
    try:
        summary = worker.run()
    except (FleetError, TransientError) as exc:
        print(f"fleet worker {worker_id} aborted: {exc}", file=sys.stderr)
        return 2
    finally:
        obs.configure_logging(False)
    print(
        f"worker {worker_id}: {summary['shards_done']} shards done, "
        f"{summary['shards_stale']} stale, {summary['rehomes']} rehomes"
    )
    return 0


def cmd_fleet_coordinator(args) -> int:
    """Standalone coordinator process: primary, or warm standby.

    Unlike ``fleet-scan`` this never merges or clears the journal — it
    serves the lease protocol until every shard is pushed, lingers so
    workers and any standby observe ``done``, and exits leaving the
    journal on disk.  The chaos drill (and any external driver) merges
    from that journal afterwards.
    """
    import signal
    import threading

    from repro.fleet import FleetCoordinator, FleetOptions, StandbyCoordinator

    if args.json_logs:
        obs.configure_logging(
            True, command="fleet-coordinator", run_id=obs.new_run_id()
        )
    if args.trace is not None:
        obs.set_tracer(obs.Tracer())
    detector = load_detector(args.model)
    if args.compute is not None:
        detector.set_compute(args.compute)
    layout = load_layout_auto(args.layout)
    options = FleetOptions(
        host=args.host,
        port=args.port,
        lease_ttl_s=args.lease_ttl,
        shard_side=args.shard_side,
        journal_dir=args.journal_dir,
        resume=args.resume,
        keep_journal=True,
        trace=args.trace is not None,
        cache_urls=list(args.cache_url or []),
    )
    if args.standby_of:
        role = "standby"
        node = StandbyCoordinator(
            detector,
            layout,
            args.standby_of,
            layer=args.layer,
            options=options,
            probe_interval_s=args.probe_interval,
            max_missed_probes=args.max_missed_probes,
        )
    else:
        role = "primary"
        node = FleetCoordinator(
            detector, layout, layer=args.layer, options=options
        )
    node.start()
    inner = node.inner if role == "standby" else node
    print(
        f"{role} coordinator on {node.url}: {len(inner.shards)} shards, "
        f"epoch {inner.epoch}",
        flush=True,
    )
    stopped = threading.Event()

    def _shutdown(signum, frame):
        stopped.set()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    while not stopped.is_set():
        if node.wait(timeout=0.2):
            break
    done = node.wait(timeout=0)
    if done and args.linger > 0:
        # Workers still need their final "done" lease answers, and an
        # attached standby its last replication tick; serving a little
        # past completion keeps hand-offs and drills clean.
        time.sleep(args.linger)
    if args.trace is not None:
        documents = [
            obs.span_document(
                obs.get_tracer(),
                "coordinator" if role == "primary" else "standby",
                inner.request_id,
            )
        ]
        documents.extend(inner.trace_documents())
        try:
            args.trace.write_text(json.dumps(obs.merge_chrome_traces(documents)))
            print(f"fleet trace -> {args.trace}", file=sys.stderr)
        except OSError as exc:
            print(f"warning: could not write trace: {exc}", file=sys.stderr)
    status = inner.status()
    node.stop()
    obs.set_tracer(None)
    obs.configure_logging(False)
    print(
        f"coordinator exiting: {status['completed']}/{status['shards']} "
        f"shards journaled, role {inner.role}, epoch {status['epoch']}, "
        f"{status['stale_epoch_fenced']} stale-epoch requests fenced",
        file=sys.stderr,
    )
    return 0 if done else 1


def cmd_chaos(args) -> int:
    from repro.resilience.drill import ChaosDrill, DrillSchedule, ServeFleetDrill

    spec = args.schedule
    if spec.startswith("@"):
        spec = Path(spec[1:]).read_text()
    schedule = DrillSchedule.parse(spec)
    if args.serve_replicas > 0:
        drill = ServeFleetDrill(
            args.model,
            args.layout,
            schedule,
            replicas=args.serve_replicas,
            requests=args.requests,
            layer=args.layer,
            workdir=args.workdir,
            deadline_s=args.deadline,
        )
        print(
            f"serve drill: seed {schedule.seed}, {len(schedule.actions)} "
            f"scheduled actions, {args.serve_replicas} replicas, "
            f"{args.requests} requests",
            file=sys.stderr,
        )
    else:
        drill = ChaosDrill(
            args.model,
            args.layout,
            schedule,
            layer=args.layer,
            workers=args.fleet_workers,
            standby=not args.no_standby,
            lease_ttl_s=args.lease_ttl,
            probe_interval_s=args.probe_interval,
            shard_side=args.shard_side,
            workdir=args.workdir,
            trace=args.trace,
            deadline_s=args.deadline,
            cache_nodes=args.cache_nodes,
            scans=args.scans,
        )
        print(
            f"chaos drill: seed {schedule.seed}, {len(schedule.actions)} "
            f"scheduled actions, {args.fleet_workers} workers"
            f"{'' if args.no_standby else ' + warm standby'}"
            + (
                f", {args.cache_nodes} cache nodes x {args.scans} scans"
                if args.cache_nodes
                else ""
            ),
            file=sys.stderr,
        )
    report = drill.run()
    for entry in report.timeline:
        print(
            f"  [{entry['t_s']:7.2f}s] {entry['action']} ({entry['detail']})",
            file=sys.stderr,
        )
    if args.out is not None:
        args.out.write_text(json.dumps(report.to_dict(), indent=2))
        print(f"drill report -> {args.out}", file=sys.stderr)
    print(
        f"drill: leader={report.leader or '?'} epoch={report.leader_epoch} "
        f"promoted={report.promoted} "
        f"shards={report.completed}/{report.shards} "
        f"fenced={report.stale_epoch_fenced} identical={report.identical} "
        f"({report.wall_s:.1f}s)"
    )
    if report.cache_nodes:
        warm = (
            f"{report.warm_hit_rate:.2f}"
            if report.warm_hit_rate is not None
            else "n/a"
        )
        print(
            f"drill cache: {len(report.cache_nodes)} nodes, "
            f"{report.scans_completed} scans, warm hit rate {warm}, "
            f"{report.remote_corrupt} corrupt blobs served"
        )
    if report.error:
        print(f"drill error: {report.error}", file=sys.stderr)
    ok = report.identical and not report.error
    if args.expect_promotion and not report.promoted:
        print("drill failed: expected a standby promotion", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def _serve_forever(server, banner: str) -> int:
    """Run one fleet HTTP server until SIGTERM/SIGINT."""
    import signal
    import threading

    stopped = threading.Event()

    def _shutdown(signum, frame):
        print(f"signal {signum}: stopping")
        stopped.set()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    print(banner)
    stopped.wait()
    server.stop()
    return 0


def cmd_fleet_cache(args) -> int:
    from repro.cache import DiskCacheStore, MemoryCacheStore
    from repro.fleet import CacheServer, FleetClient, FleetHTTPServer

    store = (
        DiskCacheStore(args.dir)
        if args.dir is not None
        else MemoryCacheStore(max_entries=args.max_entries)
    )
    server = FleetHTTPServer(
        CacheServer(store), host=args.host, port=args.port
    ).start()
    if args.join:
        advertise = args.advertise or server.url
        for endpoint in args.join.split(","):
            endpoint = endpoint.strip()
            if not endpoint:
                continue
            try:
                code, answer = FleetClient(endpoint, timeout=5.0).post_json(
                    "/fleet/v1/cache-join", {"url": advertise}
                )
                print(
                    f"joined {endpoint} as {advertise}: HTTP {code} "
                    f"{answer.get('status', '?')}",
                    file=sys.stderr,
                )
            except Exception as exc:
                # A dead standby in the join list is routine churn; the
                # surviving coordinator already knows this node.
                print(f"join {endpoint} failed: {exc}", file=sys.stderr)
    return _serve_forever(
        server,
        f"cache node on {server.url} "
        f"({'disk: ' + str(args.dir) if args.dir else 'memory'})",
    )


def cmd_fleet_frontend(args) -> int:
    import threading

    from repro.fleet import FleetClient, FleetFrontend, FleetHTTPServer
    from repro.fleet.membership import MemberTable

    frontend = FleetFrontend(MemberTable(ttl_s=args.member_ttl))
    replicas = list(args.replica or [])
    for url in replicas:
        frontend.members.register(f"replica-{url}", url, kind="serve")

    probing = threading.Event()

    def _probe_loop() -> None:
        # Pre-registered replicas don't self-heartbeat; probe their
        # /healthz so liveness (and registry-version drift) stays fresh.
        while not probing.wait(max(0.5, args.member_ttl / 3)):
            for url in replicas:
                try:
                    status, document = FleetClient(url, timeout=5.0).get_json(
                        "/healthz"
                    )
                except Exception:
                    continue
                if status == 200:
                    frontend.members.heartbeat(
                        f"replica-{url}",
                        str(document.get("registry_version", "")),
                    )

    if replicas:
        threading.Thread(
            target=_probe_loop, name="repro-fleet-probe", daemon=True
        ).start()
    server = FleetHTTPServer(frontend, host=args.host, port=args.port).start()
    try:
        return _serve_forever(
            server,
            f"frontend on {server.url} ({len(replicas)} pre-registered replicas)",
        )
    finally:
        probing.set()


def cmd_client(args) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.url)
    if args.action == "health":
        status, document = client.health_document()
        print(json.dumps(document) if args.json else f"{status}: {document}")
        return 0 if status == 200 else 1
    if args.action == "metrics":
        print(client.metrics_text(), end="")
        return 0
    if args.action == "models":
        document = client.models()
        if args.json:
            print(json.dumps(document))
        else:
            for model in document["models"]:
                print(
                    f"{model['name']}: {model['path']} "
                    f"({model['kernels']} kernels, reloads={model['reloads']})"
                )
        return 0
    if args.action == "predict":
        if args.clips is None:
            print("predict requires --clips", file=sys.stderr)
            return 2
        from repro.data.benchmarks import ICCAD_SPEC

        clipset = load_clipset_gds(args.clips, ICCAD_SPEC)
        clips = list(clipset)[: args.limit] if args.limit else list(clipset)
        result = client.predict(
            clips, model=args.model_name, threshold=args.threshold
        )
        if args.json:
            print(
                json.dumps(
                    {
                        "model": result.model,
                        "threshold": result.threshold,
                        "hotspots": result.hotspot_count,
                        "clips": len(clips),
                        "flags": result.flags.tolist(),
                    }
                )
            )
        else:
            print(
                f"{result.hotspot_count}/{len(clips)} clips flagged hotspot "
                f"(model {result.model}, threshold {result.threshold:+.2f})"
            )
        return 0
    if args.action == "scan":
        if args.layout is None:
            print("scan requires --layout", file=sys.stderr)
            return 2
        layout = load_layout_auto(args.layout)
        rects = layout.layer(args.layer).rects
        report = client.scan(
            rects, layer=args.layer, model=args.model_name, threshold=args.threshold
        )
        if args.json:
            print(json.dumps(report))
        else:
            print(
                f"{report['candidates']} candidates, {report['count']} hotspot "
                f"reports ({report['eval_seconds']:.1f}s server-side)"
            )
            for item in report["reports"]:
                x0, y0, x1, y1 = item["core"]
                print(f"  core ({x0}, {y0}) - ({x1}, {y1})")
        return 0
    raise AssertionError(f"unhandled action {args.action}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ML lithography hotspot detection (DAC 2013 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_train(subparsers)
    _add_scan(subparsers)
    _add_score(subparsers)
    _add_report(subparsers)
    _add_info(subparsers)
    _add_explain(subparsers)
    _add_serve(subparsers)
    _add_client(subparsers)
    _add_fleet_scan(subparsers)
    _add_fleet_status(subparsers)
    _add_fleet_worker(subparsers)
    _add_fleet_coordinator(subparsers)
    _add_chaos(subparsers)
    _add_fleet_cache(subparsers)
    _add_fleet_frontend(subparsers)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Raw argv is captured into the run manifest for reproducibility.
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    handlers = {
        "generate": cmd_generate,
        "train": cmd_train,
        "scan": cmd_scan,
        "score": cmd_score,
        "report": cmd_report,
        "info": cmd_info,
        "explain": cmd_explain,
        "serve": cmd_serve,
        "client": cmd_client,
        "fleet-scan": cmd_fleet_scan,
        "fleet-status": cmd_fleet_status,
        "fleet-worker": cmd_fleet_worker,
        "fleet-coordinator": cmd_fleet_coordinator,
        "chaos": cmd_chaos,
        "fleet-cache": cmd_fleet_cache,
        "fleet-frontend": cmd_fleet_frontend,
    }
    # REPRO_FAULTS drives the CI chaos job: any command can run under an
    # injected fault plan.  Uninstall afterwards — tests call main()
    # in-process and must not inherit the plan.
    injector = faults.from_env()
    try:
        return handlers[args.command](args)
    finally:
        if injector is not None:
            faults.uninstall()


if __name__ == "__main__":
    sys.exit(main())
