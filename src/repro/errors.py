"""Exception hierarchy for the :mod:`repro` hotspot-detection library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class at API boundaries.  Subsystems raise the most
specific subclass available; nothing in the library raises a bare
``Exception`` or ``ValueError`` for conditions that are specific to this
domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate rectangle, open polygon, ...)."""


class GdsiiError(ReproError):
    """Malformed GDSII stream data or unsupported record usage."""


class GdsiiRecordError(GdsiiError):
    """A single GDSII record could not be decoded or encoded."""


class LayoutError(ReproError):
    """Inconsistent layout-model operation (unknown layer, bad clip...)."""


class TopologyError(ReproError):
    """Topological classification failure (empty pattern, bad radix...)."""


class TilingError(ReproError):
    """MTCG tiling or constraint-graph construction failure."""


class FeatureError(ReproError):
    """Critical-feature extraction failure."""


class SvmError(ReproError):
    """SVM training or prediction failure."""


class NotFittedError(SvmError):
    """A model was used for prediction before being trained."""


class ConvergenceError(SvmError):
    """The SMO solver failed to reach the requested tolerance."""


class ConfigError(ReproError):
    """Invalid detector configuration value."""


class DataError(ReproError):
    """Benchmark-data generation or loading failure."""


class ServeError(ReproError):
    """Base class for inference-service failures."""


class ModelNotFoundError(ServeError):
    """The requested model name is not loaded in the registry."""


class QueueFullError(ServeError):
    """Backpressure: the batching queue cannot accept more work."""


class RequestTimeoutError(ServeError):
    """A queued request missed its deadline before being evaluated."""


class ServerClosedError(ServeError):
    """The service is draining or stopped and rejects new work."""
