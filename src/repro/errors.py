"""Exception hierarchy for the :mod:`repro` hotspot-detection library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class at API boundaries.  Subsystems raise the most
specific subclass available; nothing in the library raises a bare
``Exception`` or ``ValueError`` for conditions that are specific to this
domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class InputError(ReproError):
    """Malformed external input: a corrupt file, record, clip or payload.

    Input errors are *quarantinable*: pipelines that process many
    independent inputs (clip archives, layout scans) may skip the
    offending item, record it in a
    :class:`~repro.resilience.quarantine.QuarantineReport` and carry on,
    instead of aborting the whole run.
    """


class TransientError(ReproError):
    """A failure that may succeed on retry (IO hiccup, injected fault).

    :func:`repro.resilience.retry.call_with_retry` retries these by
    default; anything else is treated as a permanent failure.
    """


class StageTimeout(ReproError):
    """A pipeline stage exceeded its deadline.

    Raised by :class:`repro.resilience.retry.Deadline` checks (and by
    injected ``timeout`` faults).  Training checkpoints persist before
    the raise, so a timed-out ``repro train`` resumes with ``--resume``.
    """


class CheckpointError(ReproError):
    """A training checkpoint could not be written, read or validated."""


class GeometryError(InputError):
    """Invalid geometric input (degenerate rectangle, open polygon, ...)."""


class GdsiiError(InputError):
    """Malformed GDSII stream data or unsupported record usage."""


class GdsiiRecordError(GdsiiError):
    """A single GDSII record could not be decoded or encoded."""


class LayoutError(InputError):
    """Inconsistent layout-model operation (unknown layer, bad clip...)."""


class TopologyError(ReproError):
    """Topological classification failure (empty pattern, bad radix...)."""


class TilingError(ReproError):
    """MTCG tiling or constraint-graph construction failure."""


class FeatureError(ReproError):
    """Critical-feature extraction failure."""


class SvmError(ReproError):
    """SVM training or prediction failure."""


class NotFittedError(SvmError):
    """A model was used for prediction before being trained."""


class ConvergenceError(SvmError):
    """The SMO solver failed to reach the requested tolerance."""


class ConfigError(ReproError):
    """Invalid detector configuration value."""


class DataError(InputError):
    """Benchmark-data generation or loading failure."""


class WorkError(ReproError):
    """Base class for supervised worker-pool failures."""


class WorkerCrashError(WorkError):
    """A pool worker died (native crash, OOM kill, SIGKILL) mid-task.

    The supervisor retries the in-flight task on a fresh worker; this
    error surfaces only when retries (and bisection, for splittable
    tasks) are exhausted.
    """


class PoisonTaskError(WorkError):
    """A task repeatedly killed workers and was isolated by bisection.

    Poison tasks are routed into the run's
    :class:`~repro.resilience.quarantine.QuarantineReport` instead of
    failing the scan; the error records what the offending unit was.
    """


class ScanDrainedError(WorkError):
    """A sharded scan drained on request (SIGTERM) before completing.

    Completed shards are journaled; rerun with ``--resume`` to finish.
    """


class ServeError(ReproError):
    """Base class for inference-service failures."""


class ModelNotFoundError(ServeError):
    """The requested model name is not loaded in the registry."""


class QueueFullError(ServeError, TransientError):
    """Backpressure: the batching queue cannot accept more work.

    Also a :class:`TransientError` — the queue drains, so an idempotent
    caller may retry after a short backoff (HTTP 429 + ``Retry-After``).
    """


class RequestTimeoutError(ServeError):
    """A queued request missed its deadline before being evaluated."""


class ServerClosedError(ServeError):
    """The service is draining or stopped and rejects new work."""


class CircuitOpenError(ServeError, TransientError):
    """A circuit breaker is open: the model is failing, calls shed fast.

    ``retry_after_s`` is the breaker's remaining cool-down, surfaced as
    the HTTP ``Retry-After`` header on the 503 response.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class FleetError(ReproError):
    """Base class for distributed-fleet (coordinator/worker/cache) failures."""


class FleetProtocolError(FleetError):
    """A fleet RPC payload does not match the wire format (or its digest)."""


class FleetHandshakeError(FleetError):
    """A worker's scan fingerprint disagrees with the coordinator's.

    Raised when a worker joins a fleet with a different model archive,
    layout, layer or shard grid than the coordinator partitioned — the
    worker must abort loudly rather than contribute margins computed
    under different state.
    """


class LeaseLostError(FleetError, TransientError):
    """The coordinator expired or reassigned a shard lease this worker held.

    Transient by design: the worker abandons the shard (another worker
    owns it now) and goes back to the lease queue.
    """


class StaleEpochError(FleetError):
    """A fleet RPC carried a leader epoch the coordinator has moved past.

    Raised client-side when a request is fenced with 409
    ``stale_epoch`` and the worker cannot re-handshake against the new
    leader.  The fence is what keeps first-push-wins intact across a
    coordinator fail-over: a zombie primary's workers (or a worker
    holding a pre-promotion lease) can never double-accept a shard on
    the new leader.
    """
