"""Run manifests: one JSON artifact per train / detect / bench run.

A :class:`RunManifest` captures everything needed to compare two runs
without re-running them: the command and arguments, a summary of the
:class:`~repro.core.config.DetectorConfig`, a content fingerprint of the
dataset, per-stage timing aggregates pulled from the tracer, headline
metrics (accuracy, false alarms, extras, runtime), and the host
environment.  The CLI writes one next to every model / report it
produces; ``repro report <manifest>`` renders or diffs them.

Fingerprints hash geometry, not file paths: a clip set fingerprints as
the sha256 over every clip's core/window/rect integer coordinates and
label, so the same benchmark generated twice — or moved between
machines — fingerprints identically, while any geometric change shows
up as a different digest.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
import uuid
from hashlib import sha256
from pathlib import Path
from typing import Any, Iterable, Optional

SCHEMA_VERSION = 1


def new_run_id() -> str:
    """A sortable, collision-safe run id: UTC stamp + random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def new_request_id() -> str:
    """A compact id for one serving request (X-Request-Id default)."""
    return uuid.uuid4().hex[:16]


def config_summary(config: Any) -> dict:
    """A JSON-safe dump of a (possibly nested) config dataclass."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return _json_safe(dataclasses.asdict(config))
    if isinstance(config, dict):
        return _json_safe(config)
    return {"repr": repr(config)}


def fingerprint_rects(rects: Iterable) -> str:
    """sha256 over an iterable of rectangle-like (x0, y0, x1, y1).

    The digest format is load-bearing beyond manifest diffing: the shard
    journal (``repro.work``) stores it per shard as the influence-region
    hash that ``repro scan --incremental`` matches on, and the cache keys
    in :mod:`repro.cache.keys` follow the same content-hash discipline.
    Changing the format only ever *invalidates* stored hashes (a mismatch
    costs a recompute, never a wrong reuse), but it silently turns every
    existing journal into a cold scan — bump deliberately.
    """
    digest = sha256()
    count = 0
    for rect in rects:
        digest.update(
            f"{int(rect.x0)},{int(rect.y0)},{int(rect.x1)},{int(rect.y1)};".encode()
        )
        count += 1
    digest.update(f"n={count}".encode())
    return digest.hexdigest()


def fingerprint_clipset(clips: Iterable) -> dict:
    """Content fingerprint of a clip set (order-sensitive, path-free).

    Hashes each clip's core and window coordinates, its label when
    present, and the rectangles it contains; duck-typed so it accepts
    anything with ``core``/``window``/``rects`` rectangle attributes.
    """
    digest = sha256()
    count = 0
    hotspots = 0
    for clip in clips:
        count += 1
        label = getattr(clip, "label", None)
        if label is not None:
            value = getattr(label, "value", label)  # enum-or-int labels
            digest.update(f"L{value};".encode())
            if str(value).lower() in ("hotspot", "1", "true"):
                hotspots += 1
        for name in ("core", "window"):
            rect = getattr(clip, name, None)
            if rect is not None:
                digest.update(
                    f"{name}:{int(rect.x0)},{int(rect.y0)},"
                    f"{int(rect.x1)},{int(rect.y1)};".encode()
                )
        for rect in getattr(clip, "rects", ()) or ():
            digest.update(
                f"r:{int(rect.x0)},{int(rect.y0)},{int(rect.x1)},{int(rect.y1)};".encode()
            )
    digest.update(f"n={count}".encode())
    out = {"clips": count, "sha256": digest.hexdigest()}
    if hotspots:
        out["hotspots"] = hotspots
    return out


def fingerprint_layout(layout: Any) -> dict:
    """Content fingerprint of a layout (anything exposing ``rects``)."""
    rects = list(getattr(layout, "rects", ()) or ())
    return {"rects": len(rects), "sha256": fingerprint_rects(rects)}


def environment_summary() -> dict:
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


@dataclasses.dataclass
class RunManifest:
    """The per-run artifact; see module docstring for field semantics."""

    run_id: str
    command: str
    created_unix: float
    argv: list = dataclasses.field(default_factory=list)
    config: dict = dataclasses.field(default_factory=dict)
    dataset: dict = dataclasses.field(default_factory=dict)
    stages: dict = dataclasses.field(default_factory=dict)
    metrics: dict = dataclasses.field(default_factory=dict)
    environment: dict = dataclasses.field(default_factory=dict)
    artifacts: dict = dataclasses.field(default_factory=dict)
    wall_s: float = 0.0
    schema: int = SCHEMA_VERSION
    _started_perf: float = dataclasses.field(default=0.0, repr=False, compare=False)

    # ------------------------------------------------------------------
    @classmethod
    def new(cls, command: str, argv: Optional[list] = None, run_id: Optional[str] = None):
        manifest = cls(
            run_id=run_id or new_run_id(),
            command=command,
            created_unix=time.time(),
            argv=list(argv if argv is not None else sys.argv[1:]),
            environment=environment_summary(),
        )
        manifest._started_perf = time.perf_counter()
        return manifest

    def finish(self, tracer: Optional[object] = None) -> "RunManifest":
        """Seal the run: total wall time plus the tracer's stage totals."""
        self.wall_s = round(time.perf_counter() - self._started_perf, 6)
        if tracer is not None and getattr(tracer, "enabled", False):
            self.stages = tracer.stage_totals()
        return self

    # ------------------------------------------------------------------
    def record_metrics(self, **metrics: Any) -> None:
        self.metrics.update(_json_safe(metrics))

    def record_artifact(self, kind: str, path) -> None:
        self.artifacts[kind] = str(path)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out.pop("_started_perf", None)
        return _json_safe(out)

    def write(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        fields = {f.name for f in dataclasses.fields(cls) if f.name != "_started_perf"}
        known = {k: v for k, v in data.items() if k in fields}
        known.setdefault("run_id", "unknown")
        known.setdefault("command", "unknown")
        known.setdefault("created_unix", 0.0)
        return cls(**known)

    @classmethod
    def load(cls, path) -> "RunManifest":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if hasattr(value, "item"):  # numpy scalars
        try:
            return _json_safe(value.item())
        except Exception:
            pass
    return str(value)
