"""Hierarchical span tracing for the hotspot pipeline.

A :class:`Tracer` records *spans*: named, nested intervals with wall and
CPU time plus arbitrary attributes (cluster counts, kernel rounds, clips
filtered).  Call sites use the module-level :func:`trace` context
manager::

    from repro.obs import trace

    with trace("train.kernels", kernels=len(jobs)) as span:
        ...
        span.set(rounds=total_rounds)

Nesting is tracked per thread (a thread-local span stack), so spans
recorded from worker threads become roots of their own thread row — the
Chrome trace viewer renders one row per ``tid`` anyway.

Tracing is **off by default**: the module-level current tracer is a
:class:`NullTracer` whose ``span()`` returns one shared no-op context
manager, so an uninstrumented run pays a single attribute lookup and
function call per stage — nothing is allocated and nothing is recorded.
Hot per-clip paths additionally guard on :func:`enabled` before doing
any timing work (see :mod:`repro.mtcg.features`).

A tracer can bridge into a Prometheus-style metrics registry
(:class:`repro.serve.metrics.MetricsRegistry` or anything with the same
``histogram(name, help, labels=...)`` surface): every finished span and
tally is observed into one ``pipeline_stage_seconds{stage=...}``
histogram family, so a serving process with tracing on exposes per-stage
latency through ``GET /metrics``.

Exports: :meth:`Tracer.export_chrome` emits the Chrome
``chrome://tracing`` / Perfetto event format (``ph: "X"`` complete
events, microsecond timestamps); :meth:`Tracer.export_json` a plain
span dump for programmatic diffing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Iterable, Optional

#: Bucket bounds (seconds) for pipeline-stage histograms — stages range
#: from sub-millisecond feature extractions to multi-minute kernel fits.
STAGE_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)

#: Name of the bridged metrics family (namespaced by the registry).
STAGE_METRIC = "pipeline_stage_seconds"


class Span:
    """One named, timed interval with attributes.

    Spans are context managers handed out by :meth:`Tracer.span`; use
    :meth:`set` inside the ``with`` block to attach result attributes
    (counts, parameters).  An exception escaping the block marks the
    span ``status="error"`` and re-raises.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "thread_id",
        "start_unix",
        "start_offset_s",
        "wall_s",
        "cpu_s",
        "attrs",
        "status",
        "error",
        "_tracer",
        "_cpu0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.thread_id = 0
        self.start_unix = 0.0
        self.start_offset_s = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.attrs = attrs
        self.status = "ok"
        self.error: Optional[str] = None
        self._cpu0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the running span."""
        self.attrs.update(attrs)
        return self

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        self.thread_id = threading.get_ident()
        stack = tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.start_unix = time.time()
        self._cpu0 = time.process_time()
        self.start_offset_s = time.perf_counter() - tracer.epoch_perf
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._tracer.epoch_perf - self.start_offset_s
        self.cpu_s = time.process_time() - self._cpu0
        if exc is not None:
            self.status = "error"
            self.error = f"{type(exc).__name__}: {exc}"
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(self)
        return False  # never swallow


class _NullSpan:
    """The shared do-nothing span; reentrant and stateless."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``span()`` hands out the one shared :data:`NULL_SPAN`, so the
    disabled path allocates nothing per call.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def tally(self, name: str, seconds: float = 0.0, count: int = 1) -> None:
        pass

    def stage_totals(self) -> dict:
        return {}

    def finished(self) -> list:
        return []


NULL_TRACER = NullTracer()


class Tracer:
    """A recording tracer: thread-local span stacks, bounded span store.

    Parameters
    ----------
    metrics:
        Optional metrics registry; finished spans and tallies are
        observed into the ``pipeline_stage_seconds{stage=...}``
        histogram family (see :data:`STAGE_METRIC`).
    max_spans:
        Hard cap on stored spans; beyond it spans still time and bridge
        into metrics but are not retained (``dropped`` counts them).
    """

    enabled = True

    def __init__(self, metrics: Optional[object] = None, max_spans: int = 100_000):
        self.metrics = metrics
        self.max_spans = max_spans
        self.epoch_perf = time.perf_counter()
        self.epoch_unix = time.time()
        self.dropped = 0
        self._spans: list[Span] = []
        self._tallies: dict[str, list] = {}  # name -> [count, wall_s]
        self._lock = threading.Lock()
        self._seq = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def tally(self, name: str, seconds: float = 0.0, count: int = 1) -> None:
        """Aggregate a hot-path timing without allocating a span."""
        with self._lock:
            entry = self._tallies.get(name)
            if entry is None:
                self._tallies[name] = [count, seconds]
            else:
                entry[0] += count
                entry[1] += seconds
        self._observe_metric(name, seconds)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
            else:
                self.dropped += 1
        self._observe_metric(span.name, span.wall_s)

    def _observe_metric(self, stage: str, seconds: float) -> None:
        if self.metrics is None:
            return
        try:
            self.metrics.histogram(
                STAGE_METRIC,
                "Wall seconds per pipeline stage (span durations).",
                labels=("stage",),
                buckets=STAGE_BUCKETS,
            ).labels(stage).observe(seconds)
        except Exception:
            # Observability must never take the pipeline down with it.
            self.metrics = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._tallies.clear()
            self.dropped = 0

    def stage_totals(self) -> dict[str, dict]:
        """Aggregate wall/CPU seconds and call counts per span name."""
        totals: dict[str, dict] = {}
        for span in self.finished():
            entry = totals.setdefault(
                span.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            entry["count"] += 1
            entry["wall_s"] += span.wall_s
            entry["cpu_s"] += span.cpu_s
        with self._lock:
            tallies = {name: list(v) for name, v in self._tallies.items()}
        for name, (count, wall) in tallies.items():
            entry = totals.setdefault(
                name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            entry["count"] += count
            entry["wall_s"] += wall
        return {
            name: {
                "count": entry["count"],
                "wall_s": round(entry["wall_s"], 6),
                "cpu_s": round(entry["cpu_s"], 6),
            }
            for name, entry in sorted(totals.items())
        }

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_json(self) -> dict:
        """Plain span dump: one dict per span, parent-linked by id."""
        return {
            "epoch_unix": self.epoch_unix,
            "dropped": self.dropped,
            "spans": [
                {
                    "id": s.span_id,
                    "parent": s.parent_id,
                    "name": s.name,
                    "thread": s.thread_id,
                    "start_s": round(s.start_offset_s, 6),
                    "wall_s": round(s.wall_s, 6),
                    "cpu_s": round(s.cpu_s, 6),
                    "status": s.status,
                    "error": s.error,
                    "attrs": s.attrs,
                }
                for s in self.finished()
            ],
            "tallies": self.stage_totals(),
        }

    def export_chrome(self) -> dict:
        """The Chrome ``chrome://tracing`` / Perfetto event document."""
        pid = os.getpid()
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro hotspot pipeline"},
            }
        ]
        for span in self.finished():
            args = {key: _json_safe(value) for key, value in span.attrs.items()}
            args["cpu_s"] = round(span.cpu_s, 6)
            if span.status != "ok":
                args["status"] = span.status
                args["error"] = span.error
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": round(span.start_offset_s * 1e6, 3),
                    "dur": round(span.wall_s * 1e6, 3),
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.export_chrome(), handle)

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.export_json(), handle, default=str)


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


# ----------------------------------------------------------------------
# module-level current tracer
# ----------------------------------------------------------------------

_active: object = NULL_TRACER


def get_tracer():
    """The process-wide current tracer (a :class:`NullTracer` when off)."""
    return _active


def set_tracer(tracer: Optional[object]):
    """Install ``tracer`` as the current tracer; ``None`` disables.

    Returns the installed tracer so call sites can write
    ``tracer = set_tracer(Tracer())``.
    """
    global _active
    _active = NULL_TRACER if tracer is None else tracer
    return _active


def enabled() -> bool:
    """True when a recording tracer is installed — the hot-path guard."""
    return _active.enabled


def trace(name: str, **attrs: Any):
    """A span on the current tracer (no-op context manager when off)."""
    return _active.span(name, **attrs)


def tally(name: str, seconds: float = 0.0, count: int = 1) -> None:
    """Aggregate a hot-path timing on the current tracer."""
    _active.tally(name, seconds, count)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form: wraps the callable in a span named after it."""

    def decorate(func: Callable) -> Callable:
        span_name = name or func.__qualname__

        def wrapper(*args, **kwargs):
            with _active.span(span_name):
                return func(*args, **kwargs)

        wrapper.__name__ = func.__name__
        wrapper.__qualname__ = func.__qualname__
        wrapper.__doc__ = func.__doc__
        wrapper.__wrapped__ = func
        return wrapper

    return decorate
