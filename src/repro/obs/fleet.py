"""Cross-process observability for the fleet: trace context + federation.

Three pieces, all stdlib-only at import time:

- **Trace context** — a thread-local ``(request_id, parent span)`` pair
  bound on the receiving side of every fleet RPC and stamped by
  :class:`~repro.fleet.protocol.FleetClient` as ``X-Request-Id`` /
  ``X-Trace-Parent`` headers on the sending side, so one scan's RPCs
  share a single root request id across coordinator, workers, cache
  nodes and front end.
- **Trace merging** — workers ship their finished spans back with each
  shard push as :func:`span_document` dumps;
  :func:`merge_chrome_traces` normalizes every process's
  perf-counter-relative timestamps onto one unix timeline and renders a
  single Chrome trace with one process row per fleet node, all stamped
  with the shared root request id.
- **Metrics federation** — :class:`MetricsAggregator` scrapes each
  member's ``GET /metrics/state`` (the lossless JSON form of its
  :class:`~repro.serve.metrics.MetricsRegistry`) and merges them
  bucket-wise and label-preserving via
  :func:`~repro.serve.metrics.merge_metrics_states` into the fleet-wide
  view the coordinator serves on ``GET /fleet/v1/metrics``.

The trace-context fast path matters: with tracing off and no context
bound, :func:`trace_headers` is a two-attribute check returning a shared
empty dict — the ≤5 % traced-run overhead bar holds because the untraced
wire path allocates nothing.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Optional, Union

from repro.obs.trace import Tracer, get_tracer

#: Wire headers carrying the trace context on every fleet RPC.
REQUEST_ID_HEADER = "X-Request-Id"
TRACE_PARENT_HEADER = "X-Trace-Parent"

_EMPTY_HEADERS: dict = {}

_context = threading.local()


# ----------------------------------------------------------------------
# trace context (thread-local, bound per RPC on the server side)
# ----------------------------------------------------------------------
class _TraceContextBinding:
    """Context manager restoring the previous trace context on exit."""

    __slots__ = ("_previous",)

    def __init__(self, previous: Optional[tuple]) -> None:
        self._previous = previous

    def __enter__(self) -> "_TraceContextBinding":
        return self

    def __exit__(self, *exc) -> bool:
        _context.value = self._previous
        return False


def bind_trace_context(
    request_id: str, parent: Optional[str] = None
) -> _TraceContextBinding:
    """Bind ``(request_id, parent)`` onto this thread until exit.

    Outbound :func:`trace_headers` built on this thread stamp the bound
    id, so the context propagates through any RPC the handler makes in
    turn (worker -> cache, frontend -> replica).  Nests and restores.
    """
    previous = getattr(_context, "value", None)
    _context.value = (str(request_id), str(parent) if parent else None)
    return _TraceContextBinding(previous)


def current_request_id() -> Optional[str]:
    """The request id bound on this thread, or ``None``."""
    value = getattr(_context, "value", None)
    return value[0] if value else None


def current_trace_parent() -> Optional[str]:
    """The trace parent bound on this thread, or ``None``."""
    value = getattr(_context, "value", None)
    return value[1] if value else None


def trace_headers() -> dict:
    """Outbound trace-context headers for one fleet RPC.

    Returns a shared empty dict when no context is bound and tracing is
    off — the hot no-op path.  With a recording tracer installed, the
    current span's id rides along as ``X-Trace-Parent`` so the receiving
    process can link its RPC span back to the caller's.
    """
    value = getattr(_context, "value", None)
    tracer = get_tracer()
    if value is None and not tracer.enabled:
        return _EMPTY_HEADERS
    headers: dict = {}
    if value is not None:
        headers[REQUEST_ID_HEADER] = value[0]
    if tracer.enabled:
        span = tracer.current_span()
        if span is not None:
            headers[TRACE_PARENT_HEADER] = f"{span.name}:{span.span_id}"
        elif value is not None and value[1]:
            headers[TRACE_PARENT_HEADER] = value[1]
    elif value is not None and value[1]:
        headers[TRACE_PARENT_HEADER] = value[1]
    return headers


# ----------------------------------------------------------------------
# span shipping + multi-process trace merging
# ----------------------------------------------------------------------
def span_document(
    tracer: Tracer,
    role: str,
    request_id: Optional[str] = None,
    since: int = 0,
) -> dict:
    """One process's shippable span dump for :func:`merge_chrome_traces`.

    ``since`` skips spans already shipped (workers post incrementally
    after every shard push); ``epoch_unix`` anchors the process's
    perf-counter-relative offsets on the shared unix timeline.
    """
    import os

    spans = tracer.finished()[since:]
    return {
        "role": role,
        "pid": os.getpid(),
        "request_id": request_id,
        "epoch_unix": tracer.epoch_unix,
        "spans": [
            {
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "thread": s.thread_id,
                "start_s": round(s.start_offset_s, 6),
                "wall_s": round(s.wall_s, 6),
                "cpu_s": round(s.cpu_s, 6),
                "status": s.status,
                "error": s.error,
                "attrs": s.attrs,
            }
            for s in spans
        ],
    }


def merge_chrome_traces(documents: Iterable[dict]) -> dict:
    """Merge per-process :func:`span_document` dumps into one Chrome trace.

    One process row (``pid``) per distinct *role* — a respawned worker
    reuses its predecessor's row, so a traced kill drill still renders
    one row per node.  Every document's span offsets are rebased from
    its own ``epoch_unix`` onto the earliest epoch across the fleet, so
    rows line up on one wall-clock timeline rooted at the coordinator.
    Process metadata rows carry the shared root request id.
    """
    documents = [doc for doc in documents if doc and doc.get("spans") is not None]
    if not documents:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    root_epoch = min(float(doc.get("epoch_unix", 0.0)) for doc in documents)
    request_ids = [str(doc["request_id"]) for doc in documents if doc.get("request_id")]
    root_request = request_ids[0] if request_ids else None

    # Stable row order: coordinator first, then the standby (the
    # failover pair reads top-down), then roles alphabetically.
    roles: list[str] = []
    for doc in documents:
        role = str(doc.get("role", "?"))
        if role not in roles:
            roles.append(role)
    roles.sort(key=lambda r: (r != "coordinator", r != "standby", r))
    row_of = {role: index + 1 for index, role in enumerate(roles)}

    events: list[dict] = []
    for role in roles:
        args: dict = {"name": role}
        if root_request:
            args["request_id"] = root_request
        events.append(
            {"name": "process_name", "ph": "M", "pid": row_of[role], "tid": 0,
             "args": dict(args)}
        )
        events.append(
            {"name": "process_sort_index", "ph": "M", "pid": row_of[role],
             "tid": 0, "args": {"sort_index": row_of[role]}}
        )

    # Threads collide across processes sharing a role row (a respawned
    # worker has fresh thread ids anyway); map each (source pid, thread)
    # to a small per-role tid so rows stay compact and deterministic.
    tids: dict[tuple, int] = {}
    for doc in documents:
        role = str(doc.get("role", "?"))
        pid = row_of[role]
        shift_us = (float(doc.get("epoch_unix", root_epoch)) - root_epoch) * 1e6
        source_pid = doc.get("pid", 0)
        for span in doc.get("spans", ()):
            thread_key = (role, source_pid, span.get("thread", 0))
            tid = tids.setdefault(thread_key, len(tids) + 1)
            args = dict(span.get("attrs") or {})
            args["cpu_s"] = span.get("cpu_s", 0.0)
            if span.get("status", "ok") != "ok":
                args["status"] = span["status"]
                args["error"] = span.get("error")
            if root_request:
                args["request_id"] = root_request
            name = str(span.get("name", "?"))
            events.append(
                {
                    "name": name,
                    "cat": name.split(".", 1)[0],
                    "ph": "X",
                    "ts": round(
                        shift_us + float(span.get("start_s", 0.0)) * 1e6, 3
                    ),
                    "dur": round(float(span.get("wall_s", 0.0)) * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    merged: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if root_request:
        merged["metadata"] = {"request_id": root_request, "processes": roles}
    return merged


# ----------------------------------------------------------------------
# metrics federation
# ----------------------------------------------------------------------
class MetricsAggregator:
    """Scrape registered members' metrics states and merge them.

    Members are either a URL (scraped over HTTP via ``GET
    /metrics/state``) or a zero-argument callable returning a state dict
    (the in-process role, e.g. the coordinator's own registry).  The
    merged view keeps every family's labels and adds one
    ``fleet_member_up{member=...}`` gauge per member so a dashboard sees
    scrape failures instead of silently shrinking totals.
    """

    def __init__(self, timeout_s: float = 3.0) -> None:
        self.timeout_s = timeout_s
        self._members: dict[str, Union[str, Callable[[], dict]]] = {}
        self._lock = threading.Lock()

    def register(self, name: str, source: Union[str, Callable[[], dict]]) -> None:
        with self._lock:
            self._members[name] = source

    def unregister(self, name: str) -> None:
        with self._lock:
            self._members.pop(name, None)

    def members(self) -> list[str]:
        with self._lock:
            return sorted(self._members)

    # ------------------------------------------------------------------
    def scrape(self) -> dict[str, Optional[dict]]:
        """Every member's state (``None`` for an unreachable member)."""
        with self._lock:
            members = dict(self._members)
        out: dict[str, Optional[dict]] = {}
        for name, source in sorted(members.items()):
            out[name] = self._scrape_one(source)
        return out

    def _scrape_one(self, source: Union[str, Callable[[], dict]]) -> Optional[dict]:
        if callable(source):
            try:
                state = source()
            except Exception:
                return None
            return state if isinstance(state, dict) else None
        from repro.fleet.protocol import FleetClient

        try:
            status, document = FleetClient(
                str(source), timeout=self.timeout_s
            ).get_json("/metrics/state")
        except Exception:
            return None
        return document if status == 200 else None

    def merged(self) -> "Any":
        """One merged :class:`~repro.serve.metrics.MetricsRegistry`.

        Counters/histograms merge bucket-wise and label-preserving; a
        member whose state fails to scrape or to merge is reported down
        via ``fleet_member_up`` and excluded from the totals.
        """
        from repro.serve.metrics import MetricsRegistry

        merged = MetricsRegistry(namespace="")
        up = merged.gauge(
            "fleet_member_up",
            "1 when the member's last metrics scrape merged cleanly.",
            labels=("member",),
        )
        for name, state in self.scrape().items():
            ok = False
            if state is not None:
                try:
                    merged.absorb_state(state)
                    ok = True
                except ValueError:
                    ok = False
            up.labels(name).set(1.0 if ok else 0.0)
        return merged

    def render(self) -> str:
        """The merged fleet view in Prometheus text exposition format."""
        return self.merged().render()
