"""repro.obs — tracing, structured logging, and run manifests.

Zero-dependency (stdlib only) observability for the hotspot pipeline:

- :func:`trace` / :class:`Tracer` — hierarchical spans with wall + CPU
  time, JSON and Chrome ``chrome://tracing`` export, and an optional
  bridge into a metrics registry (pipeline-stage histograms).
- :func:`get_logger` / :func:`configure_logging` — JSON-lines logs with
  run-scoped bound context; off by default.
- :class:`RunManifest` — the per-run artifact (config, dataset
  fingerprint, stage timings, headline metrics) rendered and compared
  by ``repro report``.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from .logs import (
    StructuredLogger,
    configure as configure_logging,
    get_logger,
    log_context,
)
from .manifest import (
    RunManifest,
    config_summary,
    environment_summary,
    fingerprint_clipset,
    fingerprint_layout,
    fingerprint_rects,
    new_request_id,
    new_run_id,
)
from .report import compare_manifests, render_manifest
from .trace import (
    NULL_TRACER,
    STAGE_BUCKETS,
    STAGE_METRIC,
    NullTracer,
    Span,
    Tracer,
    enabled,
    get_tracer,
    set_tracer,
    tally,
    trace,
    traced,
)
from .fleet import (
    REQUEST_ID_HEADER,
    TRACE_PARENT_HEADER,
    MetricsAggregator,
    bind_trace_context,
    current_request_id,
    current_trace_parent,
    merge_chrome_traces,
    span_document,
    trace_headers,
)

__all__ = [
    "NULL_TRACER",
    "REQUEST_ID_HEADER",
    "STAGE_BUCKETS",
    "STAGE_METRIC",
    "TRACE_PARENT_HEADER",
    "MetricsAggregator",
    "NullTracer",
    "RunManifest",
    "Span",
    "StructuredLogger",
    "Tracer",
    "bind_trace_context",
    "compare_manifests",
    "config_summary",
    "configure_logging",
    "current_request_id",
    "current_trace_parent",
    "enabled",
    "environment_summary",
    "fingerprint_clipset",
    "fingerprint_layout",
    "fingerprint_rects",
    "get_logger",
    "get_tracer",
    "log_context",
    "merge_chrome_traces",
    "new_request_id",
    "new_run_id",
    "render_manifest",
    "set_tracer",
    "span_document",
    "tally",
    "trace",
    "traced",
]
