"""repro.obs — tracing, structured logging, and run manifests.

Zero-dependency (stdlib only) observability for the hotspot pipeline:

- :func:`trace` / :class:`Tracer` — hierarchical spans with wall + CPU
  time, JSON and Chrome ``chrome://tracing`` export, and an optional
  bridge into a metrics registry (pipeline-stage histograms).
- :func:`get_logger` / :func:`configure_logging` — JSON-lines logs with
  run-scoped bound context; off by default.
- :class:`RunManifest` — the per-run artifact (config, dataset
  fingerprint, stage timings, headline metrics) rendered and compared
  by ``repro report``.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from .logs import StructuredLogger, configure as configure_logging, get_logger
from .manifest import (
    RunManifest,
    config_summary,
    environment_summary,
    fingerprint_clipset,
    fingerprint_layout,
    fingerprint_rects,
    new_request_id,
    new_run_id,
)
from .report import compare_manifests, render_manifest
from .trace import (
    NULL_TRACER,
    STAGE_BUCKETS,
    STAGE_METRIC,
    NullTracer,
    Span,
    Tracer,
    enabled,
    get_tracer,
    set_tracer,
    tally,
    trace,
    traced,
)

__all__ = [
    "NULL_TRACER",
    "STAGE_BUCKETS",
    "STAGE_METRIC",
    "NullTracer",
    "RunManifest",
    "Span",
    "StructuredLogger",
    "Tracer",
    "compare_manifests",
    "config_summary",
    "configure_logging",
    "enabled",
    "environment_summary",
    "fingerprint_clipset",
    "fingerprint_layout",
    "fingerprint_rects",
    "get_logger",
    "get_tracer",
    "new_request_id",
    "new_run_id",
    "render_manifest",
    "set_tracer",
    "tally",
    "trace",
    "traced",
]
