"""Structured JSON-lines logging with bound, run-scoped context.

The CLI and the serving layer emit one JSON object per line to a stream
(stderr by default) when structured logging is switched on::

    from repro.obs import get_logger

    log = get_logger("serve").bind(run_id=run_id, model="benchmark1")
    log.info("request", endpoint="/v1/predict", status=200, seconds=0.012)

Logging is **disabled by default** — `.info()` on an unconfigured
logger is a cheap early return, so library code can log unconditionally
without polluting stdout (several CLI tests parse stdout as JSON).
:func:`configure` flips the switch (the ``--json-logs`` CLI flag); the
global configuration carries a base context (run id, command) merged
under each logger's bound context.

The line schema is flat and stable::

    {"ts": <unix seconds>, "level": "info", "logger": "serve",
     "event": "request", ...bound context..., ...event fields...}
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Optional, TextIO

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _Config:
    __slots__ = ("enabled", "stream", "level", "context")

    def __init__(self) -> None:
        self.enabled = False
        self.stream: Optional[TextIO] = None
        self.level = _LEVELS["info"]
        self.context: dict = {}


_config = _Config()
_write_lock = threading.Lock()
_thread_context = threading.local()


class _BoundContext:
    """Context manager restoring the thread-local log context on exit."""

    __slots__ = ("_previous",)

    def __init__(self, previous: dict) -> None:
        self._previous = previous

    def __enter__(self) -> "_BoundContext":
        return self

    def __exit__(self, *exc) -> bool:
        _thread_context.fields = self._previous
        return False


def log_context(**fields: Any) -> _BoundContext:
    """Bind fields onto every log line emitted by *this thread*.

    Used by the fleet HTTP servers to stamp the caller's request id onto
    whatever the handler logs, without threading a logger through every
    call::

        with log_context(request_id=rid):
            ...  # any get_logger(...) line in here carries request_id

    Nests: inner bindings shadow outer ones and are restored on exit.
    """
    previous = getattr(_thread_context, "fields", None) or {}
    merged = dict(previous)
    merged.update(fields)
    _thread_context.fields = merged
    return _BoundContext(previous)


def configure(
    enabled: bool = True,
    stream: Optional[TextIO] = None,
    level: str = "info",
    **context: Any,
) -> None:
    """Switch structured logging on (or off) process-wide.

    ``context`` keys (run_id, command, ...) are stamped on every line.
    """
    _config.enabled = enabled
    _config.stream = stream
    _config.level = _LEVELS.get(level, _LEVELS["info"])
    _config.context = dict(context)


def is_configured() -> bool:
    return _config.enabled


class StructuredLogger:
    """A named logger with an immutable bound context."""

    __slots__ = ("name", "_context")

    def __init__(self, name: str, context: Optional[dict] = None) -> None:
        self.name = name
        self._context = dict(context or {})

    def bind(self, **context: Any) -> "StructuredLogger":
        """A child logger whose lines carry the merged context."""
        merged = dict(self._context)
        merged.update(context)
        return StructuredLogger(self.name, merged)

    # ------------------------------------------------------------------
    def debug(self, event: str, **fields: Any) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if not _config.enabled or _LEVELS[level] < _config.level:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(_config.context)
        thread_fields = getattr(_thread_context, "fields", None)
        if thread_fields:
            record.update(thread_fields)
        record.update(self._context)
        record.update(fields)
        line = json.dumps(record, default=str)
        stream = _config.stream or sys.stderr
        with _write_lock:
            stream.write(line + "\n")
            stream.flush()


def get_logger(name: str) -> StructuredLogger:
    """A logger for one subsystem (``"cli"``, ``"serve"``, ...)."""
    return StructuredLogger(name)
