"""Human-readable rendering and comparison of run manifests.

Backs the ``repro report`` subcommand: render one manifest as an
aligned text summary, or diff two (stage timings side by side, metric
deltas, config/dataset drift).
"""

from __future__ import annotations

import time
from typing import Optional

from .manifest import RunManifest


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def render_manifest(manifest: RunManifest) -> str:
    """One manifest as an aligned, sectioned text block."""
    lines = [
        f"run      {manifest.run_id}",
        f"command  {manifest.command}"
        + (f" ({' '.join(manifest.argv)})" if manifest.argv else ""),
        f"created  {time.strftime('%Y-%m-%d %H:%M:%S UTC', time.gmtime(manifest.created_unix))}",
        f"wall     {_fmt_seconds(manifest.wall_s)}",
    ]
    if manifest.environment:
        env = manifest.environment
        lines.append(
            f"env      python {env.get('python', '?')} on "
            f"{env.get('platform', env.get('machine', '?'))}"
        )
    if manifest.dataset:
        lines.append("dataset")
        for name, value in sorted(manifest.dataset.items()):
            if isinstance(value, dict):
                detail = ", ".join(f"{k}={_fmt_value(v)}" for k, v in sorted(value.items()))
                lines.append(f"  {name:<18} {detail}")
            else:
                lines.append(f"  {name:<18} {_fmt_value(value)}")
    if manifest.stages:
        lines.append("stages (wall / cpu / calls)")
        width = max(len(name) for name in manifest.stages)
        for name, entry in manifest.stages.items():
            lines.append(
                f"  {name:<{width}}  {_fmt_seconds(entry['wall_s']):>9}"
                f"  {_fmt_seconds(entry.get('cpu_s', 0.0)):>9}"
                f"  x{entry['count']}"
            )
    if manifest.metrics:
        lines.append("metrics")
        width = max(len(name) for name in manifest.metrics)
        for name, value in sorted(manifest.metrics.items()):
            lines.append(f"  {name:<{width}}  {_fmt_value(value)}")
    if manifest.artifacts:
        lines.append("artifacts")
        for kind, path in sorted(manifest.artifacts.items()):
            lines.append(f"  {kind:<10} {path}")
    return "\n".join(lines)


def compare_manifests(base: RunManifest, other: RunManifest) -> str:
    """Two manifests side by side: stage timings, metric deltas, drift."""
    lines = [
        f"base   {base.run_id}  ({base.command}, {_fmt_seconds(base.wall_s)})",
        f"other  {other.run_id}  ({other.command}, {_fmt_seconds(other.wall_s)})",
    ]
    if base.dataset != other.dataset:
        lines.append("dataset DIFFERS — timing/metric deltas are not like-for-like")
    if base.config != other.config:
        drift = _config_drift(base.config, other.config)
        lines.append(f"config  differs in {len(drift)} key(s): {', '.join(drift[:8])}")

    stage_names = sorted(set(base.stages) | set(other.stages))
    if stage_names:
        width = max(len(name) for name in stage_names)
        lines.append(f"  {'stage':<{width}}  {'base':>9}  {'other':>9}  {'delta':>8}")
        for name in stage_names:
            b = base.stages.get(name, {}).get("wall_s")
            o = other.stages.get(name, {}).get("wall_s")
            lines.append(
                f"  {name:<{width}}"
                f"  {_fmt_seconds(b) if b is not None else '-':>9}"
                f"  {_fmt_seconds(o) if o is not None else '-':>9}"
                f"  {_fmt_delta(b, o):>8}"
            )

    metric_names = sorted(set(base.metrics) | set(other.metrics))
    if metric_names:
        width = max(len(name) for name in metric_names)
        lines.append(f"  {'metric':<{width}}  {'base':>10}  {'other':>10}")
        for name in metric_names:
            b = base.metrics.get(name)
            o = other.metrics.get(name)
            lines.append(
                f"  {name:<{width}}"
                f"  {_fmt_value(b) if b is not None else '-':>10}"
                f"  {_fmt_value(o) if o is not None else '-':>10}"
            )
    return "\n".join(lines)


def _fmt_delta(base: Optional[float], other: Optional[float]) -> str:
    if base is None or other is None or base == 0:
        return "-"
    change = (other - base) / base * 100.0
    return f"{change:+.0f}%"


def _config_drift(base: dict, other: dict, prefix: str = "") -> list:
    keys = sorted(set(base) | set(other))
    drift = []
    for key in keys:
        b, o = base.get(key), other.get(key)
        path = f"{prefix}{key}"
        if isinstance(b, dict) and isinstance(o, dict):
            drift.extend(_config_drift(b, o, prefix=f"{path}."))
        elif b != o:
            drift.append(path)
    return drift
