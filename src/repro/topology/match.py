"""Theorem-1 composite-string topology matching (Section III-B1).

Two core patterns have the same topology under one of the eight
orientations iff any concatenation of two *adjacent* side strings of one
pattern occurs inside the counter-clockwise or clockwise composite string
of the other.  The CCW composite is the circular sequence
``bottom+right+top+left`` re-opened with the beginning side appended (we
double the circular sequence, a superset of the paper's "add the beginning
side at the end" that is safe for arbitrary probe lengths); the CW
composite is the reversal of that circle, which is what mirroring does to
the side strings.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.rect import Rect
from repro.topology.strings import DirectionalStrings, directional_strings


def composite_ccw(strings: DirectionalStrings) -> tuple[int, ...]:
    """Counter-clockwise composite: the doubled circular side sequence."""
    circle = strings.circular()
    return circle + circle


def composite_cw(strings: DirectionalStrings) -> tuple[int, ...]:
    """Clockwise composite: the doubled reversed circular side sequence."""
    circle = tuple(reversed(strings.circular()))
    return circle + circle


def contains_subsequence(haystack: Sequence[int], needle: Sequence[int]) -> bool:
    """Contiguous-subsequence search (naive; probes are short)."""
    n, m = len(haystack), len(needle)
    if m == 0:
        return True
    for start in range(n - m + 1):
        if tuple(haystack[start : start + m]) == tuple(needle):
            return True
    return False


def strings_match(first: DirectionalStrings, second: DirectionalStrings) -> bool:
    """Theorem-1 test on two precomputed directional-string sets."""
    # A necessary condition that rejects most non-matches instantly: the
    # circular sequences must have equal length and multiset.
    circle_a, circle_b = first.circular(), second.circular()
    if len(circle_a) != len(circle_b) or sorted(circle_a) != sorted(circle_b):
        return False
    ccw = composite_ccw(second)
    cw = composite_cw(second)
    for probe in first.adjacent_pairs():
        if contains_subsequence(ccw, probe) or contains_subsequence(cw, probe):
            return True
    return False


def same_topology(
    rects_a: Sequence[Rect],
    window_a: Rect,
    rects_b: Sequence[Rect],
    window_b: Rect,
) -> bool:
    """Whether two core patterns have the same topology (Theorem 1).

    Patterns are given as dissected rectangle sets within their windows;
    only topology is compared, so the windows may sit at different layout
    locations (they must have equal side lengths).
    """
    if window_a.width != window_b.width or window_a.height != window_b.height:
        return False
    return strings_match(
        directional_strings(rects_a, window_a),
        directional_strings(rects_b, window_b),
    )
