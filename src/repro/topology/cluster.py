"""Two-level topological classification (Section III-B).

Level 1 — *string-based*: patterns are grouped by the D8-canonical
directional-string key, so every member of a group has the same core
topology under some orientation (Theorem 1 guarantees uniqueness).

Level 2 — *density-based*: within each string group, patterns are
clustered by the Eq. 1 density distance using the incremental
centroid-cover scheme of Section III-B2: a pattern joins the first cluster
whose centroid is within the Eq. 2 radius, else it founds a new cluster;
optionally the centroid is re-estimated as the running mean of aligned
member grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.layout.clip import Clip
from repro.obs import trace
from repro.topology.density import (
    best_alignment,
    cluster_radius,
    density_distance,
)
from repro.topology.strings import canonical_string_key


@dataclass
class Cluster:
    """One topological cluster of clips.

    ``members`` are indices into the clip list passed to
    :meth:`TopologicalClassifier.classify`; ``centroid_grid`` is the running
    mean of orientation-aligned member density grids.
    """

    string_key: tuple
    members: list[int] = field(default_factory=list)
    grids: list[np.ndarray] = field(default_factory=list)
    centroid_grid: Optional[np.ndarray] = None
    radius: float = 0.0

    def __len__(self) -> int:
        return len(self.members)

    def add(self, index: int, grid: np.ndarray, *, recompute_centroid: bool) -> None:
        if self.centroid_grid is None:
            self.centroid_grid = grid.copy()
        elif recompute_centroid:
            _, aligned = best_alignment(self.centroid_grid, grid)
            count = len(self.members)
            self.centroid_grid = (self.centroid_grid * count + aligned) / (count + 1)
        self.members.append(index)
        self.grids.append(grid)

    def centroid_member(self) -> int:
        """Index (into the classified clip list) of the most central member.

        The representative used for nonhotspot downsampling: the member
        whose grid is closest to the centroid grid.
        """
        if self.centroid_grid is None or not self.members:
            raise TopologyError("cluster is empty")
        best_index = self.members[0]
        best_distance = float("inf")
        for member, grid in zip(self.members, self.grids):
            distance = density_distance(self.centroid_grid, grid)
            if distance < best_distance:
                best_index, best_distance = member, distance
        return best_index

    def distance_to(self, grid: np.ndarray) -> float:
        if self.centroid_grid is None:
            raise TopologyError("cluster has no centroid yet")
        return density_distance(self.centroid_grid, grid)


@dataclass(frozen=True)
class ClassifierConfig:
    """Knobs of the two-level classifier.

    Defaults follow Section V: expected cluster count K = 10.  The radius
    threshold ``R0`` is in summed-density units over the
    ``grid_resolution`` x ``grid_resolution`` grid; the default of 6.0 is
    calibrated so same-motif-family patterns (pairwise distance 1-7 on the
    synthetic benchmarks) cluster together while distinct families
    (distance > 10) stay apart.  ``grid_resolution`` is the pixelation of
    Eq. 1.
    """

    grid_resolution: int = 12
    radius_threshold: float = 6.0
    expected_cluster_count: int = 10
    recompute_centroids: bool = True
    use_ambit: bool = False
    pairwise_sample_limit: int = 256

    def __post_init__(self) -> None:
        if self.grid_resolution <= 0:
            raise TopologyError("grid_resolution must be positive")
        if self.expected_cluster_count <= 0:
            raise TopologyError("expected_cluster_count must be positive")
        if self.radius_threshold < 0:
            raise TopologyError("radius_threshold must be non-negative")


class TopologicalClassifier:
    """Two-level (string, then density) clip classifier."""

    def __init__(self, config: ClassifierConfig = ClassifierConfig()):
        self.config = config

    # ------------------------------------------------------------------
    def _grid(self, clip: Clip) -> np.ndarray:
        if self.config.use_ambit:
            return clip.clip_density_grid(self.config.grid_resolution)
        return clip.core_density_grid(self.config.grid_resolution)

    def _string_key(self, clip: Clip) -> tuple:
        if self.config.use_ambit:
            return canonical_string_key(list(clip.rects), clip.window)
        return canonical_string_key(clip.core_rects(), clip.core)

    # ------------------------------------------------------------------
    def classify(self, clips: Sequence[Clip]) -> list[Cluster]:
        """Cluster clips; returns clusters ordered by first-member index."""
        with trace("topology.classify", clips=len(clips)) as span:
            string_groups: dict[tuple, list[int]] = {}
            grids: list[np.ndarray] = []
            for index, clip in enumerate(clips):
                string_groups.setdefault(self._string_key(clip), []).append(index)
                grids.append(self._grid(clip))

            clusters: list[Cluster] = []
            for key in sorted(string_groups, key=lambda k: string_groups[k][0]):
                members = string_groups[key]
                clusters.extend(self._density_split(key, members, grids))
            span.set(string_groups=len(string_groups), clusters=len(clusters))
            return clusters

    def _density_split(
        self, key: tuple, members: list[int], grids: list[np.ndarray]
    ) -> list[Cluster]:
        """Level-2 density clustering within one string group."""
        member_grids = [grids[i] for i in members]
        radius = cluster_radius(
            member_grids,
            self.config.radius_threshold,
            self.config.expected_cluster_count,
            self.config.pairwise_sample_limit,
        )
        out: list[Cluster] = []
        for index, grid in zip(members, member_grids):
            home = next(
                (c for c in out if c.distance_to(grid) <= radius), None
            )
            if home is None:
                home = Cluster(string_key=key, radius=radius)
                out.append(home)
            home.add(index, grid, recompute_centroid=self.config.recompute_centroids)
        return out

    # ------------------------------------------------------------------
    def assign(self, clip: Clip, clusters: list[Cluster]) -> Optional[int]:
        """Index of the cluster covering ``clip``, or ``None``.

        Used at evaluation time to route a candidate clip to the SVM kernel
        of its nearest compatible cluster.  String keys must match exactly;
        among clusters with a matching key the nearest centroid within its
        radius wins; with no radius hit the nearest matching-key centroid is
        returned (the kernel still has the best chance of understanding the
        pattern).
        """
        key = self._string_key(clip)
        grid = self._grid(clip)
        best: Optional[int] = None
        best_distance = float("inf")
        for index, cluster in enumerate(clusters):
            if cluster.string_key != key:
                continue
            distance = cluster.distance_to(grid)
            if distance < best_distance:
                best, best_distance = index, distance
        return best
