"""Density distance between pixelated core patterns (Eq. 1).

The distance between two patterns is the minimum over the eight window
orientations of the summed per-pixel density difference::

    rho(p_i, p_j) = min_{tau in D8}  sum_k | d_k(p_i) - d_k(tau(p_j)) |

Patterns enter as square numpy density grids produced by
:func:`repro.geometry.grid.density_grid`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.geometry.grid import all_orientation_grids


def density_distance(grid_a: np.ndarray, grid_b: np.ndarray) -> float:
    """Eq. 1: orientation-minimised L1 distance between density grids."""
    if grid_a.shape != grid_b.shape:
        raise TopologyError(
            f"density grids differ in shape: {grid_a.shape} vs {grid_b.shape}"
        )
    if grid_a.shape[0] != grid_a.shape[1]:
        raise TopologyError(f"density grids must be square, got {grid_a.shape}")
    return min(
        float(np.abs(grid_a - oriented).sum())
        for oriented in all_orientation_grids(grid_b).values()
    )


def density_distance_fixed(grid_a: np.ndarray, grid_b: np.ndarray) -> float:
    """L1 distance without orientation search (used inside aligned clusters)."""
    if grid_a.shape != grid_b.shape:
        raise TopologyError(
            f"density grids differ in shape: {grid_a.shape} vs {grid_b.shape}"
        )
    return float(np.abs(grid_a - grid_b).sum())


def best_alignment(grid_a: np.ndarray, grid_b: np.ndarray) -> tuple[str, np.ndarray]:
    """The orientation of ``grid_b`` closest to ``grid_a`` and that grid.

    Used when folding a new pattern into a cluster centroid: the pattern is
    first aligned to the centroid so the running mean stays sharp instead
    of averaging over symmetry copies.
    """
    if grid_a.shape != grid_b.shape:
        raise TopologyError(
            f"density grids differ in shape: {grid_a.shape} vs {grid_b.shape}"
        )
    best_name = "R0"
    best_grid = grid_b
    best_distance = float("inf")
    for name, oriented in all_orientation_grids(grid_b).items():
        distance = float(np.abs(grid_a - oriented).sum())
        if distance < best_distance:
            best_name, best_grid, best_distance = name, oriented, distance
    return best_name, best_grid


def pairwise_max_distance(grids: list[np.ndarray], sample_limit: int = 256) -> float:
    """Maximum pairwise density distance, used by the Eq. 2 radius.

    The all-pairs computation is quadratic; beyond ``sample_limit``
    patterns a deterministic stride subsample is used (the maximum over a
    spread subsample tracks the true maximum closely for the unimodal
    pattern populations clusters hold, and Eq. 2 only needs the scale).
    """
    if len(grids) < 2:
        return 0.0
    if len(grids) > sample_limit:
        stride = len(grids) // sample_limit + 1
        grids = grids[::stride]
    worst = 0.0
    for i, first in enumerate(grids):
        for second in grids[i + 1 :]:
            distance = density_distance(first, second)
            if distance > worst:
                worst = distance
    return worst


def cluster_radius(
    grids: list[np.ndarray],
    radius_threshold: float,
    expected_cluster_count: int,
    sample_limit: int = 256,
) -> float:
    """Eq. 2: ``R = max(R0, max_{i,j} rho(p_i, p_j) / K)``."""
    if expected_cluster_count <= 0:
        raise TopologyError(
            f"expected cluster count must be positive, got {expected_cluster_count}"
        )
    spread = pairwise_max_distance(grids, sample_limit)
    return max(radius_threshold, spread / expected_cluster_count)
