"""Two-level topological classification (strings + density, Section III-B)."""

from repro.topology.strings import (
    SIDES,
    DirectionalStrings,
    canonical_string_key,
    directional_strings,
    downward_string,
)
from repro.topology.match import (
    composite_ccw,
    composite_cw,
    contains_subsequence,
    same_topology,
    strings_match,
)
from repro.topology.density import (
    best_alignment,
    cluster_radius,
    density_distance,
    density_distance_fixed,
    pairwise_max_distance,
)
from repro.topology.cluster import (
    ClassifierConfig,
    Cluster,
    TopologicalClassifier,
)

__all__ = [
    "SIDES",
    "DirectionalStrings",
    "downward_string",
    "directional_strings",
    "canonical_string_key",
    "composite_ccw",
    "composite_cw",
    "contains_subsequence",
    "strings_match",
    "same_topology",
    "density_distance",
    "density_distance_fixed",
    "best_alignment",
    "pairwise_max_distance",
    "cluster_radius",
    "ClassifierConfig",
    "Cluster",
    "TopologicalClassifier",
]
