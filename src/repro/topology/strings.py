"""Directional-string topology encoding (Section III-B1).

A core pattern is *vertically sliced along polygon edges*; each slice gets a
binary code — a leading ``1`` for the window boundary, then one bit per
block/space segment read away from that boundary (block = 1, space = 0) —
which is then read as an integer.  The sequence of slice codes for the
downward direction is the *downward string*; the other three directional
strings are the downward strings of the pattern rotated so that the right,
top and left sides face downward.

The four strings are generated in a rotation-covariant way: slices are
ordered along the counter-clockwise boundary traversal of the window, so a
90-degree pattern rotation cyclically permutes ``(bottom, right, top,
left)``.  That covariance is what makes Theorem 1's composite-string
matching work (see :mod:`repro.topology.match`).

The paper's Fig. 5(a) example — an "L" made of a full-height bar plus a
floating arm slice — encodes as ``<3, 10>`` = ``<11b, 1010b>``; the tests
reproduce that exact value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import TopologyError
from repro.geometry.rect import Rect
from repro.geometry.transform import Orientation, transform_rects_in_window

#: The rotation that brings each window side to face downward.
_SIDE_ROTATION = {
    "bottom": Orientation.R0,
    "right": Orientation.R270,
    "top": Orientation.R180,
    "left": Orientation.R90,
}

SIDES = ("bottom", "right", "top", "left")


@dataclass(frozen=True)
class DirectionalStrings:
    """The four directional strings of one core pattern."""

    bottom: tuple[int, ...]
    right: tuple[int, ...]
    top: tuple[int, ...]
    left: tuple[int, ...]

    def side(self, name: str) -> tuple[int, ...]:
        try:
            return getattr(self, name)
        except AttributeError:
            raise TopologyError(f"unknown side {name!r}") from None

    def circular(self) -> tuple[int, ...]:
        """The full CCW circular sequence bottom+right+top+left."""
        return self.bottom + self.right + self.top + self.left

    def adjacent_pairs(self) -> list[tuple[int, ...]]:
        """The four concatenations of adjacent sides, CCW order.

        These are the probes Theorem 1 searches for in the other pattern's
        composite strings.
        """
        sequence = [self.bottom, self.right, self.top, self.left]
        return [
            sequence[i] + sequence[(i + 1) % 4] for i in range(4)
        ]


def _merged_y_intervals(rects: Sequence[Rect], x0: int, x1: int, window: Rect) -> tuple:
    """Merged block y-intervals over the slab ``[x0, x1]``, clipped to window."""
    spans = sorted(
        (max(r.y0, window.y0), min(r.y1, window.y1))
        for r in rects
        if r.x0 < x1 and x0 < r.x1 and r.y0 < window.y1 and window.y0 < r.y1
    )
    merged: list[list[int]] = []
    for lo, hi in spans:
        if merged and lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return tuple((lo, hi) for lo, hi in merged)


def _slice_code(intervals: tuple, window: Rect) -> int:
    """Binary slice code: boundary bit then segment bits bottom-to-top."""
    bits = ["1"]  # window boundary marker
    cursor = window.y0
    for lo, hi in intervals:
        if lo > cursor:
            bits.append("0")  # space below this block
        bits.append("1")  # the block itself
        cursor = hi
    if cursor < window.y1:
        bits.append("0")  # trailing space up to the top boundary
    if not intervals:
        bits = ["1", "0"]  # an entirely empty slab
    return int("".join(bits), 2)


def downward_string(rects: Sequence[Rect], window: Rect) -> tuple[int, ...]:
    """The downward directional string of a pattern.

    Slices are cut at every polygon edge x-coordinate; adjacent slabs whose
    merged block intervals are geometrically identical are re-merged so the
    slice count reflects topology changes only.
    """
    cuts = {window.x0, window.x1}
    for rect in rects:
        if rect.x1 > window.x0 and rect.x0 < window.x1:
            cuts.add(max(rect.x0, window.x0))
            cuts.add(min(rect.x1, window.x1))
    xs = sorted(cuts)
    slabs: list[tuple] = []
    for x0, x1 in zip(xs, xs[1:]):
        intervals = _merged_y_intervals(rects, x0, x1, window)
        if slabs and slabs[-1] == intervals:
            continue  # edge did not change the coverage topology
        slabs.append(intervals)
    return tuple(_slice_code(intervals, window) for intervals in slabs)


def directional_strings(rects: Sequence[Rect], window: Rect) -> DirectionalStrings:
    """All four directional strings of a pattern.

    Each side string is the downward string of the pattern rotated so that
    side faces downward, which orders slices along the CCW window boundary.
    Requires a square window (the D8 group acts on squares).
    """
    if window.width != window.height:
        raise TopologyError(
            f"directional strings need a square window, got {window.width}x{window.height}"
        )
    rect_list = list(rects)
    values = {}
    for side in SIDES:
        rotated = transform_rects_in_window(rect_list, window, _SIDE_ROTATION[side])
        values[side] = downward_string(rotated, window)
    return DirectionalStrings(**values)


def key_orbit(strings: DirectionalStrings) -> list[tuple[tuple[int, ...], ...]]:
    """All eight D8 images of a directional-string 4-tuple.

    The geometric D8 action translates to a combinatorial action on side
    strings: a 90-degree CCW rotation cyclically shifts
    ``(bottom, right, top, left) -> (left, bottom, right, top)``, and the
    vertical-axis mirror swaps left/right and reverses every side's slice
    order.  Computing the orbit this way costs one slicing pass instead of
    eight.
    """
    sides = (strings.bottom, strings.right, strings.top, strings.left)
    mirrored = tuple(
        tuple(reversed(s))
        for s in (sides[0], sides[3], sides[2], sides[1])
    )
    orbit = []
    for base in (sides, mirrored):
        for shift in range(4):
            orbit.append(base[shift:] + base[:shift])
    return orbit


def canonical_string_key(rects: Sequence[Rect], window: Rect) -> tuple[tuple[int, ...], ...]:
    """A D8-invariant canonical key built from directional strings.

    The key is the lexicographically smallest side-string 4-tuple over the
    pattern's D8 orbit.  Two patterns share a key iff they have the same
    topology under some orientation — the exact congruence string-based
    classification needs, with none of the substring-matching edge cases
    of the composite search.
    """
    strings = directional_strings(rects, window)
    return min(key_orbit(strings))
