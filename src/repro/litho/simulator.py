"""The lithography-simulation hotspot oracle and detector.

Section I of the paper places full lithography simulation at one extreme
of the detection spectrum: "the most accurate detection result [...] but
suffers from an extremely high computational complexity and long
runtime".  :class:`LithoSimDetector` realises that extreme on this
substrate — it runs the aerial/resist pipeline on *every* candidate clip
instead of learning anything — and anchors the intro's category
comparison bench.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import ExtractionConfig
from repro.core.extraction import extract_candidate_clips
from repro.core.metrics import DetectionScore, score_reports
from repro.data.synth import TestingLayout
from repro.layout.clip import Clip, ClipLabel, ClipSpec
from repro.layout.layout import Layout
from repro.litho.aerial import OpticsConfig, aerial_image
from repro.litho.resist import DefectReport, ResistConfig, analyze_defects


@dataclass(frozen=True)
class LithoSimConfig:
    """Bundled optics + resist + extraction parameters.

    Defaults are calibrated against the benchmark process assumptions:
    the dead zone between the hotspot and safe gap regimes (76-84 nm)
    straddles the simulated bridge threshold, and sub-55 nm necks fail
    the pinch check.
    """

    optics: OpticsConfig = field(default_factory=OpticsConfig)
    resist: ResistConfig = field(default_factory=ResistConfig)
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    #: Margin (nm) of ambit simulated around the analysed core so FFT
    #: wrap-around and optical proximity context stay realistic.
    context_margin_nm: int = 600


def simulate_clip(clip: Clip, config: LithoSimConfig = LithoSimConfig()) -> DefectReport:
    """Run the aerial/resist pipeline on one clip's core.

    The simulation window is the core plus a context margin; defects are
    counted inside the core only.
    """
    margin = min(config.context_margin_nm, clip.spec.ambit_margin)
    window = clip.core.expanded(margin)
    rects = [r for r in (rect.intersection(window) for rect in clip.rects) if r]
    intensity = aerial_image(rects, window, config.optics)
    from repro.litho.aerial import OpticsConfig as _OC

    unbiased = aerial_image(
        rects,
        window,
        _OC(
            pixel_nm=config.optics.pixel_nm,
            sigma_nm=config.optics.sigma_nm,
            mask_bias_nm=0,
        ),
    )
    return analyze_defects(
        intensity,
        rects,
        window,
        clip.core,
        config.optics,
        config.resist,
        unbiased_intensity=unbiased,
    )


@dataclass
class LithoSimReport:
    """Full-layout simulation outcome."""

    reports: list[Clip]
    candidate_count: int
    eval_seconds: float
    score: Optional[DetectionScore] = None


class LithoSimDetector:
    """Brute-force simulation of every candidate clip (no learning)."""

    def __init__(self, spec: ClipSpec, config: LithoSimConfig = LithoSimConfig()):
        self.spec = spec
        self.config = config

    def detect(self, layout: Layout, layer: int = 1) -> LithoSimReport:
        started = time.perf_counter()
        extraction = extract_candidate_clips(
            layout, self.spec, self.config.extraction, layer
        )
        reports = []
        for clip in extraction.clips:
            defects = simulate_clip(clip, self.config)
            if defects.is_hotspot:
                reports.append(clip.with_label(ClipLabel.HOTSPOT))
        return LithoSimReport(
            reports=reports,
            candidate_count=len(extraction.clips),
            eval_seconds=time.perf_counter() - started,
        )

    def score(self, testing: TestingLayout, layer: int = 1) -> LithoSimReport:
        report = self.detect(testing.layout, layer)
        report.score = score_reports(
            report.reports, testing.hotspot_cores(), testing.area_um2
        )
        return report


def label_clip_by_simulation(
    clip: Clip, config: LithoSimConfig = LithoSimConfig()
) -> ClipLabel:
    """Use the simulator as a labelling oracle (training-set generation).

    This is the role lithography simulation plays for real foundry
    training sets — the generator's planted labels substitute for it in
    the benchmarks, and this function closes the loop for user-supplied
    geometry.
    """
    defects = simulate_clip(clip, config)
    return ClipLabel.HOTSPOT if defects.is_hotspot else ClipLabel.NON_HOTSPOT
