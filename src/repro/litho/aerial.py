"""Aerial-image simulation (incoherent Gaussian optics approximation).

The paper cites full lithography simulation as the most accurate — and by
far the slowest — hotspot oracle (its reference [2]).  This module
implements the standard lightweight approximation used in hotspot
research when a real simulator is unavailable: the mask transmission is
rasterised, biased (a stand-in for OPC), and convolved with a Gaussian
point-spread function; a constant-threshold resist model then decides
what prints.

The optical kernel width relates to the process: for a 193 nm immersion
scanner, lambda/NA ~ 143 nm, and the Gaussian sigma that matches printed
behaviour is a few tens of nanometres.  Defaults are calibrated against
the motif zoo's failure thresholds (see ``LithoSimConfig``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class OpticsConfig:
    """Raster and optics parameters.

    ``pixel_nm`` is the raster pitch; ``sigma_nm`` the Gaussian PSF width;
    ``mask_bias_nm`` a uniform per-side feature bias standing in for OPC
    (real flows print biased masks, which is why drawn 60 nm lines print
    while 60 nm gaps bridge).
    """

    pixel_nm: int = 10
    sigma_nm: float = 30.0
    mask_bias_nm: int = 20

    def __post_init__(self) -> None:
        if self.pixel_nm <= 0:
            raise GeometryError("pixel_nm must be positive")
        if self.sigma_nm <= 0:
            raise GeometryError("sigma_nm must be positive")


def rasterize(
    rects: Sequence[Rect], window: Rect, config: OpticsConfig
) -> np.ndarray:
    """Binary mask raster of (biased) rectangles over ``window``.

    Pixel [row, col] covers the square at
    ``(window.x0 + col*p, window.y0 + row*p)``; a pixel is lit when its
    centre falls inside a biased rectangle.
    """
    p = config.pixel_nm
    cols = max(1, window.width // p)
    rows = max(1, window.height // p)
    mask = np.zeros((rows, cols), dtype=np.float64)
    bias = config.mask_bias_nm
    for rect in rects:
        biased = rect.expanded(bias)
        clipped = biased.intersection(window)
        if clipped is None:
            continue
        # Pixel (row, col) is lit when its centre lies inside the rect:
        # centre_x = window.x0 + col*p + p/2.
        col0 = max(0, (clipped.x0 - window.x0 + p // 2) // p)
        col1 = min(cols, (clipped.x1 - window.x0 - p // 2 - 1) // p + 1)
        row0 = max(0, (clipped.y0 - window.y0 + p // 2) // p)
        row1 = min(rows, (clipped.y1 - window.y0 - p // 2 - 1) // p + 1)
        if col0 < col1 and row0 < row1:
            mask[row0:row1, col0:col1] = 1.0
    return mask


def gaussian_psf_fft(shape: tuple[int, int], sigma_pixels: float) -> np.ndarray:
    """Frequency-domain Gaussian PSF for an FFT convolution of ``shape``."""
    rows, cols = shape
    fy = np.fft.fftfreq(rows)
    fx = np.fft.fftfreq(cols)
    # Fourier transform of a unit-integral Gaussian with std sigma (pixels).
    gy = np.exp(-2.0 * (np.pi * sigma_pixels * fy) ** 2)
    gx = np.exp(-2.0 * (np.pi * sigma_pixels * fx) ** 2)
    return np.outer(gy, gx)


def aerial_image(
    rects: Sequence[Rect], window: Rect, config: OpticsConfig = OpticsConfig()
) -> np.ndarray:
    """Simulated aerial intensity over ``window`` (values in [0, 1]).

    Incoherent imaging approximation: intensity is the mask transmission
    convolved with the Gaussian PSF.  FFT convolution wraps at the window
    edge; callers pass a window with margin (the clip's ambit) so wrap
    artefacts stay away from the core being judged.
    """
    mask = rasterize(rects, window, config)
    sigma_pixels = config.sigma_nm / config.pixel_nm
    spectrum = np.fft.fft2(mask) * gaussian_psf_fft(mask.shape, sigma_pixels)
    intensity = np.real(np.fft.ifft2(spectrum))
    return np.clip(intensity, 0.0, 1.0)
