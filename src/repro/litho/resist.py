"""Constant-threshold resist model and printability defect analysis.

The printed pattern is where the aerial intensity clears the resist
threshold.  Two defect classes are extracted by comparing the printed
raster against the drawn geometry:

- **bridge**: a printed connected component spanning two (or more)
  distinct drawn features, or printed material extending further from any
  drawn edge than corner rounding explains (the self-bridging of a tight
  notch);
- **pinch**: a drawn feature with a narrow passage — splitting into
  pieces under sub-CD erosion — whose resist image necks or breaks.

Connectivity (rather than fixed margins) is what makes the bridge check
track the physics: whether two features join depends on the printed
contour actually connecting them.  All checks are restricted to features
touching the analysis window (the clip core) so the ambit provides
optical context without being judged itself.

Known limitation (documented in EXPERIMENTS.md): purely corner-to-corner
interactions print weaker than edge interactions under the Gaussian
threshold model, so diagonal-only hotspots are under-detected — one of
the reasons the paper's dedicated detectors beat threshold-model
simulation screens in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import ndimage

from repro.geometry.rect import Rect
from repro.litho.aerial import OpticsConfig, aerial_image, rasterize


@dataclass(frozen=True)
class ResistConfig:
    """Resist thresholds.

    ``threshold`` is the print threshold on the biased aerial image
    (bridging check).  ``pinch_threshold`` is the minimum peak unbiased
    exposure a drawn feature needs to print reliably; with the default
    optics (sigma 30 nm) the failing line width works out to ~75 nm,
    matching the benchmark process's dead zone.
    """

    threshold: float = 0.5
    #: Erosion radius (nm) for the necking check: a feature that splits
    #: under this erosion has a sub-2x-radius passage.
    pinch_erosion_nm: int = 30
    #: A split only counts as necking when it separates *wide* bodies —
    #: pieces whose interior half-width reaches this value.  Uniformly
    #: thin structures (minimum-width routing) are printable by design;
    #: necking is a wide-narrow-wide profile.
    pinch_body_halfwidth_nm: int = 75
    #: Printed material farther than this from any drawn edge is excess
    #: (beyond mask bias + edge rounding): self-bridging.
    excess_tolerance_nm: int = 35
    #: Concave-corner allowance: excess within this reach of two
    #: *perpendicular* drawn surfaces is inner-corner rounding, which
    #: prints outward by design and is not a defect.
    corner_reach_nm: int = 60


@dataclass(frozen=True)
class DefectReport:
    """Defects found inside the analysis window."""

    bridge_count: int
    pinch_count: int

    @property
    def is_hotspot(self) -> bool:
        return self.bridge_count > 0 or self.pinch_count > 0

    @property
    def kind(self) -> str:
        if self.bridge_count and self.pinch_count:
            return "bridge+pinch"
        if self.bridge_count:
            return "bridge"
        if self.pinch_count:
            return "pinch"
        return "clean"


def _zone_mask(shape: tuple[int, int], window: Rect, analysis: Rect, pixel: int) -> np.ndarray:
    rows, cols = shape
    zone = np.zeros(shape, dtype=bool)
    row0 = max(0, (analysis.y0 - window.y0) // pixel)
    row1 = min(rows, (analysis.y1 - window.y0) // pixel)
    col0 = max(0, (analysis.x0 - window.x0) // pixel)
    col1 = min(cols, (analysis.x1 - window.x0) // pixel)
    zone[row0:row1, col0:col1] = True
    return zone


def analyze_defects(
    intensity: np.ndarray,
    drawn_rects: Sequence[Rect],
    window: Rect,
    analysis: Rect,
    optics: OpticsConfig = OpticsConfig(),
    resist: ResistConfig = ResistConfig(),
    unbiased_intensity: np.ndarray | None = None,
) -> DefectReport:
    """Find bridges and pinches inside ``analysis``.

    ``intensity`` is the biased aerial image over ``window``;
    ``unbiased_intensity`` (computed on demand when omitted) drives the
    pinch/underexposure check.
    """
    unbiased_optics = OpticsConfig(
        pixel_nm=optics.pixel_nm, sigma_nm=optics.sigma_nm, mask_bias_nm=0
    )
    drawn = rasterize(drawn_rects, window, unbiased_optics).astype(bool)
    zone = _zone_mask(drawn.shape, window, analysis, optics.pixel_nm)

    drawn_labels, drawn_count = ndimage.label(drawn)
    if drawn_count == 0:
        return DefectReport(0, 0)
    # Features participating in the judgement: those touching the zone.
    in_zone = set(np.unique(drawn_labels[zone])) - {0}

    pixel = optics.pixel_nm

    # --- bridge 1: printed component spanning >= 2 drawn features ------
    printed = intensity >= resist.threshold
    printed_labels, printed_count = ndimage.label(printed)
    bridge_count = 0
    for component in range(1, printed_count + 1):
        member = printed_labels == component
        touched = set(np.unique(drawn_labels[member])) - {0}
        if len(touched) >= 2 and touched & in_zone and member[zone].any():
            bridge_count += 1

    # --- bridge 2: excess printing beyond bias + edge rounding ---------
    # (self-bridging: a tight notch of one feature filling with resist)
    tolerance_px = max(1, resist.excess_tolerance_nm // pixel)
    allowed = ndimage.binary_dilation(drawn, iterations=tolerance_px)
    excess = printed & ~allowed & zone
    if excess.any():
        # Concave-corner allowance: pixels reached by drawn material from
        # a horizontal AND a vertical direction within corner_reach are
        # inner-corner rounding.
        reach_px = max(1, resist.corner_reach_nm // pixel)
        horizontal = np.zeros_like(drawn)
        vertical = np.zeros_like(drawn)
        rolled_pos_x = rolled_neg_x = rolled_pos_y = rolled_neg_y = drawn
        for _ in range(reach_px):
            rolled_pos_x = np.roll(rolled_pos_x, 1, axis=1)
            rolled_neg_x = np.roll(rolled_neg_x, -1, axis=1)
            rolled_pos_y = np.roll(rolled_pos_y, 1, axis=0)
            rolled_neg_y = np.roll(rolled_neg_y, -1, axis=0)
            horizontal |= rolled_pos_x | rolled_neg_x
            vertical |= rolled_pos_y | rolled_neg_y
        corner_zone = horizontal & vertical
        excess &= ~corner_zone
        if excess.any():
            bridge_count += int(ndimage.label(excess)[1])

    # --- pinch: a narrow passage between wide bodies --------------------
    erosion_px = max(1, resist.pinch_erosion_nm // pixel)
    body_halfwidth_px = resist.pinch_body_halfwidth_nm / pixel
    pinch_count = 0
    for label in in_zone:
        member = drawn_labels == label
        if not member[zone].any():
            continue
        eroded = ndimage.binary_erosion(member, iterations=erosion_px)
        piece_labels, piece_count = ndimage.label(eroded)
        if piece_count < 2:
            continue
        # Interior half-width of the original feature at each piece.
        distance = ndimage.distance_transform_cdt(member, metric="taxicab")
        wide_pieces = sum(
            1
            for piece in range(1, piece_count + 1)
            if float(distance[piece_labels == piece].max()) >= body_halfwidth_px / 2
        )
        if wide_pieces >= 2:
            pinch_count += 1
    return DefectReport(bridge_count, pinch_count)
