"""Lightweight lithography simulation: aerial imaging, resist, defects.

The paper's category-1 comparator ("most accurate, slowest") and the
labelling oracle role foundry simulation plays for training data.
"""

from repro.litho.aerial import OpticsConfig, aerial_image, gaussian_psf_fft, rasterize
from repro.litho.resist import DefectReport, ResistConfig, analyze_defects
from repro.litho.simulator import (
    LithoSimConfig,
    LithoSimDetector,
    LithoSimReport,
    label_clip_by_simulation,
    simulate_clip,
)

__all__ = [
    "OpticsConfig",
    "rasterize",
    "gaussian_psf_fft",
    "aerial_image",
    "ResistConfig",
    "DefectReport",
    "analyze_defects",
    "LithoSimConfig",
    "simulate_clip",
    "label_clip_by_simulation",
    "LithoSimDetector",
    "LithoSimReport",
]
