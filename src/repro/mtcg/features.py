"""Topological critical-feature extraction from MTCGs (Section III-C).

All critical features of a core pattern are extracted from the
*horizontally tiled horizontal* constraint graph and the *vertically tiled
vertical* constraint graph; the other two graphs serve only for boundary
checks (the paper's wording).  Four feature types are produced:

- **internal** — width/height of a block tile with at most one edge on the
  window boundary whose graph neighbours are all space tiles;
- **external** — the space tile lying between exactly two block tiles with
  at most one boundary edge (the blocks' facing distance);
- **diagonal** — the corner-to-corner relation carried by a diagonal edge;
- **segment** — a space tile with two or three boundary edges (a boundary
  strip).

Each feature is recorded as a :class:`repro.features.rules.RuleRect`
relative to the window's bottom-left reference point.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro import obs
from repro.mtcg.rules import FeatureType, RuleRect
from repro.geometry.rect import Rect
from repro.mtcg.graph import Mtcg, build_mtcg
from repro.mtcg.tiles import Tiling, horizontal_tiling, vertical_tiling


def internal_features(graph: Mtcg, window: Rect) -> list[RuleRect]:
    """Block tiles isolated by space on the graph axis (Fig. 7(a))."""
    out = []
    for tile in graph.tiling.tiles:
        if not tile.is_block:
            continue
        if tile.boundary_edge_count(window) > 1:
            continue
        neighbor_tiles = [graph.tile(i) for i in graph.neighbors(tile.index)]
        if neighbor_tiles and all(t.is_space for t in neighbor_tiles):
            out.append(
                RuleRect.from_rect(
                    FeatureType.INTERNAL,
                    tile.rect,
                    window,
                    boundary_mark=tile.boundary_edge_count(window) > 0,
                )
            )
    return out


def external_features(graph: Mtcg, window: Rect) -> list[RuleRect]:
    """Space tiles lying between exactly two block tiles (Fig. 7(b))."""
    out = []
    for tile in graph.tiling.tiles:
        if not tile.is_space:
            continue
        if tile.boundary_edge_count(window) > 1:
            continue
        predecessors = [graph.tile(i) for i in graph.predecessors(tile.index)]
        successors = [graph.tile(i) for i in graph.successors(tile.index)]
        block_before = [t for t in predecessors if t.is_block]
        block_after = [t for t in successors if t.is_block]
        if len(block_before) == 1 and len(block_after) == 1:
            out.append(
                RuleRect.from_rect(
                    FeatureType.EXTERNAL,
                    tile.rect,
                    window,
                    boundary_mark=tile.boundary_edge_count(window) > 0,
                )
            )
    return out


def diagonal_features(graph: Mtcg, window: Rect) -> list[RuleRect]:
    """Corner relations carried by diagonal edges (Fig. 7(c)).

    The rule rectangle spans the corner gap between the two tiles; exact
    corner touches yield zero width/height.
    """
    out = []
    for edge in graph.diagonal_edges():
        a = graph.tile(edge.source).rect
        b = graph.tile(edge.target).rect
        gap_x0, gap_x1 = min(a.x1, b.x1), max(a.x0, b.x0)
        gap_y0, gap_y1 = min(a.y1, b.y1), max(a.y0, b.y0)
        touches = (
            gap_x0 == window.x0
            or gap_x1 == window.x1
            or gap_y0 == window.y0
            or gap_y1 == window.y1
        )
        out.append(
            RuleRect(
                feature_type=FeatureType.DIAGONAL,
                dx=gap_x0 - window.x0,
                dy=gap_y0 - window.y0,
                width=gap_x1 - gap_x0,
                height=gap_y1 - gap_y0,
                boundary_mark=touches,
            )
        )
    return out


def segment_features(tiling: Tiling, window: Rect) -> list[RuleRect]:
    """Boundary space strips: 2-3 edges on the window boundary (Fig. 7(d))."""
    out = []
    for tile in tiling.tiles:
        if not tile.is_space:
            continue
        if tile.boundary_edge_count(window) in (2, 3):
            out.append(
                RuleRect.from_rect(
                    FeatureType.SEGMENT, tile.rect, window, boundary_mark=True
                )
            )
    return out


def extract_topological_features(
    rects: Sequence[Rect],
    window: Rect,
    *,
    diagonal_max_gap: Optional[int] = None,
    compute: str = "exact",
) -> list[RuleRect]:
    """Full Section III-C extraction over one pattern window.

    Builds the horizontally tiled ``Ch`` (with diagonal edges) and the
    vertically tiled ``Cv``, extracts all four feature types from them, and
    returns the deduplicated, canonically sorted rule-rectangle list.
    ``compute="fast"`` routes the tiling sweeps and graph builds through
    :mod:`repro.mtcg.fastscan`; the output is bit-identical.
    """
    # This is the hottest path in the pipeline (once per clip per schema
    # build); a full span per call would dominate the trace, so timings
    # aggregate into one tally — and only when tracing is on.  The tally
    # *count* is a contract: the cache regression tests assert exactly one
    # sweep per unique clip per scan through it, so it must stay on the
    # uncached path and fire once per extraction — in both compute modes.
    fast = compute == "fast"
    if obs.enabled():
        started = time.perf_counter()
        result = _extract_topological_features(rects, window, diagonal_max_gap, fast)
        obs.tally("mtcg.features", time.perf_counter() - started)
        return result
    return _extract_topological_features(rects, window, diagonal_max_gap, fast)


def _extract_topological_features(
    rects: Sequence[Rect],
    window: Rect,
    diagonal_max_gap: Optional[int],
    fast: bool = False,
) -> list[RuleRect]:
    h_tiling = horizontal_tiling(rects, window, fast=fast)
    v_tiling = vertical_tiling(rects, window, fast=fast)
    ch = build_mtcg(
        h_tiling,
        "h",
        with_diagonals=True,
        diagonal_max_gap=diagonal_max_gap,
        fast=fast,
    )
    cv = build_mtcg(v_tiling, "v", fast=fast)

    features: set[RuleRect] = set()
    features.update(internal_features(ch, window))
    features.update(internal_features(cv, window))
    features.update(external_features(ch, window))
    features.update(external_features(cv, window))
    features.update(diagonal_features(ch, window))
    features.update(segment_features(h_tiling, window))
    return sorted(features)
