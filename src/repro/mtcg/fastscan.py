"""Numpy-vectorized MTCG sweeps: the ``compute="fast"`` extraction path.

Feature extraction is pure integer geometry, so unlike the SVM fast
path (:mod:`repro.svm.fastpath`, ulp-bounded) the vectorized sweeps
here are **bit-identical** to the scalar ones — integer comparisons and
integer sums have no rounding, and every function below reproduces its
scalar counterpart's output exactly (property-tested against random
rectangle soups in ``tests/test_fast_compute.py``).  That exactness is
what lets the *feature* cache be shared between compute modes while the
*margin* cache splits (see :mod:`repro.cache.keys`).

The scalar hot spots being replaced (profiled on the seed benchmarks):

- the per-slab cursor sweep in :func:`~repro.mtcg.tiles.
  horizontal_tiling` → :func:`space_strips` builds a slab x column
  occupancy lattice with one boolean matmul and reads space strips off
  maximal free runs;
- the O(n²) pairwise loop in ``Tiling.covers_window`` →
  :func:`tiling_covers_window` broadcasts the containment/overlap/area
  checks;
- the O(n²) adjacency and O(n³) diagonal-blocking loops in
  :mod:`repro.mtcg.graph` → :func:`adjacent_pairs` /
  :func:`diagonal_pairs`;
- the vertex-times-rectangle quadrant probes in
  :mod:`repro.features.nontopo` → :func:`corner_and_touch_counts`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry.rect import Rect


def _rect_array(rects: Sequence[Rect]) -> np.ndarray:
    """(n, 4) int64 array of (x0, y0, x1, y1) rows."""
    if not rects:
        return np.zeros((0, 4), dtype=np.int64)
    return np.array(
        [(r.x0, r.y0, r.x1, r.y1) for r in rects], dtype=np.int64
    )


# ----------------------------------------------------------------------
# tiling
# ----------------------------------------------------------------------
def space_strips(blocks: Sequence[Rect], window: Rect) -> list[Rect]:
    """Raw horizontal space strips of a merged block set, vectorized.

    Equivalent to the scalar cursor sweep in ``horizontal_tiling``: the
    window is cut into slabs at every block top/bottom edge and into
    columns at every block left/right edge; a block spans whole lattice
    cells by construction, so the maximal free-column runs of each slab
    are exactly the scalar sweep's gap strips.  Returns the same strip
    *set* (order differs; the caller's ``merge_vertical`` sorts).
    """
    arr = _rect_array(blocks)
    if arr.shape[0] == 0:
        return [Rect(window.x0, window.y0, window.x1, window.y1)]
    xs = np.unique(np.concatenate([[window.x0, window.x1], arr[:, 0], arr[:, 2]]))
    ys = np.unique(np.concatenate([[window.y0, window.y1], arr[:, 1], arr[:, 3]]))
    # span_y[s, k]: block k fully spans slab s (slabs are cut at every
    # block edge, so overlap implies full span).  Likewise for columns.
    span_y = (arr[None, :, 1] <= ys[:-1, None]) & (ys[1:, None] <= arr[None, :, 3])
    span_x = (arr[None, :, 0] <= xs[:-1, None]) & (xs[1:, None] <= arr[None, :, 2])
    occupied = (span_y.astype(np.int64) @ span_x.astype(np.int64).T) > 0
    free = ~occupied  # (slabs, columns)
    padded = np.zeros((free.shape[0], free.shape[1] + 2), dtype=np.int8)
    padded[:, 1:-1] = free
    edges = np.diff(padded, axis=1)
    starts = np.argwhere(edges == 1)  # run starts, row-major
    ends = np.argwhere(edges == -1)  # matching run ends (exclusive)
    return [
        Rect(int(xs[c0]), int(ys[row]), int(xs[c1]), int(ys[row + 1]))
        for (row, c0), (_, c1) in zip(starts, ends)
    ]


def tiling_covers_window(tiles: Sequence[Rect], window: Rect) -> bool:
    """Vectorized ``Tiling.covers_window``: containment, disjointness,
    exact area sum — same verdict as the scalar pairwise loop."""
    arr = _rect_array(tiles)
    if arr.shape[0] == 0:
        return window.area == 0
    inside = (
        (arr[:, 0] >= window.x0)
        & (arr[:, 1] >= window.y0)
        & (arr[:, 2] <= window.x1)
        & (arr[:, 3] <= window.y1)
    )
    if not bool(inside.all()):
        return False
    overlap = (
        (arr[:, None, 0] < arr[None, :, 2])
        & (arr[None, :, 0] < arr[:, None, 2])
        & (arr[:, None, 1] < arr[None, :, 3])
        & (arr[None, :, 1] < arr[:, None, 3])
    )
    np.fill_diagonal(overlap, False)
    if bool(overlap.any()):
        return False
    areas = (arr[:, 2] - arr[:, 0]) * (arr[:, 3] - arr[:, 1])
    return int(areas.sum()) == window.area


# ----------------------------------------------------------------------
# constraint-graph edges
# ----------------------------------------------------------------------
def adjacent_pairs(rects: Sequence[Rect], axis: str) -> list[tuple[int, int]]:
    """Vectorized ``graph._adjacent_pairs``: same pairs, same order.

    ``np.argwhere`` walks the boolean adjacency matrix row-major, which
    is exactly the scalar double loop's (i, j) emission order.
    """
    arr = _rect_array(rects)
    if arr.shape[0] < 2:
        return []
    if axis == "v":
        touching = arr[:, None, 3] == arr[None, :, 1]
        projected = np.minimum(arr[:, None, 2], arr[None, :, 2]) > np.maximum(
            arr[:, None, 0], arr[None, :, 0]
        )
    else:
        touching = arr[:, None, 2] == arr[None, :, 0]
        projected = np.minimum(arr[:, None, 3], arr[None, :, 3]) > np.maximum(
            arr[:, None, 1], arr[None, :, 1]
        )
    adjacency = touching & projected
    np.fill_diagonal(adjacency, False)
    return [(int(i), int(j)) for i, j in np.argwhere(adjacency)]


def diagonal_pairs(
    rects: Sequence[Rect],
    is_block: Sequence[bool],
    max_gap: Optional[int],
) -> list[tuple[int, int]]:
    """Vectorized ``graph._diagonal_pairs``: same pairs, same order.

    Candidate (i < j) same-kind pairs with disjoint projections come off
    an upper-triangular mask in row-major order (the scalar loop order);
    the corner-region gap and blocked checks are broadcast over all
    tiles at once.
    """
    arr = _rect_array(rects)
    count = arr.shape[0]
    if count < 2:
        return []
    kind = np.asarray(list(is_block), dtype=bool)
    same = kind[:, None] == kind[None, :]
    x_disjoint = (arr[:, None, 2] <= arr[None, :, 0]) | (
        arr[None, :, 2] <= arr[:, None, 0]
    )
    y_disjoint = (arr[:, None, 3] <= arr[None, :, 1]) | (
        arr[None, :, 3] <= arr[:, None, 1]
    )
    candidate = np.triu(same & x_disjoint & y_disjoint, k=1)
    pairs = np.argwhere(candidate)
    if pairs.shape[0] == 0:
        return []
    i, j = pairs[:, 0], pairs[:, 1]
    # Corner gap box between each pair (degenerate when corner-touching).
    gx0 = np.minimum(arr[i, 2], arr[j, 2])
    gx1 = np.maximum(arr[i, 0], arr[j, 0])
    gy0 = np.minimum(arr[i, 3], arr[j, 3])
    gy1 = np.maximum(arr[i, 1], arr[j, 1])
    degenerate = (gx0 >= gx1) | (gy0 >= gy1)
    keep = np.ones(pairs.shape[0], dtype=bool)
    if max_gap is not None:
        too_far = np.maximum(gx1 - gx0, gy1 - gy0) > max_gap
        keep &= degenerate | ~too_far
    # Blocked: any same-kind third tile overlapping the corner region.
    overlap = (
        (arr[None, :, 0] < gx1[:, None])
        & (gx0[:, None] < arr[None, :, 2])
        & (arr[None, :, 1] < gy1[:, None])
        & (gy0[:, None] < arr[None, :, 3])
    )  # (pairs, tiles)
    intruder = overlap & (kind[None, :] == kind[i][:, None])
    cols = np.arange(count)
    intruder &= (cols[None, :] != i[:, None]) & (cols[None, :] != j[:, None])
    keep &= degenerate | ~intruder.any(axis=1)
    out: list[tuple[int, int]] = []
    for index in np.flatnonzero(keep):
        a, b = int(i[index]), int(j[index])
        if arr[a, 0] <= arr[b, 0]:
            out.append((a, b))
        else:
            out.append((b, a))
    return out


# ----------------------------------------------------------------------
# nontopological features
# ----------------------------------------------------------------------
def corner_and_touch_counts(
    rects: Sequence[Rect], window: Optional[Rect] = None
) -> tuple[int, int]:
    """Vectorized ``nontopo.corner_and_touch_counts``: identical counts.

    Every rectangle corner is a candidate lattice vertex; the four unit
    probe cells around each vertex are tested for coverage against all
    rectangles at once.  Counts are order-free sums, so the scalar set
    iteration and this version agree exactly.
    """
    arr = _rect_array(rects)
    if arr.shape[0] == 0:
        return 0, 0
    corners = np.concatenate(
        [
            arr[:, [0, 1]],
            arr[:, [2, 1]],
            arr[:, [0, 3]],
            arr[:, [2, 3]],
        ]
    )
    vertices = np.unique(corners, axis=0)
    if window is not None:
        strict = (
            (vertices[:, 0] > window.x0)
            & (vertices[:, 0] < window.x1)
            & (vertices[:, 1] > window.y0)
            & (vertices[:, 1] < window.y1)
        )
        vertices = vertices[strict]
    if vertices.shape[0] == 0:
        return 0, 0
    x, y = vertices[:, 0], vertices[:, 1]

    def covered(cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        # Unit probe cell (cx, cy): covered when inside any rectangle.
        return (
            (arr[None, :, 0] <= cx[:, None])
            & (cx[:, None] < arr[None, :, 2])
            & (arr[None, :, 1] <= cy[:, None])
            & (cy[:, None] < arr[None, :, 3])
        ).any(axis=1)

    sw = covered(x - 1, y - 1)
    se = covered(x, y - 1)
    nw = covered(x - 1, y)
    ne = covered(x, y)
    total = (
        sw.astype(np.int64) + se.astype(np.int64)
        + nw.astype(np.int64) + ne.astype(np.int64)
    )
    corner_count = int(((total == 1) | (total == 3)).sum())
    touch_count = int(
        ((total == 2) & (sw == ne) & (se == nw) & (sw != se)).sum()
    )
    return corner_count, touch_count
