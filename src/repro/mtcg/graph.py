"""Modified transitive closure graphs over tilings (Fig. 6, right).

For a tiling, two constraint graphs are built by sweep-line over tile
edges:

- the **vertical constraint graph** ``Cv`` has a directed edge between any
  two *adjacent* tiles (sharing a horizontal boundary segment) whose
  x-projections overlap, directed upward;
- the **horizontal constraint graph** ``Ch`` has a directed edge between
  any two adjacent tiles (sharing a vertical boundary segment) whose
  y-projections overlap, directed rightward.

Additionally, *only* in the horizontally tiled ``Ch``, a **diagonal** edge
is added between two block tiles (or two space tiles) whose y-projections
do not overlap when no other tile of the same kind intrudes into the
corner region between them (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import TilingError
from repro.geometry.rect import Rect
from repro.mtcg.tiles import Tile, Tiling


@dataclass(frozen=True)
class MtcgEdge:
    """A directed constraint edge between two tiles (by tile index)."""

    source: int
    target: int
    diagonal: bool = False


@dataclass
class Mtcg:
    """A constraint graph over one tiling.

    ``axis`` is ``"h"`` for the horizontal constraint graph (left-to-right
    edges) or ``"v"`` for the vertical constraint graph (bottom-to-top
    edges).
    """

    tiling: Tiling
    axis: str
    edges: list[MtcgEdge] = field(default_factory=list)

    def tile(self, index: int) -> Tile:
        return self.tiling.tiles[index]

    def successors(self, index: int) -> list[int]:
        return [e.target for e in self.edges if e.source == index and not e.diagonal]

    def predecessors(self, index: int) -> list[int]:
        return [e.source for e in self.edges if e.target == index and not e.diagonal]

    def neighbors(self, index: int) -> list[int]:
        """Both predecessors and successors over non-diagonal edges."""
        return self.predecessors(index) + self.successors(index)

    def diagonal_edges(self) -> list[MtcgEdge]:
        return [e for e in self.edges if e.diagonal]

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` for analysis and plotting.

        Vertices carry ``kind`` ("block"/"space") and ``rect`` attributes;
        edges carry ``diagonal``.  Requires networkx (an optional
        convenience — nothing in the pipeline depends on it).
        """
        import networkx as nx

        graph = nx.DiGraph()
        for tile in self.tiling.tiles:
            graph.add_node(tile.index, kind=tile.kind.value, rect=tile.rect)
        for edge in self.edges:
            graph.add_edge(edge.source, edge.target, diagonal=edge.diagonal)
        return graph


def _adjacent_pairs(tiling: Tiling, axis: str) -> Iterator[tuple[int, int]]:
    """Index pairs of tiles sharing a boundary segment along ``axis``."""
    tiles = tiling.tiles
    for i, first in enumerate(tiles):
        for j, second in enumerate(tiles):
            if i == j:
                continue
            a, b = first.rect, second.rect
            if axis == "v":
                # first below second, sharing a horizontal segment.
                if a.y1 == b.y0 and min(a.x1, b.x1) > max(a.x0, b.x0):
                    yield (i, j)
            else:
                # first left of second, sharing a vertical segment.
                if a.x1 == b.x0 and min(a.y1, b.y1) > max(a.y0, b.y0):
                    yield (i, j)


def _corner_region(a: Rect, b: Rect) -> Optional[Rect]:
    """The open corner gap box between two diagonally-placed rectangles.

    ``None`` when the rectangles corner-touch exactly (the gap box is
    degenerate), which still counts as diagonal adjacency.
    """
    x0, x1 = min(a.x1, b.x1), max(a.x0, b.x0)
    y0, y1 = min(a.y1, b.y1), max(a.y0, b.y0)
    return Rect.maybe(x0, y0, x1, y1)


def _diagonally_placed(a: Rect, b: Rect) -> bool:
    """Projections disjoint on both axes (strict corner relation)."""
    x_disjoint = a.x1 <= b.x0 or b.x1 <= a.x0
    y_disjoint = a.y1 <= b.y0 or b.y1 <= a.y0
    return x_disjoint and y_disjoint


def _diagonal_pairs(tiling: Tiling, max_gap: Optional[int]) -> Iterator[tuple[int, int]]:
    """Same-kind tile pairs in diagonal adjacency (corner region empty).

    ``max_gap`` bounds the Chebyshev corner distance: far-apart corners are
    lithographically irrelevant and would bloat the graph quadratically.
    """
    tiles = tiling.tiles
    for i, first in enumerate(tiles):
        for j in range(i + 1, len(tiles)):
            second = tiles[j]
            if first.kind is not second.kind:
                continue
            a, b = first.rect, second.rect
            if not _diagonally_placed(a, b):
                continue
            region = _corner_region(a, b)
            if region is not None:
                if max_gap is not None and max(region.width, region.height) > max_gap:
                    continue
                blocked = any(
                    tiles[k].kind is first.kind and tiles[k].rect.overlaps(region)
                    for k in range(len(tiles))
                    if k not in (i, j)
                )
                if blocked:
                    continue
            lhs, rhs = (i, j) if a.x0 <= b.x0 else (j, i)
            yield (lhs, rhs)


def build_mtcg(
    tiling: Tiling,
    axis: str,
    *,
    with_diagonals: bool = False,
    diagonal_max_gap: Optional[int] = None,
    fast: bool = False,
) -> Mtcg:
    """Build the constraint graph of ``tiling`` along ``axis``.

    Section III-C adds diagonal edges only to the horizontally tiled
    horizontal constraint graph; callers opt in with ``with_diagonals``.
    ``fast`` uses the vectorized pair sweeps in
    :mod:`repro.mtcg.fastscan`; the edge list (content *and* order) is
    identical to the scalar loops — integer geometry has no rounding.
    """
    if axis not in ("h", "v"):
        raise TilingError(f"axis must be 'h' or 'v', got {axis!r}")
    graph = Mtcg(tiling, axis)
    if fast:
        from repro.mtcg import fastscan

        rects = [t.rect for t in tiling.tiles]
        adjacent = fastscan.adjacent_pairs(rects, axis)
        diagonal = (
            fastscan.diagonal_pairs(
                rects, [t.is_block for t in tiling.tiles], diagonal_max_gap
            )
            if with_diagonals
            else []
        )
    else:
        adjacent = _adjacent_pairs(tiling, axis)
        diagonal = (
            _diagonal_pairs(tiling, diagonal_max_gap) if with_diagonals else []
        )
    seen: set[tuple[int, int]] = set()
    for source, target in adjacent:
        if (source, target) not in seen:
            seen.add((source, target))
            graph.edges.append(MtcgEdge(source, target))
    for source, target in diagonal:
        graph.edges.append(MtcgEdge(source, target, diagonal=True))
    return graph
