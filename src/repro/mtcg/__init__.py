"""MTCG tilings, constraint graphs and topological feature extraction."""

from repro.mtcg.tiles import Tile, TileKind, Tiling, horizontal_tiling, vertical_tiling
from repro.mtcg.graph import Mtcg, MtcgEdge, build_mtcg
from repro.mtcg.features import (
    diagonal_features,
    extract_topological_features,
    external_features,
    internal_features,
    segment_features,
)

__all__ = [
    "Tile",
    "TileKind",
    "Tiling",
    "horizontal_tiling",
    "vertical_tiling",
    "Mtcg",
    "MtcgEdge",
    "build_mtcg",
    "internal_features",
    "external_features",
    "diagonal_features",
    "segment_features",
    "extract_topological_features",
]
