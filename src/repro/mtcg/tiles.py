"""Maximal tilings of a core window (Fig. 6, left).

The core region is tiled twice — *horizontally* and *vertically*.  In the
horizontal tiling, block tiles are the (vertically merged) polygon
rectangles and space tiles are maximal horizontal strips of empty window
area; the vertical tiling is the transpose.  These tilings are the vertex
sets of the modified transitive closure graphs (MTCGs) built in
:mod:`repro.mtcg.graph`.

Boundary contact is recorded per tile because the feature definitions of
Section III-C qualify tiles by how many of their edges touch the window
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.errors import TilingError
from repro.geometry.dissect import disjoint_cover, merge_vertical
from repro.geometry.rect import Rect


class TileKind(Enum):
    """Whether a tile is polygon material or empty space."""

    BLOCK = "block"
    SPACE = "space"


@dataclass(frozen=True)
class Tile:
    """One tile of a window tiling."""

    rect: Rect
    kind: TileKind
    index: int

    @property
    def is_block(self) -> bool:
        return self.kind is TileKind.BLOCK

    @property
    def is_space(self) -> bool:
        return self.kind is TileKind.SPACE

    def boundary_edge_count(self, window: Rect) -> int:
        """How many of the tile's four edges lie on the window boundary."""
        count = 0
        if self.rect.x0 == window.x0:
            count += 1
        if self.rect.x1 == window.x1:
            count += 1
        if self.rect.y0 == window.y0:
            count += 1
        if self.rect.y1 == window.y1:
            count += 1
        return count


@dataclass(frozen=True)
class Tiling:
    """A complete tiling of ``window``: blocks plus space cover, no gaps."""

    window: Rect
    tiles: tuple[Tile, ...]
    orientation: str  # "horizontal" or "vertical"

    def blocks(self) -> list[Tile]:
        return [t for t in self.tiles if t.is_block]

    def spaces(self) -> list[Tile]:
        return [t for t in self.tiles if t.is_space]

    def covers_window(self) -> bool:
        """Exactness check: tile areas sum to the window area, no overlap."""
        total = 0
        rects = [t.rect for t in self.tiles]
        for i, rect in enumerate(rects):
            if not self.window.contains_rect(rect):
                return False
            total += rect.area
            for other in rects[i + 1 :]:
                if rect.overlaps(other):
                    return False
        return total == self.window.area


def _clip_blocks(rects: Sequence[Rect], window: Rect) -> list[Rect]:
    """Window-clip the blocks and resolve overlaps to a disjoint cover.

    GDSII layouts legitimately contain overlapping shapes (union
    semantics); the tiling operates on the union's disjoint cover.
    """
    clipped = [r for r in (rect.intersection(window) for rect in rects) if r]
    if any(
        a.overlaps(b)
        for i, a in enumerate(clipped)
        for b in clipped[i + 1 :]
    ):
        clipped = disjoint_cover(clipped)
    return clipped


def _validate(tiling: Tiling, fast: bool) -> None:
    """Raise unless the tiling exactly covers its window.

    Integer geometry makes the fast (vectorized) check's verdict equal
    to the scalar one; only the constant factor differs.
    """
    if fast:
        from repro.mtcg.fastscan import tiling_covers_window

        ok = tiling_covers_window([t.rect for t in tiling.tiles], tiling.window)
    else:
        ok = tiling.covers_window()
    if not ok:
        raise TilingError(
            f"{tiling.orientation} tiling does not exactly cover the window"
        )


def horizontal_tiling(
    rects: Sequence[Rect], window: Rect, *, fast: bool = False
) -> Tiling:
    """Tile ``window`` with blocks and maximal horizontal space strips.

    Space is cut at every block top/bottom edge; within each horizontal
    slab the free x-intervals become space tiles; vertically adjacent space
    tiles with identical x-extent are merged so strips are maximal.
    Blocks are merged vertically first so each block tile is maximal too.

    ``fast`` swaps the per-slab cursor sweep and the O(n²) cover check
    for the vectorized versions in :mod:`repro.mtcg.fastscan`; the
    resulting tiling is bit-identical (pinned by property tests).
    """
    blocks = merge_vertical(_clip_blocks(rects, window))
    if fast:
        from repro.mtcg.fastscan import space_strips

        raw_spaces = space_strips(blocks, window)
    else:
        y_cuts = {window.y0, window.y1}
        for block in blocks:
            y_cuts.add(block.y0)
            y_cuts.add(block.y1)
        ys = sorted(y_cuts)

        # Collect raw space strips per slab.
        raw_spaces = []
        for y0, y1 in zip(ys, ys[1:]):
            occupied = sorted(
                (b.x0, b.x1) for b in blocks if b.y0 < y1 and y0 < b.y1
            )
            cursor = window.x0
            for bx0, bx1 in occupied:
                if bx0 > cursor:
                    raw_spaces.append(Rect(cursor, y0, bx0, y1))
                cursor = max(cursor, bx1)
            if cursor < window.x1:
                raw_spaces.append(Rect(cursor, y0, window.x1, y1))

    spaces = merge_vertical(raw_spaces)
    tiles: list[Tile] = []
    for rect in sorted(blocks):
        tiles.append(Tile(rect, TileKind.BLOCK, len(tiles)))
    for rect in sorted(spaces):
        tiles.append(Tile(rect, TileKind.SPACE, len(tiles)))
    tiling = Tiling(window, tuple(tiles), "horizontal")
    _validate(tiling, fast)
    return tiling


def vertical_tiling(
    rects: Sequence[Rect], window: Rect, *, fast: bool = False
) -> Tiling:
    """Tile ``window`` with blocks and maximal vertical space strips.

    Implemented as the transpose of :func:`horizontal_tiling`: coordinates
    are swapped, the horizontal tiling is computed, and the result is
    swapped back.
    """
    swapped_window = Rect(window.y0, window.x0, window.y1, window.x1)
    swapped_rects = [Rect(r.y0, r.x0, r.y1, r.x1) for r in _clip_blocks(rects, window)]
    transposed = horizontal_tiling(swapped_rects, swapped_window, fast=fast)
    tiles = tuple(
        Tile(Rect(t.rect.y0, t.rect.x0, t.rect.y1, t.rect.x1), t.kind, t.index)
        for t in transposed.tiles
    )
    tiling = Tiling(window, tiles, "vertical")
    _validate(tiling, fast)
    return tiling
