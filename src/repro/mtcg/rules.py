"""Rule rectangles: the record format for extracted topological features.

Section III-C: "Each extracted topological feature is modeled as a rule
rectangle: a rule rectangle is associated with a width, a height, the
relative distance (dx, dy) between the reference point and the bottom-left
corner of this rectangle", where the reference point is the bottom-left
corner of the pattern window.  Features that touch the window boundary
carry a special mark.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.geometry.rect import Rect


class FeatureType(str, Enum):
    """The four topological critical-feature types of Fig. 7(a)-(d).

    The ``str`` mixin makes members orderable, which lets
    :class:`RuleRect` derive a total order for canonical feature sorting.
    """

    INTERNAL = "internal"
    EXTERNAL = "external"
    DIAGONAL = "diagonal"
    SEGMENT = "segment"


@dataclass(frozen=True, order=True)
class RuleRect:
    """One topological feature as a rule rectangle.

    Ordering is total (type, then position, then size) so feature lists
    sort canonically — the vectorizer depends on that determinism.

    ``width``/``height`` may be zero for diagonal features whose corners
    touch exactly.  ``boundary_mark`` is set when the source tile touches
    the window boundary (the "special mark" of Section III-C).
    """

    feature_type: FeatureType
    dx: int
    dy: int
    width: int
    height: int
    boundary_mark: bool = False

    @staticmethod
    def from_rect(
        feature_type: FeatureType,
        rect: Rect,
        window: Rect,
        boundary_mark: bool = False,
    ) -> "RuleRect":
        """Build a rule rectangle from a tile rect, relative to the window."""
        return RuleRect(
            feature_type=feature_type,
            dx=rect.x0 - window.x0,
            dy=rect.y0 - window.y0,
            width=rect.width,
            height=rect.height,
            boundary_mark=boundary_mark,
        )

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        """Numeric encoding used by the feature vectorizer."""
        return (self.dx, self.dy, self.width, self.height, int(self.boundary_mark))


#: Number of numeric slots one rule rectangle occupies in a feature vector.
RULE_RECT_SLOTS = 5
