"""Grid-bucket spatial index for rectangles.

Testing layouts hold hundreds of thousands of dissected rectangles; clip
extraction issues a window query per candidate clip.  A uniform grid of
buckets gives O(window area / bucket area + matches) queries, which is the
right trade-off for layouts whose shapes are uniformly routing-pitch sized.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.errors import LayoutError
from repro.geometry.rect import Rect


class RectIndex:
    """A uniform-grid spatial index over a fixed set of rectangles.

    Parameters
    ----------
    bucket_size:
        Side length of a grid bucket in DBU.  Pick roughly the query-window
        size; the default of 2400 DBU is half the ICCAD-2012 clip side.
    """

    def __init__(self, rects: Iterable[Rect] = (), bucket_size: int = 2400):
        if bucket_size <= 0:
            raise LayoutError(f"bucket_size must be positive, got {bucket_size}")
        self._bucket_size = bucket_size
        self._buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
        self._rects: list[Rect] = []
        for rect in rects:
            self.insert(rect)

    def __len__(self) -> int:
        return len(self._rects)

    @property
    def bucket_size(self) -> int:
        return self._bucket_size

    def insert(self, rect: Rect) -> int:
        """Add a rectangle; returns its stable integer id."""
        rect_id = len(self._rects)
        self._rects.append(rect)
        for key in self._bucket_keys(rect):
            self._buckets[key].append(rect_id)
        return rect_id

    def rect(self, rect_id: int) -> Rect:
        """Look up a rectangle by the id :meth:`insert` returned."""
        return self._rects[rect_id]

    def query(self, window: Rect) -> list[Rect]:
        """All rectangles overlapping ``window`` (positive shared area)."""
        seen: set[int] = set()
        out: list[Rect] = []
        for key in self._bucket_keys(window):
            for rect_id in self._buckets.get(key, ()):
                if rect_id in seen:
                    continue
                seen.add(rect_id)
                rect = self._rects[rect_id]
                if rect.overlaps(window):
                    out.append(rect)
        return out

    def query_touching(self, window: Rect) -> list[Rect]:
        """All rectangles overlapping or abutting ``window``."""
        seen: set[int] = set()
        out: list[Rect] = []
        for key in self._bucket_keys(window.expanded(1)):
            for rect_id in self._buckets.get(key, ()):
                if rect_id in seen:
                    continue
                seen.add(rect_id)
                rect = self._rects[rect_id]
                if rect.touches(window):
                    out.append(rect)
        return out

    def any_overlap(self, window: Rect) -> bool:
        """Fast emptiness test for a window."""
        for key in self._bucket_keys(window):
            for rect_id in self._buckets.get(key, ()):
                if self._rects[rect_id].overlaps(window):
                    return True
        return False

    def all_rects(self) -> list[Rect]:
        """Every indexed rectangle, in insertion order."""
        return list(self._rects)

    def _bucket_keys(self, rect: Rect) -> Iterator[tuple[int, int]]:
        size = self._bucket_size
        # floor division handles negative coordinates correctly in Python.
        bx0, bx1 = rect.x0 // size, (rect.x1 - 1) // size
        by0, by1 = rect.y0 // size, (rect.y1 - 1) // size
        for bx in range(bx0, bx1 + 1):
            for by in range(by0, by1 + 1):
                yield (bx, by)
