"""Serialisation for layouts and clip sets.

Layouts round-trip through real GDSII (the industry interchange format the
paper's toolchain used); clip sets additionally round-trip through a JSON
encoding that carries the labels GDSII has no standard place for.  In the
GDSII encoding of a clip set, each clip becomes one structure and its label
is encoded in the structure name, matching how the ICCAD-2012 training
archives organise clips (one cell per clip).
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Optional, Union

from repro.errors import InputError, LayoutError, ReproError
from repro.gdsii.flatten import flatten_structure
from repro.gdsii.library import GdsBoundary, GdsLibrary, GdsStructure
from repro.gdsii.reader import read_library
from repro.gdsii.writer import write_library_file
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel, ClipSpec, ClipSet
from repro.layout.layout import Layout
from repro.resilience import faults
from repro.resilience.retry import IO_RETRY, call_with_retry

_LABEL_PREFIX = {
    ClipLabel.HOTSPOT: "HS",
    ClipLabel.NON_HOTSPOT: "NHS",
    ClipLabel.UNKNOWN: "UNK",
}
_PREFIX_LABEL = {v: k for k, v in _LABEL_PREFIX.items()}


def _read_bytes(path: Union[str, FsPath]) -> bytes:
    """Read a file with transient-IO retry and the ``io.read`` fault point."""
    faults.inject("io.read", path=str(path))
    return call_with_retry(
        lambda: FsPath(path).read_bytes(), IO_RETRY, label=f"read:{path}"
    )


def _parse_library(data: bytes, path: Union[str, FsPath]) -> GdsLibrary:
    """Parse GDSII bytes, prefixing input errors with the source path."""
    try:
        return read_library(data)
    except InputError as exc:
        raise type(exc)(f"{path}: {exc}") from exc


# ----------------------------------------------------------------------
# layout <-> GDSII
# ----------------------------------------------------------------------


def layout_to_library(layout: Layout, name: str = "LAYOUT", top: str = "TOP") -> GdsLibrary:
    """Convert a layout into a single-top-cell GDSII library."""
    library = GdsLibrary(name=name)
    structure = library.new_structure(top)
    for layer_number in layout.layer_numbers():
        for polygon in layout.layer(layer_number).polygons:
            structure.add(GdsBoundary(layer_number, 0, list(polygon.vertices)))
    return library


def library_to_layout(
    library: GdsLibrary,
    dissect_max_side: Optional[int] = None,
    structure_name: Optional[str] = None,
) -> Layout:
    """Flatten a GDSII library (or one named structure) into a layout."""
    structure = (
        library.get(structure_name) if structure_name else library.single_top()
    )
    layout = Layout(dissect_max_side=dissect_max_side)
    for layer, _datatype, polygon in flatten_structure(library, structure):
        layout.add_polygon(layer, polygon)
    return layout


def save_layout_gds(layout: Layout, path: Union[str, FsPath]) -> None:
    """Write a layout to a GDSII file."""
    write_library_file(layout_to_library(layout), path)


def load_layout_gds(
    path: Union[str, FsPath], dissect_max_side: Optional[int] = None
) -> Layout:
    """Read a layout back from a GDSII file."""
    return library_to_layout(_parse_library(_read_bytes(path), path), dissect_max_side)


def save_layout_auto(layout: Layout, path: Union[str, FsPath]) -> None:
    """Write a layout, picking the format from the file extension.

    ``.oas``/``.oasis`` writes OASIS; anything else writes GDSII.
    """
    suffix = FsPath(path).suffix.lower()
    if suffix in (".oas", ".oasis"):
        from repro.oasis.writer import write_oasis_file

        write_oasis_file(layout, path)
    else:
        save_layout_gds(layout, path)


def load_layout_auto(path: Union[str, FsPath]) -> Layout:
    """Read a layout, sniffing the stream format from the file magic.

    OASIS files start with ``%SEMI-OASIS``; everything else is treated as
    GDSII.
    """
    data = _read_bytes(path)
    if data.startswith(b"%SEMI-OASIS"):
        from repro.oasis.reader import read_oasis

        try:
            return read_oasis(data).layout
        except InputError as exc:
            raise type(exc)(f"{path}: {exc}") from exc
    return library_to_layout(_parse_library(data, path))


# ----------------------------------------------------------------------
# clip set <-> GDSII
# ----------------------------------------------------------------------


def clipset_to_library(clip_set: ClipSet, name: str = "CLIPS") -> GdsLibrary:
    """One structure per clip, label encoded in the structure name."""
    library = GdsLibrary(name=name)
    for index, clip in enumerate(clip_set):
        prefix = _LABEL_PREFIX[clip.label]
        structure = library.new_structure(f"{prefix}_{index:06d}")
        for rect in clip.rects:
            structure.add(GdsBoundary.from_rect(clip.layer, 0, rect))
        # A zero-datatype-255 marker boundary records the window itself so
        # the loader can re-anchor the clip without external metadata.
        structure.add(GdsBoundary(clip.layer, 255, list(clip.window.corners())))
    return library


def library_to_clipset(
    library: GdsLibrary, spec: ClipSpec, quarantine=None
) -> ClipSet:
    """Inverse of :func:`clipset_to_library`.

    With a :class:`~repro.resilience.quarantine.QuarantineReport`, a
    malformed clip structure is recorded there and skipped; without one
    (the default) it raises, preserving strict round-trip semantics.
    """
    clip_set = ClipSet(spec)
    for structure_name in sorted(library.structures):
        structure = library.structures[structure_name]
        try:
            faults.inject("io.clip", structure=structure_name)
            clip_set.add(_structure_to_clip(structure, structure_name, spec))
        except ReproError as exc:
            if quarantine is None:
                raise
            quarantine.add(
                type(exc).__name__,
                str(exc),
                source="io.clip",
                structure=structure_name,
            )
    return clip_set


def _structure_to_clip(
    structure: GdsStructure, structure_name: str, spec: ClipSpec
) -> Clip:
    prefix = structure_name.split("_", 1)[0]
    if prefix not in _PREFIX_LABEL:
        raise LayoutError(f"clip structure {structure_name!r} has no label prefix")
    label = _PREFIX_LABEL[prefix]
    window: Optional[Rect] = None
    rects: list[Rect] = []
    layer = 1
    for boundary in structure.boundaries():
        polygon_box = boundary.to_polygon().bbox()
        if boundary.datatype == 255:
            window = polygon_box
        else:
            rects.append(polygon_box)
            layer = boundary.layer
    if window is None:
        raise LayoutError(f"clip structure {structure_name!r} lacks a window marker")
    return Clip.build(window, spec, rects, label, layer)


def save_clipset_gds(clip_set: ClipSet, path: Union[str, FsPath]) -> None:
    write_library_file(clipset_to_library(clip_set), path)


def load_clipset_gds(
    path: Union[str, FsPath], spec: ClipSpec, quarantine=None
) -> ClipSet:
    return library_to_clipset(_parse_library(_read_bytes(path), path), spec, quarantine)


# ----------------------------------------------------------------------
# clip set <-> JSON
# ----------------------------------------------------------------------


def clipset_to_json(clip_set: ClipSet) -> str:
    """Serialise a clip set (windows, rects, labels) to a JSON string."""
    payload = {
        "spec": {
            "core_side": clip_set.spec.core_side,
            "clip_side": clip_set.spec.clip_side,
        },
        "clips": [
            {
                "window": [clip.window.x0, clip.window.y0, clip.window.x1, clip.window.y1],
                "label": clip.label.value,
                "layer": clip.layer,
                "rects": [[r.x0, r.y0, r.x1, r.y1] for r in clip.rects],
            }
            for clip in clip_set
        ],
    }
    return json.dumps(payload, separators=(",", ":"))


def clipset_from_json(text: str) -> ClipSet:
    """Inverse of :func:`clipset_to_json`."""
    try:
        payload = json.loads(text)
        spec = ClipSpec(**payload["spec"])
        clip_set = ClipSet(spec)
        for entry in payload["clips"]:
            window = Rect(*entry["window"])
            rects = [Rect(*r) for r in entry["rects"]]
            label = ClipLabel(entry["label"])
            clip_set.add(Clip.build(window, spec, rects, label, entry["layer"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise LayoutError(f"malformed clip-set JSON: {exc}") from exc
    return clip_set


def save_clipset_json(clip_set: ClipSet, path: Union[str, FsPath]) -> None:
    with open(path, "w", encoding="ascii") as handle:
        handle.write(clipset_to_json(clip_set))


def load_clipset_json(path: Union[str, FsPath]) -> ClipSet:
    try:
        text = _read_bytes(path).decode("ascii")
    except UnicodeDecodeError as exc:
        raise LayoutError(f"{path}: clip-set JSON is not ASCII: {exc}") from exc
    return clipset_from_json(text)
