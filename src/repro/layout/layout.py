"""The flat layout model used during evaluation.

A :class:`Layout` holds per-layer polygon geometry, its rectangle
dissection, and a spatial index per layer.  It is the object clip
extraction queries and the benchmark generator emits; conversion to and
from GDSII lives in :mod:`repro.layout.io`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import LayoutError
from repro.geometry.dissect import dissect_polygon
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect, bounding_box
from repro.layout.clip import Clip, ClipLabel, ClipSpec
from repro.layout.spatial import RectIndex


@dataclass
class Layer:
    """One layout layer: polygons plus their rectangle dissection."""

    number: int
    polygons: list[Polygon] = field(default_factory=list)
    rects: list[Rect] = field(default_factory=list)

    def add_polygon(self, polygon: Polygon, max_side: Optional[int] = None) -> None:
        self.polygons.append(polygon)
        self.rects.extend(dissect_polygon(polygon, max_side))

    def add_rect(self, rect: Rect) -> None:
        """Add a rectangle directly (it is its own dissection)."""
        self.polygons.append(Polygon.from_rect(rect))
        self.rects.append(rect)


class Layout:
    """A flat multi-layer layout with spatial indexing.

    Parameters
    ----------
    dissect_max_side:
        When set, polygons are dissected with this maximum rectangle side
        (the paper uses the hotspot core side length, Section III-E).
    """

    def __init__(
        self,
        dissect_max_side: Optional[int] = None,
        index_bucket_size: int = 2400,
    ):
        self._layers: dict[int, Layer] = {}
        self._indexes: dict[int, RectIndex] = {}
        self._dissect_max_side = dissect_max_side
        self._index_bucket_size = index_bucket_size

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def layer(self, number: int) -> Layer:
        """Get or create the layer with this number."""
        if number not in self._layers:
            self._layers[number] = Layer(number)
        return self._layers[number]

    def layer_numbers(self) -> list[int]:
        return sorted(self._layers)

    def add_polygon(self, layer: int, polygon: Polygon) -> None:
        self.layer(layer).add_polygon(polygon, self._dissect_max_side)
        self._indexes.pop(layer, None)

    def add_rect(self, layer: int, rect: Rect) -> None:
        self.layer(layer).add_rect(rect)
        self._indexes.pop(layer, None)

    def add_polygons(self, layer: int, polygons: Iterable[Polygon]) -> None:
        for polygon in polygons:
            self.add_polygon(layer, polygon)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def index(self, layer: int) -> RectIndex:
        """The (lazily built) spatial index for a layer."""
        if layer not in self._layers:
            raise LayoutError(f"layout has no layer {layer}")
        if layer not in self._indexes:
            self._indexes[layer] = RectIndex(
                self._layers[layer].rects, self._index_bucket_size
            )
        return self._indexes[layer]

    def rects_in_window(self, layer: int, window: Rect) -> list[Rect]:
        """All layer rectangles overlapping ``window``."""
        return self.index(layer).query(window)

    def bbox(self, layer: Optional[int] = None) -> Optional[Rect]:
        """Bounding box of one layer, or of the whole layout."""
        if layer is not None:
            if layer not in self._layers:
                raise LayoutError(f"layout has no layer {layer}")
            return bounding_box(self._layers[layer].rects)
        boxes = [
            box
            for box in (bounding_box(lyr.rects) for lyr in self._layers.values())
            if box is not None
        ]
        if not boxes:
            return None
        out = boxes[0]
        for box in boxes[1:]:
            out = out.union_bbox(box)
        return out

    def polygon_count(self, layer: Optional[int] = None) -> int:
        if layer is not None:
            return len(self.layer(layer).polygons)
        return sum(len(lyr.polygons) for lyr in self._layers.values())

    def rect_count(self, layer: Optional[int] = None) -> int:
        if layer is not None:
            return len(self.layer(layer).rects)
        return sum(len(lyr.rects) for lyr in self._layers.values())

    # ------------------------------------------------------------------
    # clip cutting
    # ------------------------------------------------------------------
    def cut_clip(
        self,
        spec: ClipSpec,
        window: Rect,
        layer: int = 1,
        label: ClipLabel = ClipLabel.UNKNOWN,
    ) -> Clip:
        """Extract the clip at ``window`` with the geometry under it."""
        rects = self.rects_in_window(layer, window)
        return Clip.build(window, spec, rects, label, layer)

    def cut_clip_at_core(
        self,
        spec: ClipSpec,
        core: Rect,
        layer: int = 1,
        label: ClipLabel = ClipLabel.UNKNOWN,
    ) -> Clip:
        """Extract the clip whose *core* window is ``core``."""
        return self.cut_clip(spec, spec.clip_for_core(core), layer, label)
