"""Layout clips: the unit of training and evaluation.

Per the ICCAD-2012 formulation (Fig. 1), a *clip* is a square layout window
made of a central *core* — the part whose printability is being judged —
surrounded by an *ambit* that supplies lithographic context.  The contest
benchmarks use a 1.2 x 1.2 um core inside a 4.8 x 4.8 um clip.

A :class:`Clip` owns its window geometry plus the polygon rectangles that
fall inside the window (clipped to it), and an optional ground-truth label.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterable, Optional

import numpy as np

from repro.errors import LayoutError
from repro.geometry.dissect import disjoint_cover
from repro.geometry.grid import density_grid, window_density
from repro.geometry.rect import Rect
from repro.geometry.transform import Orientation, transform_rects_in_window


class ClipLabel(Enum):
    """Ground-truth (or predicted) class of a clip."""

    HOTSPOT = "hotspot"
    NON_HOTSPOT = "non_hotspot"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ClipSpec:
    """Window dimensions shared by every clip of a benchmark.

    ``core_side`` and ``clip_side`` are in DBU; the core is centred in the
    clip, so the ambit margin is ``(clip_side - core_side) / 2`` per side.
    Defaults are the ICCAD-2012 values with a 1 nm DBU.
    """

    core_side: int = 1200
    clip_side: int = 4800

    def __post_init__(self) -> None:
        if self.core_side <= 0 or self.clip_side <= 0:
            raise LayoutError("clip dimensions must be positive")
        if self.core_side > self.clip_side:
            raise LayoutError(
                f"core {self.core_side} larger than clip {self.clip_side}"
            )
        if (self.clip_side - self.core_side) % 2:
            raise LayoutError("ambit margin must be integral on both sides")

    @property
    def ambit_margin(self) -> int:
        return (self.clip_side - self.core_side) // 2

    def core_of(self, clip_window: Rect) -> Rect:
        """The core window centred inside a clip window."""
        m = self.ambit_margin
        return Rect(
            clip_window.x0 + m,
            clip_window.y0 + m,
            clip_window.x1 - m,
            clip_window.y1 - m,
        )

    def clip_at(self, x0: int, y0: int) -> Rect:
        """The clip window whose lower-left corner is ``(x0, y0)``."""
        return Rect(x0, y0, x0 + self.clip_side, y0 + self.clip_side)

    def clip_for_core(self, core: Rect) -> Rect:
        """The clip window whose centred core is ``core``."""
        if core.width != self.core_side or core.height != self.core_side:
            raise LayoutError(
                f"core must be {self.core_side} square, got {core.width}x{core.height}"
            )
        m = self.ambit_margin
        return Rect(core.x0 - m, core.y0 - m, core.x1 + m, core.y1 + m)


@dataclass(frozen=True)
class Clip:
    """A layout window with its geometry and label.

    ``rects`` hold the dissected polygon rectangles intersected with the
    clip window, sorted for canonical comparison.  Construction clips any
    out-of-window geometry rather than rejecting it, because shifted
    derivatives legitimately push geometry over the edge.
    """

    window: Rect
    spec: ClipSpec
    rects: tuple[Rect, ...]
    label: ClipLabel = ClipLabel.UNKNOWN
    layer: int = 1

    @staticmethod
    def build(
        window: Rect,
        spec: ClipSpec,
        rects: Iterable[Rect],
        label: ClipLabel = ClipLabel.UNKNOWN,
        layer: int = 1,
    ) -> "Clip":
        if window.width != spec.clip_side or window.height != spec.clip_side:
            raise LayoutError(
                f"clip window must be {spec.clip_side} square, "
                f"got {window.width}x{window.height}"
            )
        clipped = [
            r for r in (rect.intersection(window) for rect in rects) if r is not None
        ]
        # Layout geometry may overlap (GDSII union semantics); clips hold a
        # disjoint cover so density and tiling arithmetic stay exact.
        if any(
            a.overlaps(b)
            for i, a in enumerate(clipped)
            for b in clipped[i + 1 :]
        ):
            clipped = disjoint_cover(clipped)
        return Clip(window, spec, tuple(sorted(clipped)), label, layer)

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------
    @property
    def core(self) -> Rect:
        return self.spec.core_of(self.window)

    def core_rects(self) -> list[Rect]:
        """Geometry intersected with the core window."""
        core = self.core
        return [r for r in (rect.intersection(core) for rect in self.rects) if r]

    def ambit_rects(self) -> list[Rect]:
        """Geometry pieces lying outside the core (the ambit ring).

        Each clip rectangle is reduced to its parts not covered by the core
        window; a rectangle straddling the core boundary contributes only
        its outside portions.
        """
        core = self.core
        out: list[Rect] = []
        for rect in self.rects:
            if not rect.overlaps(core):
                out.append(rect)
                continue
            # Split off up to four side pieces around the core.
            left = Rect.maybe(rect.x0, rect.y0, min(rect.x1, core.x0), rect.y1)
            right = Rect.maybe(max(rect.x0, core.x1), rect.y0, rect.x1, rect.y1)
            mid_x0, mid_x1 = max(rect.x0, core.x0), min(rect.x1, core.x1)
            below = Rect.maybe(mid_x0, rect.y0, mid_x1, min(rect.y1, core.y0))
            above = Rect.maybe(mid_x0, max(rect.y0, core.y1), mid_x1, rect.y1)
            out.extend(piece for piece in (left, right, below, above) if piece)
        return sorted(out)

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    def core_density(self) -> float:
        """Fraction of the core window covered by polygons."""
        return window_density(self.rects, self.core)

    def clip_density(self) -> float:
        """Fraction of the whole clip window covered by polygons."""
        return window_density(self.rects, self.window)

    def core_density_grid(self, resolution: int) -> np.ndarray:
        """Pixelated density of the core region (Section III-B2)."""
        return density_grid(self.core_rects(), self.core, resolution)

    def clip_density_grid(self, resolution: int) -> np.ndarray:
        """Pixelated density of the full clip (used by the feedback kernel)."""
        return density_grid(self.rects, self.window, resolution)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def shifted(self, dx: int, dy: int) -> "Clip":
        """Derivative clip whose *window* moves by ``(-dx, -dy)``.

        Shifting the window opposite to the requested content shift makes
        the geometry appear shifted by ``(dx, dy)`` inside the window, which
        is how Section III-D3's data-shifting upsampling is defined.
        Geometry that leaves the window is clipped away.
        """
        moved = self.window.translated(-dx, -dy)
        return Clip.build(moved, self.spec, self.rects, self.label, self.layer)

    def oriented(self, orientation: Orientation) -> "Clip":
        """Derivative clip whose content is transformed by ``orientation``."""
        rects = transform_rects_in_window(list(self.rects), self.window, orientation)
        return Clip(self.window, self.spec, tuple(rects), self.label, self.layer)

    def with_label(self, label: ClipLabel) -> "Clip":
        return replace(self, label=label)

    def normalized(self) -> "Clip":
        """The clip translated so its window's lower-left is the origin.

        Training patterns from different layout locations compare equal
        after normalisation iff their content matches.
        """
        dx, dy = -self.window.x0, -self.window.y0
        return Clip(
            self.window.translated(dx, dy),
            self.spec,
            tuple(sorted(r.translated(dx, dy) for r in self.rects)),
            self.label,
            self.layer,
        )

    def content_key(self) -> tuple:
        """Hashable, position-independent content fingerprint."""
        normal = self.normalized()
        return (normal.spec, normal.rects)


@dataclass
class ClipSet:
    """A labelled collection of clips sharing one :class:`ClipSpec`."""

    spec: ClipSpec
    clips: list[Clip] = field(default_factory=list)

    def __post_init__(self) -> None:
        for clip in self.clips:
            self._check(clip)

    def _check(self, clip: Clip) -> None:
        if clip.spec != self.spec:
            raise LayoutError("clip spec does not match clip-set spec")

    def add(self, clip: Clip) -> None:
        self._check(clip)
        self.clips.append(clip)

    def __len__(self) -> int:
        return len(self.clips)

    def __iter__(self):
        return iter(self.clips)

    def hotspots(self) -> list[Clip]:
        return [c for c in self.clips if c.label is ClipLabel.HOTSPOT]

    def non_hotspots(self) -> list[Clip]:
        return [c for c in self.clips if c.label is ClipLabel.NON_HOTSPOT]

    def split(self) -> tuple[list[Clip], list[Clip]]:
        """Partition into (hotspots, non-hotspots), discarding unknowns."""
        return self.hotspots(), self.non_hotspots()
