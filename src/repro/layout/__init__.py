"""Layout model: layers, spatial indexing, clips, serialisation."""

from repro.layout.clip import Clip, ClipLabel, ClipSet, ClipSpec
from repro.layout.layout import Layer, Layout
from repro.layout.spatial import RectIndex
from repro.layout.io import (
    clipset_from_json,
    clipset_to_json,
    clipset_to_library,
    layout_to_library,
    library_to_clipset,
    library_to_layout,
    load_clipset_gds,
    load_clipset_json,
    load_layout_auto,
    load_layout_gds,
    save_clipset_gds,
    save_clipset_json,
    save_layout_auto,
    save_layout_gds,
)

__all__ = [
    "Clip",
    "ClipLabel",
    "ClipSet",
    "ClipSpec",
    "Layer",
    "Layout",
    "RectIndex",
    "layout_to_library",
    "library_to_layout",
    "save_layout_gds",
    "load_layout_gds",
    "load_layout_auto",
    "save_layout_auto",
    "clipset_to_library",
    "library_to_clipset",
    "save_clipset_gds",
    "load_clipset_gds",
    "clipset_to_json",
    "clipset_from_json",
    "save_clipset_json",
    "load_clipset_json",
]
