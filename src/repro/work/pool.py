"""Crash-isolated supervised process pool.

Every parallel path of the pipeline used to be a ``ThreadPoolExecutor``
inside one process: a native crash, OOM kill or hang on a single
pathological clip took the whole multi-hour scan down with it.
:class:`SupervisedPool` runs tasks in ``multiprocessing`` workers under
an actively supervising parent instead:

- **Heartbeats** — each worker runs a daemon thread that reports
  liveness (and its RSS) every ``heartbeat_interval_s``; a worker that
  goes silent past ``heartbeat_timeout_s`` is presumed wedged and
  killed.
- **Hung-task kill** — every dispatched task gets a
  :class:`~repro.resilience.retry.Deadline`; on expiry the worker is
  SIGKILLed and the task handled like a crash
  (:class:`~repro.errors.StageTimeout` recorded as the cause).
- **Crash detection + bounded retry** — a worker that dies mid-task
  (segfault, OOM, injected ``kill`` fault) is detected via its process
  sentinel; the task is retried on a *fresh* worker up to
  ``task_retries`` times.
- **Bisection** — a task that keeps killing workers is split via the
  caller's ``split`` callback until the offending unit is isolated; the
  atomic survivor is reported through ``on_poison`` (the sharded scan
  routes it into the run's quarantine) instead of failing the run.
- **Worker recycling** — workers retire after ``max_tasks_per_worker``
  tasks or once their RSS passes ``max_worker_rss_mb`` (leak hygiene on
  week-long scans); recycling happens between tasks, never mid-task.
- **Graceful drain** — a ``stop_event`` (wired to SIGTERM by the CLI)
  stops dispatch, lets in-flight tasks finish and journals their
  results, so an interrupted scan resumes instead of restarting.

Task functions must be **module-level callables** with picklable
payloads: workers are started fresh (fork where available, spawn
otherwise) and receive ``fn(state, payload)`` where ``state`` is
whatever the pool's ``init_fn`` built once per worker (the scan driver
loads the layout + model there).

Fault-injection points (:mod:`repro.resilience.faults`):

- ``work.task`` — worker-side, top of every task (``kill`` simulates a
  crash, ``error``/``timeout`` a failing task, ``slow`` a stall);
- ``work.heartbeat`` — worker-side, in the heartbeat loop (``error``
  silences the worker so the supervisor's liveness kill fires);
- ``work.crash`` — parent-side, right after dispatch: SIGKILLs the
  worker that just received the task (deterministic parent-side
  counters, unlike worker-side ``kill`` rules under fork).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Optional, Sequence

from repro.errors import (
    ConfigError,
    ReproError,
    StageTimeout,
    WorkError,
    WorkerCrashError,
)
from repro.obs import get_logger, tally
from repro.resilience import faults
from repro.resilience.retry import Deadline

_log = get_logger("work.pool")


def _start_method() -> str:
    return "fork" if "fork" in get_all_start_methods() else "spawn"


def _rss_mb() -> float:
    """Peak RSS of the calling process in MiB (0.0 when unavailable)."""
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):  # pragma: no cover — non-POSIX
        return 0.0
    return rss_kb / 1024.0


@dataclass(frozen=True)
class PoolConfig:
    """Supervision knobs of a :class:`SupervisedPool`."""

    workers: int = 2
    #: Per-task wall budget; ``None`` disables the hung-task kill.
    task_timeout_s: Optional[float] = 300.0
    heartbeat_interval_s: float = 0.2
    #: Silence longer than this while a task is in flight kills the worker.
    heartbeat_timeout_s: float = 10.0
    #: Crash/hang/error retries per task before splitting or poisoning.
    task_retries: int = 1
    #: Retire a worker after this many tasks (``None`` = never).
    max_tasks_per_worker: Optional[int] = None
    #: Retire a worker whose peak RSS passes this (``None`` = never).
    max_worker_rss_mb: Optional[float] = None
    #: Seconds to wait for workers to exit on graceful stop.
    drain_timeout_s: float = 5.0
    #: Supervisor poll tick; bounds detection latency, not throughput.
    tick_s: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError("pool workers must be >= 1")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ConfigError("task_timeout_s must be positive or None")
        if self.heartbeat_interval_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ConfigError("heartbeat intervals must be positive")
        if self.task_retries < 0:
            raise ConfigError("task_retries must be >= 0")


@dataclass
class PoolTask:
    """One schedulable unit: a picklable payload for a module-level fn."""

    task_id: str
    fn: Callable
    payload: object
    #: Crash/hang/error attempts consumed so far.
    attempts: int = 0
    #: How many bisections produced this task (0 = original).
    depth: int = 0
    #: Opaque grouping key threaded through splits (the scan's shard id).
    group: Optional[object] = None


@dataclass
class PoolStats:
    """Counters of one :meth:`SupervisedPool.run`."""

    tasks_ok: int = 0
    task_errors: int = 0
    task_retries: int = 0
    worker_restarts: int = 0
    worker_recycles: int = 0
    bisections: int = 0
    poison_tasks: int = 0
    drained: bool = False
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "tasks_ok": self.tasks_ok,
            "task_errors": self.task_errors,
            "task_retries": self.task_retries,
            "worker_restarts": self.worker_restarts,
            "worker_recycles": self.worker_recycles,
            "bisections": self.bisections,
            "poison_tasks": self.poison_tasks,
            "drained": self.drained,
            "wall_s": round(self.wall_s, 6),
        }


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _worker_main(conn, worker_index, init_fn, init_args, heartbeat_interval_s):
    """Worker loop: init once, then recv task / send result until stopped."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns shutdown

    # Orphan watchdog: forked siblings inherit each other's pipe fds, so
    # a SIGKILLed parent never produces EOF on ``conn`` — without this a
    # dead scan leaves workers alive forever, pinning the CLI's
    # stdout/stderr pipes open.  Reparenting (getppid change) is the one
    # signal fd inheritance cannot mask.
    parent_pid = os.getppid()

    def _orphan_watch() -> None:
        while True:
            if os.getppid() != parent_pid:
                os._exit(1)
            time.sleep(min(0.5, heartbeat_interval_s))

    threading.Thread(target=_orphan_watch, daemon=True).start()
    if faults.get() is None:
        # Fork children inherit the parent's injector; spawn children
        # start clean, so re-install any environment-driven plan to keep
        # REPRO_FAULTS chaos runs backend-agnostic.
        faults.from_env()
    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(message) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _heartbeats() -> None:
        while not stop.is_set():
            try:
                faults.inject("work.heartbeat", worker=worker_index)
            except ReproError:
                return  # injected fault silences the worker on purpose
            if not _send(("heartbeat", _rss_mb())):
                return
            stop.wait(heartbeat_interval_s)

    try:
        state = init_fn(*init_args) if init_fn is not None else None
    except BaseException as exc:  # noqa: BLE001 — reported, then exit
        _send(("init_error", type(exc).__name__, str(exc)))
        return
    threading.Thread(target=_heartbeats, daemon=True).start()
    _send(("ready", _rss_mb()))

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, task_id, fn, payload = message
        started = time.perf_counter()
        try:
            faults.inject("work.task", task=task_id, worker=worker_index)
            result = fn(state, payload)
        except (KeyboardInterrupt, SystemExit):
            break
        except BaseException as exc:  # noqa: BLE001 — parent decides
            if not _send(
                ("err", task_id, type(exc).__name__, str(exc),
                 time.perf_counter() - started)
            ):
                break
        else:
            if not _send(("ok", task_id, result, time.perf_counter() - started)):
                break
    stop.set()
    conn.close()


# ----------------------------------------------------------------------
# parent-side worker handle
# ----------------------------------------------------------------------
class _Worker:
    """Supervisor-side state of one worker process."""

    __slots__ = (
        "index",
        "generation",
        "process",
        "conn",
        "task",
        "deadline",
        "dispatched_at",
        "last_heartbeat",
        "tasks_done",
        "rss_mb",
        "ready",
        "dead",
    )

    def __init__(self, index: int, generation: int, process, conn) -> None:
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        self.task: Optional[PoolTask] = None
        self.deadline: Optional[Deadline] = None
        self.dispatched_at = 0.0
        self.last_heartbeat = time.monotonic()
        self.tasks_done = 0
        self.rss_mb = 0.0
        self.ready = False
        self.dead = False

    @property
    def name(self) -> str:
        return f"worker-{self.index}.{self.generation}"


class SupervisedPool:
    """Run picklable tasks on supervised, crash-isolated worker processes.

    One-shot usage::

        pool = SupervisedPool(PoolConfig(workers=4), init_fn=_load_state,
                              init_args=(model_path,))
        stats = pool.run(tasks, split=split_fn,
                         on_result=collect, on_poison=quarantine)

    ``run`` blocks until every task completed, was poisoned, or a drain
    was requested; callbacks fire on the supervisor thread, in
    completion order.
    """

    def __init__(
        self,
        config: Optional[PoolConfig] = None,
        init_fn: Optional[Callable] = None,
        init_args: tuple = (),
    ) -> None:
        self.config = config or PoolConfig()
        self._init_fn = init_fn
        self._init_args = init_args
        self._context = get_context(_start_method())
        self._generation = 0

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        self._generation += 1
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                index,
                self._init_fn,
                self._init_args,
                self.config.heartbeat_interval_s,
            ),
            daemon=True,
            name=f"repro-work-{index}",
        )
        process.start()
        child_conn.close()  # parent's copy; worker holds the live end
        return _Worker(index, self._generation, process, parent_conn)

    def _kill(self, worker: _Worker) -> None:
        worker.dead = True
        try:
            if worker.process.is_alive():
                worker.process.kill()
        except (OSError, ValueError):  # pragma: no cover — already gone
            pass
        worker.process.join(timeout=1.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _stop_gracefully(self, workers: Sequence[_Worker]) -> None:
        for worker in workers:
            if worker.dead:
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + self.config.drain_timeout_s
        for worker in workers:
            if worker.dead:
                continue
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                self._kill(worker)
            else:
                worker.dead = True
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[PoolTask],
        split: Optional[Callable[[PoolTask], Optional[list]]] = None,
        on_result: Optional[Callable[[PoolTask, object, dict], None]] = None,
        on_poison: Optional[Callable[[PoolTask, BaseException], None]] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> PoolStats:
        """Execute ``tasks``; returns the run's :class:`PoolStats`.

        ``split(task)`` returns sub-tasks for a failing task or ``None``
        when the task is atomic; ``on_result(task, result, info)`` fires
        per completed task (``info`` holds ``worker``/``wall_s``);
        ``on_poison(task, error)`` fires for atomic tasks whose retries
        are exhausted.  Setting ``stop_event`` drains: no new dispatch,
        in-flight tasks finish, ``stats.drained`` is set if work remains.
        """
        config = self.config
        stats = PoolStats()
        started = time.perf_counter()
        queue: deque[PoolTask] = deque(tasks)
        if not queue:
            stats.wall_s = time.perf_counter() - started
            return stats

        count = min(config.workers, len(queue))
        workers = [self._spawn(index) for index in range(count)]
        try:
            self._supervise(workers, queue, split, on_result, on_poison,
                            stop_event, stats)
        finally:
            self._stop_gracefully(workers)
        stats.wall_s = time.perf_counter() - started
        return stats

    def _supervise(self, workers, queue, split, on_result, on_poison,
                   stop_event, stats: PoolStats) -> None:
        config = self.config

        def draining() -> bool:
            return stop_event is not None and stop_event.is_set()

        def inflight() -> int:
            return sum(1 for w in workers if not w.dead and w.task is not None)

        def fail_task(worker: _Worker, error: BaseException, crashed: bool) -> None:
            """Retry, split, or poison the in-flight task of ``worker``."""
            task = worker.task
            worker.task = None
            worker.deadline = None
            assert task is not None
            task.attempts += 1
            if crashed:
                stats.worker_restarts += 1
            else:
                stats.task_errors += 1
            _log.warning(
                "task_failed",
                task=task.task_id,
                worker=worker.name,
                attempts=task.attempts,
                crashed=crashed,
                error=f"{type(error).__name__}: {error}",
            )
            if task.attempts <= config.task_retries:
                stats.task_retries += 1
                queue.appendleft(task)
                return
            subtasks = split(task) if split is not None else None
            if subtasks is not None:
                # Empty list = "the task resolves into nothing" (e.g. a
                # region shard with no anchors); drop it as handled.
                stats.bisections += 1
                _log.warning(
                    "task_bisected",
                    task=task.task_id,
                    into=[sub.task_id for sub in subtasks],
                )
                queue.extendleft(reversed(subtasks))
                return
            stats.poison_tasks += 1
            _log.error(
                "task_poisoned",
                task=task.task_id,
                error=f"{type(error).__name__}: {error}",
            )
            if on_poison is not None:
                on_poison(task, error)

        init_failures = 0

        def handle_message(worker: _Worker, message) -> None:
            nonlocal init_failures
            kind = message[0]
            worker.last_heartbeat = time.monotonic()
            if kind == "heartbeat":
                worker.rss_mb = max(worker.rss_mb, float(message[1]))
                return
            if kind == "ready":
                worker.ready = True
                init_failures = 0
                worker.rss_mb = max(worker.rss_mb, float(message[1]))
                return
            if kind == "init_error":
                # The worker could not build its state; treat like a crash
                # of whatever it was dispatched, but cap consecutive
                # failures — a broken init_fn must not respawn forever.
                init_failures += 1
                self._kill(worker)
                if worker.task is not None:
                    fail_task(
                        worker,
                        WorkerCrashError(
                            f"{worker.name} failed to initialise: "
                            f"{message[1]}: {message[2]}"
                        ),
                        crashed=True,
                    )
                if init_failures > max(4, 2 * config.workers):
                    raise WorkerCrashError(
                        "workers repeatedly failing to initialise: "
                        f"{message[1]}: {message[2]}"
                    )
                return
            task_id = message[1]
            task = worker.task
            if task is None or task.task_id != task_id:
                # A result for a task this worker no longer owns (it was
                # killed and the task reassigned); drop it.
                return
            worker.tasks_done += 1
            if kind == "ok":
                _, _, result, wall_s = message
                worker.task = None
                worker.deadline = None
                stats.tasks_ok += 1
                tally("work.task", wall_s)
                tally(f"work.worker.{worker.index}", wall_s)
                if on_result is not None:
                    on_result(task, result, {
                        "worker": worker.index,
                        "wall_s": wall_s,
                    })
            else:
                _, _, type_name, detail, _ = message
                fail_task(
                    worker, WorkError(f"{type_name}: {detail}"), crashed=False
                )

        def reap(worker: _Worker) -> None:
            """Handle a worker found dead (crash, OOM, injected kill)."""
            if worker.dead:
                return
            # Drain anything it managed to send before dying.
            try:
                while worker.conn.poll():
                    handle_message(worker, worker.conn.recv())
            except (EOFError, OSError):
                pass
            self._kill(worker)
            if worker.task is not None:
                fail_task(
                    worker,
                    WorkerCrashError(
                        f"{worker.name} died running task {worker.task.task_id}"
                    ),
                    crashed=True,
                )
            elif worker.ready:
                stats.worker_restarts += 1
                _log.warning("worker_died_idle", worker=worker.name)

        def supervise_health(worker: _Worker) -> None:
            if worker.dead:
                return
            if not worker.process.is_alive():
                reap(worker)
                return
            if worker.task is None:
                return
            now = time.monotonic()
            if worker.deadline is not None and worker.deadline.expired():
                timeout = StageTimeout(
                    f"task {worker.task.task_id!r} exceeded its "
                    f"{config.task_timeout_s:.1f}s deadline on {worker.name}"
                )
                self._kill(worker)
                fail_task(worker, timeout, crashed=True)
                return
            if now - worker.last_heartbeat > config.heartbeat_timeout_s:
                silence = now - worker.last_heartbeat
                self._kill(worker)
                fail_task(
                    worker,
                    WorkerCrashError(
                        f"{worker.name} heartbeat silent for {silence:.1f}s"
                    ),
                    crashed=True,
                )

        def recycle_due(worker: _Worker) -> bool:
            if worker.task is not None:
                return False
            if (
                config.max_tasks_per_worker is not None
                and worker.tasks_done >= config.max_tasks_per_worker
            ):
                return True
            return (
                config.max_worker_rss_mb is not None
                and worker.rss_mb > config.max_worker_rss_mb
            )

        injector = faults.get()

        def dispatch(worker: _Worker, task: PoolTask) -> None:
            worker.task = task
            worker.dispatched_at = time.monotonic()
            worker.last_heartbeat = time.monotonic()
            worker.deadline = (
                Deadline(config.task_timeout_s)
                if config.task_timeout_s is not None
                else None
            )
            try:
                worker.conn.send(("task", task.task_id, task.fn, task.payload))
            except (BrokenPipeError, OSError):
                reap(worker)
                return
            if injector is not None:
                # Parent-side crash injection: kill the worker that just
                # received the task.  Parent counters make this exact.
                rule = injector.match("work.crash")
                if rule is not None:
                    injector.record(
                        "work.crash", rule.kind,
                        {"worker": worker.name, "task": task.task_id},
                    )
                    if worker.process.pid is not None:
                        os.kill(worker.process.pid, signal.SIGKILL)

        while True:
            if not draining():
                for slot, worker in enumerate(workers):
                    if not queue:
                        break
                    if worker.dead:
                        if queue or inflight():
                            workers[slot] = worker = self._spawn(worker.index)
                        else:
                            continue
                    if recycle_due(worker):
                        stats.worker_recycles += 1
                        _log.info("worker_recycled", worker=worker.name,
                                  tasks=worker.tasks_done,
                                  rss_mb=round(worker.rss_mb, 1))
                        self._stop_gracefully([worker])
                        workers[slot] = worker = self._spawn(worker.index)
                    if worker.task is None:
                        dispatch(worker, queue.popleft())

            if inflight() == 0 and (draining() or not queue):
                break

            sentinels = []
            for worker in workers:
                if worker.dead:
                    continue
                sentinels.append(worker.conn)
                sentinels.append(worker.process.sentinel)
            if not sentinels:
                if queue and not draining():
                    continue  # all workers died; respawn at loop top
                break
            connection_wait(sentinels, timeout=self.config.tick_s)

            for worker in workers:
                if worker.dead:
                    continue
                try:
                    while worker.conn.poll():
                        handle_message(worker, worker.conn.recv())
                except (EOFError, OSError):
                    reap(worker)
            for worker in workers:
                supervise_health(worker)

        if draining() and queue:
            stats.drained = True
            _log.warning("pool_drained", remaining=len(queue))
