"""repro.work — crash-isolated supervised execution for layout scans.

Two layers:

- :mod:`repro.work.pool` — :class:`SupervisedPool`, a generic
  ``multiprocessing`` worker pool with heartbeats, hung-task kill,
  crash retry, poison-task bisection, worker recycling and graceful
  drain;
- :mod:`repro.work.shard` — the sharded scan driver that runs a
  layout's candidate anchors on the pool and journals completed shards
  for ``repro scan --resume``.

Select it per scan via ``HotspotDetector.detect(..., work=ScanOptions(...))``,
per config via ``DetectorConfig(backend="process")``, or from the CLI
with ``repro scan --backend process --workers N``.
"""

from repro.work.pool import PoolConfig, PoolStats, PoolTask, SupervisedPool
from repro.work.shard import (
    ScanJournal,
    ScanOptions,
    ScanResult,
    decode_shard_record,
    encode_shard_record,
    evaluate_shard,
    run_sharded_scan,
    scan_fingerprint,
    shard_anchors,
    shard_cells,
)

__all__ = [
    "PoolConfig",
    "PoolStats",
    "PoolTask",
    "SupervisedPool",
    "ScanJournal",
    "ScanOptions",
    "ScanResult",
    "decode_shard_record",
    "encode_shard_record",
    "evaluate_shard",
    "run_sharded_scan",
    "scan_fingerprint",
    "shard_anchors",
    "shard_cells",
]
