"""Journaled, resumable sharded layout scans on a supervised pool.

The scan driver splits a layout's candidate anchors into region shards
(a grid of ``shard_side`` cells over the layer bounding box), runs one
task per shard on a :class:`~repro.work.pool.SupervisedPool`, and
appends every completed shard to an on-disk **journal** so an
interrupted run — crash, OOM kill, SIGTERM drain — resumes from the
completed shards instead of restarting a multi-hour scan from zero.

Bit-identical by construction: anchors are bucketed into half-open
shard windows (each anchor belongs to exactly one shard), workers cut
clips from the *full* layout (shard membership never changes a clip's
content), and the merged candidates are re-sorted into the global
anchor order the thread backend produces — so thread and process
backends, faulted + resumed or not, yield the same hotspot set.

Journal layout (``<layout>.scanjournal/`` by default)::

    journal.jsonl     line 1: header {version, fingerprint, shards,
                      shard_side, created_unix}; then one line per
                      completed shard {shard, file, anchors, candidates}
    shard_NNNN.npz    anchors (N,2) int64 + margins (N,) float64 + a
                      JSON meta blob (funnel counts, quarantine dump),
                      written atomically (tmp + os.replace)

The header fingerprint hashes the layer geometry, the detector config
minus execution/threshold knobs, the trained kernels, the layer and the
shard grid — mirroring ``resilience/checkpoint.py``: a mismatched
journal is discarded with a warning, never silently mixed.  Margins are
threshold-independent, so a journaled run may resume under a different
``--threshold``.

A task that repeatedly kills workers is bisected down the anchor list
until the single offending anchor is isolated; that anchor lands in the
run's :class:`~repro.resilience.quarantine.QuarantineReport` (kind
``PoisonTaskError``) and the scan carries on.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from hashlib import sha256
from io import BytesIO
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.extraction import candidate_anchors, extract_from_anchors
from repro.errors import CheckpointError, NotFittedError, ScanDrainedError
from repro.geometry.rect import Rect
from repro.layout.clip import Clip
from repro.obs import fingerprint_layout, fingerprint_rects, get_logger, tally, trace
from repro.resilience import faults
from repro.resilience.quarantine import QuarantineReport
from repro.work.pool import PoolConfig, PoolStats, PoolTask, SupervisedPool

#: Bump on breaking journal-layout changes.  Version 2 adds the
#: layout-independent ``base`` fingerprint to the header and the absolute
#: grid-cell origin + influence-region geometry hash to every shard
#: record — the matching state incremental scans need.
SCAN_JOURNAL_VERSION = 2

#: Default shard edge, in multiples of the clip side: big enough that
#: per-shard overhead amortises, small enough that losing one shard to a
#: crash costs little recomputation.
DEFAULT_SHARD_CLIPS = 4

_log = get_logger("work.shard")


# ----------------------------------------------------------------------
# options / results
# ----------------------------------------------------------------------
@dataclass
class ScanOptions:
    """Execution knobs of one sharded process scan."""

    workers: int = 2
    #: Shard cell edge in DBU (default ``DEFAULT_SHARD_CLIPS * clip_side``).
    shard_side: Optional[int] = None
    #: Journal directory; ``None`` scans without resumability.
    journal_dir: Optional[Union[str, Path]] = None
    #: Reuse a compatible journal's completed shards.
    resume: bool = False
    #: Supervision overrides; ``workers`` above wins over ``pool.workers``.
    pool: Optional[PoolConfig] = None
    #: Set (e.g. from a SIGTERM handler) to drain: in-flight shards
    #: finish and journal, then the scan raises ``ScanDrainedError``.
    stop_event: Optional[threading.Event] = None
    #: Keep the journal after a successful scan (default: cleared, like
    #: training checkpoints).
    keep_journal: bool = False
    #: Reuse shards from the previous run's journal whose influence-region
    #: geometry hash is unchanged, re-evaluating only edited regions.
    #: Requires ``journal_dir``; implies ``keep_journal`` (the journal is
    #: the state the next incremental run diffs against).
    incremental: bool = False
    #: Directory of an on-disk :class:`repro.cache.HotspotCache` tier.
    #: Workers open it read/write, so a warm cache accelerates even
    #: freshly-scanned shards; defaults to the detector cache's directory.
    cache_dir: Optional[Union[str, Path]] = None
    #: Margin compute mode for this scan ("exact"/"fast"); ``None`` keeps
    #: the detector's configured mode.  The mode is part of the scan
    #: fingerprint (via the model hash), so exact and fast journals never
    #: mix.
    compute: Optional[str] = None


@dataclass
class ScanResult:
    """Merged output of a sharded scan, in global anchor order."""

    clips: list[Clip]
    margins: np.ndarray
    anchor_count: int
    rejected_density: int
    rejected_count: int
    rejected_boundary: int
    quarantined: int
    stats: PoolStats
    shards_total: int
    shards_resumed: int
    #: Shards reused by geometry-hash match from a previous run's journal
    #: (incremental mode); disjoint from ``shards_resumed``.
    shards_reused: int = 0


@dataclass
class _ShardRecord:
    """One completed shard: candidate anchors, margins, funnel counts."""

    shard_id: int
    anchors: list[tuple[int, int]]
    margins: np.ndarray
    anchor_count: int
    rejected_density: int = 0
    rejected_count: int = 0
    rejected_boundary: int = 0
    quarantine: dict = field(default_factory=dict)
    #: Candidate clips, parallel to ``anchors``; ``None`` for shards
    #: loaded from the journal (re-cut from the layout at merge time).
    clips: Optional[list[Clip]] = None
    #: Absolute DBU origin of the shard's grid cell (stable across runs
    #: as long as the layer bounding box is stable; shard *ids* are not).
    cell: Optional[tuple[int, int]] = None
    #: sha256 of the source rects overlapping the cell expanded by the
    #: clip side — everything that can influence this shard's anchors,
    #: clip contents and funnel counts.
    geometry_sha: str = ""
    #: Wall seconds spent evaluating the shard (journaled, so the fleet
    #: status plane's ETA/straggler percentiles survive ``--resume``).
    wall_s: float = 0.0


# ----------------------------------------------------------------------
# fingerprint
# ----------------------------------------------------------------------
def _model_hash(model) -> str:
    """Hash of the trained model state margins depend on."""
    from repro.cache.keys import model_fingerprint

    return model_fingerprint(model)


def scan_base_fingerprint(layer: int, config, model, shard_side: int) -> str:
    """The layout-independent part of the scan fingerprint.

    Incremental scans compare this across runs: the *layout* is expected
    to differ (that is the point), but the config, model, layer and shard
    grid must match for any per-shard reuse to be sound.  Mirrors
    :func:`repro.resilience.checkpoint.training_fingerprint`: execution
    knobs (``parallel``/``worker_count``/``backend``) and the decision
    threshold are excluded — margins are computed before thresholding, so
    a resume may change them freely.
    """
    from repro.obs import config_summary

    summary = config_summary(config)
    for volatile in ("parallel", "worker_count", "backend", "decision_threshold"):
        summary.pop(volatile, None)
    blob = json.dumps(
        {
            "version": SCAN_JOURNAL_VERSION,
            "config": summary,
            "model": _model_hash(model),
            "layer": layer,
            "shard_side": shard_side,
        },
        sort_keys=True,
        default=str,
    )
    return sha256(blob.encode("utf-8")).hexdigest()


def scan_fingerprint(layout, layer: int, config, model, shard_side: int) -> str:
    """Hash of everything that must match for a journal to be resumable."""
    blob = json.dumps(
        {
            "base": scan_base_fingerprint(layer, config, model, shard_side),
            "layout": fingerprint_layout(layout.layer(layer)),
        },
        sort_keys=True,
    )
    return sha256(blob.encode("utf-8")).hexdigest()


def shard_geometry_hash(
    layout, layer: int, cell: tuple[int, int], shard_side: int, clip_side: int
) -> str:
    """Content hash of everything that can influence one shard's output.

    The influence region is the grid cell expanded by ``clip_side``:
    rectangle cutting is per-rectangle deterministic, so any source rect
    contributing an anchor inside the half-open cell must overlap the
    cell itself, and a clip anchored in the cell reaches at most
    ``core_side + ambit_margin < clip_side`` beyond it.  Rects outside
    the expanded window therefore cannot change the shard's anchor set,
    clip contents, margins or funnel counts.
    """
    window = Rect(
        cell[0], cell[1], cell[0] + shard_side, cell[1] + shard_side
    ).expanded(clip_side)
    rects = sorted(layout.rects_in_window(layer, window))
    return fingerprint_rects(rects)


# ----------------------------------------------------------------------
# shard record codec (shared by the journal and the fleet wire format)
# ----------------------------------------------------------------------
def shard_record_arrays(record: _ShardRecord) -> dict[str, np.ndarray]:
    """The npz array set persisting one shard record.

    ``anchors`` (N,2) int64 + ``margins`` (N,) float64 + a JSON ``meta``
    blob (funnel counts, quarantine dump, cell origin, geometry hash).
    float64 round-trips exactly through npz, which is what makes both
    journal resume and fleet push/merge bit-identical.
    """
    anchors = np.asarray(
        record.anchors if record.anchors else np.zeros((0, 2)), dtype=np.int64
    ).reshape(-1, 2)
    meta = {
        "shard": record.shard_id,
        "anchor_count": record.anchor_count,
        "rejected_density": record.rejected_density,
        "rejected_count": record.rejected_count,
        "rejected_boundary": record.rejected_boundary,
        "quarantine": record.quarantine,
        "cell": list(record.cell) if record.cell is not None else None,
        "geometry_sha": record.geometry_sha,
        "wall_s": round(record.wall_s, 6),
    }
    return {
        "anchors": anchors,
        "margins": np.asarray(record.margins, dtype=float),
        "meta": np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ).copy(),
    }


def encode_shard_record(record: _ShardRecord) -> bytes:
    """Serialise one shard record to compressed npz bytes."""
    buffer = BytesIO()
    np.savez_compressed(buffer, **shard_record_arrays(record))
    return buffer.getvalue()


def _record_from_archive(archive, shard_id: int) -> _ShardRecord:
    """Rebuild a shard record from a loaded npz archive (may raise)."""
    anchors = archive["anchors"]
    margins = archive["margins"]
    meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
    if len(anchors) != len(margins):
        raise ValueError("anchors/margins length mismatch")
    cell = meta.get("cell")
    return _ShardRecord(
        shard_id=shard_id,
        anchors=[(int(x), int(y)) for x, y in anchors],
        margins=np.asarray(margins, dtype=float),
        anchor_count=int(meta.get("anchor_count", len(anchors))),
        rejected_density=int(meta.get("rejected_density", 0)),
        rejected_count=int(meta.get("rejected_count", 0)),
        rejected_boundary=int(meta.get("rejected_boundary", 0)),
        quarantine=dict(meta.get("quarantine", {})),
        clips=None,
        cell=(int(cell[0]), int(cell[1])) if cell else None,
        geometry_sha=str(meta.get("geometry_sha", "")),
        wall_s=float(meta.get("wall_s", 0.0)),
    )


def decode_shard_record(raw: bytes, shard_id: int) -> _ShardRecord:
    """Parse :func:`encode_shard_record` bytes back into a record.

    Raises ``ValueError``/``KeyError``/``OSError`` on malformed input;
    callers (journal load, fleet push) treat that as one lost shard, not
    a fatal error.
    """
    with np.load(BytesIO(raw)) as archive:
        return _record_from_archive(archive, shard_id)


def evaluate_shard(config, model, layout, layer: int, anchors) -> _ShardRecord:
    """Evaluate one shard's anchor list in-process; the fleet worker path.

    Produces the record :func:`run_sharded_scan` would journal for the
    same shard (anchors re-sorted into anchor order, funnel counts,
    quarantine dump) minus the clips — the merge side re-cuts candidates
    from the full layout, deterministically, exactly as it does for
    journal-resumed shards, which keeps 1-node and N-node scans
    bit-identical.  The caller stamps ``shard_id``/``cell``/
    ``geometry_sha`` from the lease.
    """
    started = time.perf_counter()
    state = _WorkerState(config=config, model=model, layout=layout, layer=layer)
    part = _scan_shard_task(state, (0, [(int(x), int(y)) for x, y in anchors]))
    merged = sorted(zip(part["anchors"], part["margins"]), key=lambda item: item[0])
    return _ShardRecord(
        shard_id=-1,
        anchors=[anchor for anchor, _ in merged],
        margins=np.asarray([margin for _, margin in merged], dtype=float),
        anchor_count=part["anchor_count"],
        rejected_density=part["rejected_density"],
        rejected_count=part["rejected_count"],
        rejected_boundary=part["rejected_boundary"],
        quarantine=part["quarantine"].to_dict(),
        clips=None,
        wall_s=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------
class ScanJournal:
    """Append-only record of completed shards (checkpoint-store style)."""

    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def _journal_path(self) -> Path:
        return self.directory / self.JOURNAL_NAME

    def _shard_path(self, shard_id: int) -> Path:
        return self.directory / f"shard_{shard_id:04d}.npz"

    # ------------------------------------------------------------------
    def begin(
        self,
        fingerprint: str,
        shards: int,
        shard_side: int,
        resume: bool = True,
        base: Optional[str] = None,
    ) -> dict[int, _ShardRecord]:
        """Prepare the journal; return resumable shards by id.

        With ``resume`` and a matching header, previously completed
        shards are loaded; otherwise stale artifacts are cleared and a
        fresh header is written.
        """
        self._ensure_directory()
        header, entries = self._read_lines()
        compatible = (
            header is not None
            and header.get("version") == SCAN_JOURNAL_VERSION
            and header.get("fingerprint") == fingerprint
            and header.get("shards") == shards
            and header.get("shard_side") == shard_side
        )
        loaded: dict[int, _ShardRecord] = {}
        if compatible and resume:
            loaded = self._load_shards(entries, shards)
            return loaded
        if header is not None and resume:
            _log.warning(
                "journal_fingerprint_mismatch",
                directory=str(self.directory),
                expected=fingerprint[:16],
                found=str(header.get("fingerprint"))[:16],
            )
        self._restart(fingerprint, shards, shard_side, base)
        return loaded

    def begin_incremental(
        self,
        fingerprint: str,
        base: str,
        shard_meta: list[tuple[tuple[int, int], str]],
        shard_side: int,
    ) -> dict[int, _ShardRecord]:
        """Prepare the journal for an incremental scan.

        ``shard_meta`` is the new run's ``(cell origin, geometry hash)``
        per shard id.  A previous journal with the same layout-independent
        ``base`` fingerprint contributes every shard whose cell and
        geometry hash both match — matching is by *content*, not shard id,
        because ids shift whenever an edit adds or empties a grid cell.
        Matched records are re-journaled under their new ids so the run
        (and any crash/resume of it) continues from a consistent journal.
        """
        self._ensure_directory()
        header, entries = self._read_lines()
        matched: dict[int, _ShardRecord] = {}
        if (
            header is not None
            and header.get("version") == SCAN_JOURNAL_VERSION
            and header.get("base") == base
            and header.get("shard_side") == shard_side
        ):
            previous = self._load_shards(entries, int(header.get("shards", 0)))
            by_content = {
                (record.cell, record.geometry_sha): record
                for record in previous.values()
                if record.cell is not None and record.geometry_sha
            }
            for new_id, (cell, geometry_sha) in enumerate(shard_meta):
                record = by_content.get((cell, geometry_sha))
                if record is not None:
                    record.shard_id = new_id
                    matched[new_id] = record
        elif header is not None:
            _log.warning(
                "journal_base_mismatch",
                directory=str(self.directory),
                expected=base[:16],
                found=str(header.get("base"))[:16],
            )
        self._restart(fingerprint, len(shard_meta), shard_side, base)
        for record in matched.values():
            self.record(record)
        return matched

    def _ensure_directory(self) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create journal directory {self.directory}: {exc}"
            ) from exc

    def _restart(
        self, fingerprint: str, shards: int, shard_side: int, base: Optional[str]
    ) -> None:
        """Clear stale shard artifacts and write a fresh header."""
        self._clear_shards()
        payload = {
            "version": SCAN_JOURNAL_VERSION,
            "fingerprint": fingerprint,
            "base": base,
            "shards": shards,
            "shard_side": shard_side,
            "created_unix": time.time(),
        }
        try:
            self._journal_path().write_text(
                json.dumps(payload) + "\n", encoding="utf-8"
            )
        except OSError as exc:
            raise CheckpointError(f"cannot write scan journal: {exc}") from exc

    def _read_lines(self) -> tuple[Optional[dict], list[dict]]:
        try:
            text = self._journal_path().read_text(encoding="utf-8")
        except FileNotFoundError:
            return None, []
        except OSError as exc:
            _log.warning(
                "journal_unreadable", path=str(self._journal_path()), error=str(exc)
            )
            return None, []
        header: Optional[dict] = None
        entries: list[dict] = []
        for line_number, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                document = json.loads(line)
            except ValueError:
                # A torn append (crash mid-write) truncates the final
                # line; that shard is simply re-scanned.
                _log.warning("journal_torn_line", line=line_number)
                continue
            if header is None:
                header = document
            else:
                entries.append(document)
        return header, entries

    def _load_shards(
        self, entries: list[dict], shards: int
    ) -> dict[int, _ShardRecord]:
        loaded: dict[int, _ShardRecord] = {}
        for entry in entries:
            try:
                shard_id = int(entry["shard"])
                if not 0 <= shard_id < shards:
                    raise ValueError(f"shard id {shard_id} out of range")
                path = self._shard_path(shard_id)
                with np.load(path) as archive:
                    loaded[shard_id] = _record_from_archive(archive, shard_id)
            except (OSError, KeyError, ValueError) as exc:
                # One corrupt shard costs one shard's rescan, never the
                # whole resume.
                _log.warning(
                    "journal_shard_unreadable",
                    shard=entry.get("shard"),
                    error=str(exc),
                )
        return loaded

    # ------------------------------------------------------------------
    def record(self, record: _ShardRecord) -> None:
        """Atomically persist one completed shard and log it."""
        path = self._shard_path(record.shard_id)
        tmp = path.with_suffix(".npz.tmp")
        try:
            tmp.write_bytes(encode_shard_record(record))
            os.replace(tmp, path)
            with self._journal_path().open("a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(
                        {
                            "shard": record.shard_id,
                            "file": path.name,
                            "anchors": record.anchor_count,
                            "candidates": len(record.anchors),
                            "wall_s": round(record.wall_s, 6),
                        }
                    )
                    + "\n"
                )
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot journal shard {path}: {exc}") from exc

    # ------------------------------------------------------------------
    def completed_ids(self) -> list[int]:
        """Shard ids with a journal entry and an archive on disk."""
        _, entries = self._read_lines()
        out = []
        for entry in entries:
            try:
                shard_id = int(entry["shard"])
            except (KeyError, ValueError):
                continue
            if self._shard_path(shard_id).exists():
                out.append(shard_id)
        return sorted(set(out))

    def clear(self) -> None:
        """Remove every journal artifact (after a successful scan)."""
        if not self.directory.exists():
            return
        self._clear_shards()
        self._journal_path().unlink(missing_ok=True)
        try:
            self.directory.rmdir()
        except OSError:
            pass  # directory holds unrelated files; leave it

    def _clear_shards(self) -> None:
        for pattern in ("shard_*.npz", "shard_*.npz.tmp"):
            for path in self.directory.glob(pattern):
                path.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# worker side (module-level: payloads must pickle under spawn)
# ----------------------------------------------------------------------
@dataclass
class _WorkerState:
    """Per-worker state built once by the pool's ``init_fn``."""

    config: object
    model: object
    layout: object
    layer: int


def _scan_worker_init(config, model, layout, layer, cache_dir=None) -> _WorkerState:
    if cache_dir is not None:
        # Each worker opens its own handle on the shared disk tier; the
        # in-memory LRU (with its lock) never crosses the process
        # boundary.  Concurrent writers are safe: blobs are
        # content-addressed and written via atomic rename.
        from repro.cache import HotspotCache

        cache = HotspotCache(directory=cache_dir)
        model.cache = cache
        model.extractor.cache = cache
    return _WorkerState(config=config, model=model, layout=layout, layer=layer)


def _scan_shard_task(state: _WorkerState, payload) -> dict:
    """Extract + evaluate the clips of one shard's anchor list."""
    _, anchor_list = payload
    anchors = [(int(x), int(y)) for x, y in anchor_list]
    quarantine = QuarantineReport()
    report = extract_from_anchors(
        state.layout,
        state.config.spec,
        state.config.extraction,
        state.layer,
        anchors,
        quarantine,
    )
    margins = (
        np.asarray(state.model.margins(report.clips), dtype=float)
        if report.clips
        else np.zeros(0)
    )
    return {
        "anchors": [(clip.core.x0, clip.core.y0) for clip in report.clips],
        "clips": report.clips,
        "margins": margins,
        "anchor_count": report.anchor_count,
        "rejected_density": report.rejected_density,
        "rejected_count": report.rejected_count,
        "rejected_boundary": report.rejected_boundary,
        "quarantine": quarantine,
    }


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def shard_cells(
    layout, spec, layer: int, shard_side: int
) -> list[tuple[tuple[int, int], list[tuple[int, int]]]]:
    """Bucket the layer's candidate anchors into grid cells.

    Returns ``(cell origin, anchors)`` pairs, where the origin is the
    cell's absolute lower-left in DBU.  The grid is anchored at the layer
    bounding box's lower-left; each anchor falls in exactly one half-open
    cell, so the buckets partition the global anchor set.  Empty cells
    are dropped; bucket order is the cell's (column, row) order, which is
    deterministic for a given layout + ``shard_side``.
    """
    anchors = candidate_anchors(layout, spec, layer)
    if not anchors:
        return []
    box = layout.bbox(layer)
    buckets: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for x, y in anchors:
        key = ((x - box.x0) // shard_side, (y - box.y0) // shard_side)
        buckets.setdefault(key, []).append((x, y))
    return [
        (
            (box.x0 + cx * shard_side, box.y0 + cy * shard_side),
            buckets[(cx, cy)],
        )
        for cx, cy in sorted(buckets)
    ]


def shard_anchors(
    layout, spec, layer: int, shard_side: int
) -> list[list[tuple[int, int]]]:
    """The anchor buckets of :func:`shard_cells`, without cell origins."""
    return [anchors for _, anchors in shard_cells(layout, spec, layer, shard_side)]


def run_sharded_scan(
    detector,
    layout,
    layer: int = 1,
    quarantine: Optional[QuarantineReport] = None,
    options: Optional[ScanOptions] = None,
) -> ScanResult:
    """Scan a layout in supervised worker processes; see module docs.

    Returns the merged candidates + margins in the thread backend's
    global anchor order.  Raises
    :class:`~repro.errors.ScanDrainedError` when ``options.stop_event``
    drains the pool before every shard completed (finished shards stay
    journaled for ``resume``).
    """
    options = options or ScanOptions()
    model = detector.model_
    if model is None:
        raise NotFittedError("sharded scan used before fit()")
    previous_compute = detector.config.features.compute
    if options.compute is not None and options.compute != previous_compute:
        detector.set_compute(options.compute)
        try:
            return run_sharded_scan(
                detector, layout, layer=layer, quarantine=quarantine,
                options=options,
            )
        finally:
            detector.set_compute(previous_compute)
    config = detector.config
    shard_side = options.shard_side or config.spec.clip_side * DEFAULT_SHARD_CLIPS
    if options.incremental and options.journal_dir is None:
        raise CheckpointError("incremental scans require a journal directory")
    cache_dir = options.cache_dir
    if cache_dir is None:
        detector_cache = getattr(detector, "cache_", None)
        if detector_cache is not None:
            cache_dir = getattr(detector_cache, "directory", None)

    with trace("work.scan", layer=layer, workers=options.workers) as span:
        cells = shard_cells(layout, config.spec, layer, shard_side)
        shards = [anchors for _, anchors in cells]
        span.set(shards=len(shards))

        journal: Optional[ScanJournal] = None
        resumed: dict[int, _ShardRecord] = {}
        reused = 0
        geometry_hashes: list[str] = []
        if options.journal_dir is not None:
            journal = ScanJournal(options.journal_dir)
            fingerprint = scan_fingerprint(layout, layer, config, model, shard_side)
            base = scan_base_fingerprint(layer, config, model, shard_side)
            geometry_hashes = [
                shard_geometry_hash(
                    layout, layer, cell, shard_side, config.spec.clip_side
                )
                for cell, _ in cells
            ]
            if options.incremental:
                resumed = journal.begin_incremental(
                    fingerprint,
                    base,
                    list(zip((cell for cell, _ in cells), geometry_hashes)),
                    shard_side,
                )
                reused = len(resumed)
                _log.info(
                    "scan_incremental",
                    reused=reused,
                    of=len(shards),
                    directory=str(journal.directory),
                )
            else:
                resumed = journal.begin(
                    fingerprint,
                    len(shards),
                    shard_side,
                    resume=options.resume,
                    base=base,
                )
                if resumed:
                    _log.info(
                        "scan_resumed",
                        shards=len(resumed),
                        of=len(shards),
                        directory=str(journal.directory),
                    )

        completed: dict[int, _ShardRecord] = dict(resumed)
        parts: dict[int, list[dict]] = {}
        pending: dict[int, int] = {}
        shard_wall: dict[int, float] = {}
        poison_entries: dict[int, QuarantineReport] = {}
        tasks: list[PoolTask] = []
        for shard_id, anchors in enumerate(shards):
            if shard_id in completed:
                continue
            pending[shard_id] = 1
            parts[shard_id] = []
            shard_wall[shard_id] = 0.0
            tasks.append(
                PoolTask(
                    task_id=f"shard-{shard_id:04d}",
                    fn=_scan_shard_task,
                    payload=(shard_id, anchors),
                    group=shard_id,
                )
            )

        def finalize(shard_id: int) -> None:
            # Parent-side chaos point: an ``error`` plan aborts the run
            # between shard completions (journal keeps finished shards);
            # a ``kill`` plan SIGKILLs the whole parent, which is how
            # the CI chaos job produces a journal to resume.
            faults.inject("work.shard", shard=shard_id)
            shard_parts = parts.pop(shard_id)
            merged = sorted(
                (
                    (anchor, clip, margin)
                    for part in shard_parts
                    for anchor, clip, margin in zip(
                        part["anchors"], part["clips"], part["margins"]
                    )
                ),
                key=lambda item: item[0],
            )
            shard_quarantine = QuarantineReport()
            record = _ShardRecord(
                shard_id=shard_id,
                anchors=[item[0] for item in merged],
                margins=np.asarray([item[2] for item in merged], dtype=float),
                anchor_count=0,
                clips=[item[1] for item in merged],
                cell=cells[shard_id][0],
                geometry_sha=(
                    geometry_hashes[shard_id] if geometry_hashes else ""
                ),
            )
            for part in shard_parts:
                record.anchor_count += part["anchor_count"]
                record.rejected_density += part["rejected_density"]
                record.rejected_count += part["rejected_count"]
                record.rejected_boundary += part["rejected_boundary"]
                shard_quarantine.merge(part["quarantine"])
            poison = poison_entries.pop(shard_id, None)
            if poison is not None:
                shard_quarantine.merge(poison)
            record.quarantine = shard_quarantine.to_dict()
            record.wall_s = shard_wall.pop(shard_id, 0.0)
            completed[shard_id] = record
            if journal is not None:
                journal.record(record)
            tally("work.shard", record.wall_s)

        def on_result(task: PoolTask, result: dict, info: dict) -> None:
            shard_id = task.group
            parts[shard_id].append(result)
            shard_wall[shard_id] += info.get("wall_s", 0.0)
            pending[shard_id] -= 1
            if pending[shard_id] == 0:
                finalize(shard_id)

        def on_poison(task: PoolTask, error: BaseException) -> None:
            shard_id = task.group
            _, anchors = task.payload
            report = poison_entries.setdefault(shard_id, QuarantineReport())
            report.add(
                "PoisonTaskError",
                f"task {task.task_id} isolated by bisection: "
                f"{type(error).__name__}: {error}",
                source="work.poison",
                anchors=[list(a) for a in anchors],
                shard=shard_id,
            )
            pending[shard_id] -= 1
            if pending[shard_id] == 0:
                finalize(shard_id)

        def split(task: PoolTask) -> Optional[list[PoolTask]]:
            shard_id, anchors = task.payload
            if len(anchors) <= 1:
                return None  # atomic: the offending anchor is isolated
            half = len(anchors) // 2
            pending[shard_id] += 1  # one task becomes two
            return [
                PoolTask(
                    task_id=f"{task.task_id}/{side}",
                    fn=_scan_shard_task,
                    payload=(shard_id, chunk),
                    depth=task.depth + 1,
                    group=shard_id,
                )
                for side, chunk in enumerate((anchors[:half], anchors[half:]))
            ]

        if tasks:
            pool_config = options.pool or PoolConfig()
            if pool_config.workers != options.workers:
                from dataclasses import replace

                pool_config = replace(pool_config, workers=options.workers)
            pool = SupervisedPool(
                pool_config,
                init_fn=_scan_worker_init,
                init_args=(config, model, layout, layer, cache_dir),
            )
            stats = pool.run(
                tasks,
                split=split,
                on_result=on_result,
                on_poison=on_poison,
                stop_event=options.stop_event,
            )
        else:
            # Every shard came from the journal (a fully-unchanged
            # incremental rescan): nothing to spawn workers for.
            stats = PoolStats()
        span.set(
            restarts=stats.worker_restarts,
            poison=stats.poison_tasks,
            resumed=len(resumed) - reused,
            reused=reused,
        )

        if len(completed) < len(shards):
            raise ScanDrainedError(
                f"scan drained with {len(completed)}/{len(shards)} shards "
                "complete; rerun with --resume to finish"
            )

        result = _merge_shards(
            detector, layout, layer, shards, completed, resumed, quarantine, stats
        )
        result.shards_reused = reused
        result.shards_resumed = len(resumed) - reused
        # An incremental scan's journal IS the state the next incremental
        # run diffs against; clearing it would defeat the mode.
        if journal is not None and not (options.keep_journal or options.incremental):
            journal.clear()
        return result


def _merge_shards(
    detector,
    layout,
    layer: int,
    shards: list,
    completed: dict[int, _ShardRecord],
    resumed: dict[int, _ShardRecord],
    quarantine: Optional[QuarantineReport],
    stats: PoolStats,
) -> ScanResult:
    """Merge shard records into the global (anchor-sorted) candidate list."""
    spec = detector.config.spec
    triples: list[tuple[tuple[int, int], Clip, float]] = []
    anchor_count = 0
    rejected = [0, 0, 0]
    quarantined = 0
    for shard_id in range(len(shards)):
        record = completed[shard_id]
        anchor_count += record.anchor_count
        rejected[0] += record.rejected_density
        rejected[1] += record.rejected_count
        rejected[2] += record.rejected_boundary
        if record.quarantine:
            shard_quarantine = QuarantineReport.from_dict(record.quarantine)
            quarantined += shard_quarantine.total
            if quarantine is not None:
                quarantine.merge(shard_quarantine)
        clips = record.clips
        if clips is None:
            # Journal-resumed shard: re-cut the candidates from the full
            # layout — deterministic, so identical to the original clips.
            clips = [
                layout.cut_clip_at_core(
                    spec, Rect(x, y, x + spec.core_side, y + spec.core_side), layer
                )
                for x, y in record.anchors
            ]
        triples.extend(zip(record.anchors, clips, record.margins))
    triples.sort(key=lambda item: item[0])
    return ScanResult(
        clips=[clip for _, clip, _ in triples],
        margins=np.asarray([margin for _, _, margin in triples], dtype=float),
        anchor_count=anchor_count,
        rejected_density=rejected[0],
        rejected_count=rejected[1],
        rejected_boundary=rejected[2],
        quarantined=quarantined,
        stats=stats,
        shards_total=len(shards),
        shards_resumed=len(resumed),
    )
