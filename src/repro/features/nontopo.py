"""The five nontopological (lithography-process-related) features.

Fig. 7(e) defines them for a pattern window:

1. number of corners (convex plus concave),
2. number of touched points,
3. minimum distance between internally facing edges (minimum width),
4. minimum distance between externally facing edges (minimum spacing),
5. polygon density.

The pipeline sees dissected rectangles, so corners/touch points are
computed on the *union* geometry via quadrant-coverage classification:
around each candidate lattice vertex the four surrounding unit cells are
tested for coverage; one covered cell is a convex corner, three a concave
corner, and two diagonally opposite cells a touched point.  Minimum width
and spacing come from the maximal tilings, which is exactly how the
corresponding internal/external features measure them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.geometry.grid import window_density
from repro.geometry.rect import Rect
from repro.mtcg.tiles import Tiling, horizontal_tiling, vertical_tiling


@dataclass(frozen=True)
class NonTopoFeatures:
    """The five nontopological features of one pattern window.

    ``min_internal`` / ``min_external`` fall back to the window side when
    the pattern has no material or no facing pair — a neutral "nothing
    critical here" value that keeps vectors numeric.
    """

    corner_count: int
    touch_count: int
    min_internal: int
    min_external: int
    density: float

    def as_list(self) -> list[float]:
        return [
            float(self.corner_count),
            float(self.touch_count),
            float(self.min_internal),
            float(self.min_external),
            self.density,
        ]


#: Number of numeric slots the nontopological block occupies in a vector.
NONTOPO_SLOTS = 5


def _quadrant_coverage(rects: Sequence[Rect], x: int, y: int) -> tuple[bool, ...]:
    """Coverage of the four unit cells around lattice vertex ``(x, y)``.

    Order: (SW, SE, NW, NE).  A cell is covered when any rectangle contains
    it; cells are unit-sized probes, valid because all geometry is on the
    integer lattice.
    """

    def covered(cx: int, cy: int) -> bool:
        return any(r.x0 <= cx < r.x1 and r.y0 <= cy < r.y1 for r in rects)

    return (covered(x - 1, y - 1), covered(x, y - 1), covered(x - 1, y), covered(x, y))


def corner_and_touch_counts(rects: Sequence[Rect], window: Optional[Rect] = None) -> tuple[int, int]:
    """Corner count and touched-point count of the rectangle union.

    Only vertices strictly inside ``window`` (when given) are counted, so
    window clipping does not manufacture corners at the clip boundary.
    """
    candidates: set[tuple[int, int]] = set()
    for rect in rects:
        candidates.update(
            ((rect.x0, rect.y0), (rect.x1, rect.y0), (rect.x0, rect.y1), (rect.x1, rect.y1))
        )
    corners = 0
    touches = 0
    for x, y in candidates:
        if window is not None and not (
            window.x0 < x < window.x1 and window.y0 < y < window.y1
        ):
            continue
        sw, se, nw, ne = _quadrant_coverage(rects, x, y)
        count = sum((sw, se, nw, ne))
        if count in (1, 3):
            corners += 1
        elif count == 2 and sw == ne and se == nw and sw != se:
            # Two diagonally opposite cells covered: polygons touch at a point.
            touches += 1
    return corners, touches


def min_width_from_tilings(
    h_tiling: Tiling, v_tiling: Tiling, default: int
) -> int:
    """Minimum material width: narrowest block strip in either tiling."""
    widths = [t.rect.width for t in h_tiling.blocks()]
    heights = [t.rect.height for t in v_tiling.blocks()]
    values = widths + heights
    return min(values) if values else default


def min_spacing_from_tilings(
    h_tiling: Tiling, v_tiling: Tiling, default: int
) -> int:
    """Minimum spacing: narrowest space strip strictly between blocks.

    A space tile bounded by blocks on both sides along the tiling axis
    measures a facing-edge gap; boundary strips do not count.
    """

    def between_blocks(tiling: Tiling, horizontal: bool) -> list[int]:
        blocks = [t.rect for t in tiling.blocks()]
        gaps: list[int] = []
        for tile in tiling.spaces():
            s = tile.rect
            if horizontal:
                left = any(b.x1 == s.x0 and min(b.y1, s.y1) > max(b.y0, s.y0) for b in blocks)
                right = any(b.x0 == s.x1 and min(b.y1, s.y1) > max(b.y0, s.y0) for b in blocks)
                if left and right:
                    gaps.append(s.width)
            else:
                below = any(b.y1 == s.y0 and min(b.x1, s.x1) > max(b.x0, s.x0) for b in blocks)
                above = any(b.y0 == s.y1 and min(b.x1, s.x1) > max(b.x0, s.x0) for b in blocks)
                if below and above:
                    gaps.append(s.height)
        return gaps

    values = between_blocks(h_tiling, True) + between_blocks(v_tiling, False)
    return min(values) if values else default


def extract_nontopo_features(
    rects: Sequence[Rect], window: Rect, *, compute: str = "exact"
) -> NonTopoFeatures:
    """Compute all five nontopological features for a pattern window.

    ``compute="fast"`` uses the vectorized quadrant probes and tiling
    sweeps of :mod:`repro.mtcg.fastscan`; all five values are integer or
    exactly-derived, so the two modes agree bit for bit.
    """
    fast = compute == "fast"
    clipped = [r for r in (rect.intersection(window) for rect in rects) if r]
    if fast:
        from repro.mtcg.fastscan import corner_and_touch_counts as _fast_counts

        corners, touches = _fast_counts(clipped, window)
    else:
        corners, touches = corner_and_touch_counts(clipped, window)
    h_tiling = horizontal_tiling(clipped, window, fast=fast)
    v_tiling = vertical_tiling(clipped, window, fast=fast)
    default = max(window.width, window.height)
    return NonTopoFeatures(
        corner_count=corners,
        touch_count=touches,
        min_internal=min_width_from_tilings(h_tiling, v_tiling, default),
        min_external=min_spacing_from_tilings(h_tiling, v_tiling, default),
        density=window_density(clipped, window),
    )
