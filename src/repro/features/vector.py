"""Feature vectorization: clips -> fixed-length numeric vectors.

The SVM kernels consume fixed-length vectors, while Section III-C's
extraction yields a variable set of rule rectangles.  Topological
classification guarantees members of one cluster share a topology and
hence (modulo window-boundary effects) a feature census, so each cluster
carries a :class:`FeatureSchema` — the per-type rule-rectangle counts all
member vectors are padded/truncated to.

Patterns are first rotated to a canonical D8 orientation so congruent
patterns vectorize identically; the paper instead stores eight oriented
feature sets per pattern — canonicalisation is the storage-free equivalent
(both make matching orientation-blind).

An optional pixel-density block can be appended to the vector.  It is NOT
part of the paper's feature set (the paper's features are the rule
rectangles plus the five nontopological values); it is provided for the
ablation bench that isolates the value of the critical features, and is
disabled by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import FeatureError
from repro.features.nontopo import NONTOPO_SLOTS, NonTopoFeatures, extract_nontopo_features
from repro.mtcg.rules import RULE_RECT_SLOTS, FeatureType, RuleRect
from repro.geometry.rect import Rect
from repro.geometry.transform import canonical_form
from repro.layout.clip import Clip
from repro.mtcg.features import extract_topological_features
from repro.obs import trace

#: Fixed serialisation order of the four feature types inside a vector.
TYPE_ORDER: tuple[FeatureType, ...] = (
    FeatureType.INTERNAL,
    FeatureType.EXTERNAL,
    FeatureType.DIAGONAL,
    FeatureType.SEGMENT,
)


@dataclass(frozen=True)
class FeatureConfig:
    """Extraction settings shared by a detector instance.

    ``region`` selects which window the features describe: ``"core"``
    (normal kernels), ``"clip"`` (the whole window), or ``"context"`` —
    the core expanded by ``context_margin`` per side, the inner ambit
    ring where lithographic crowding acts.  The feedback kernel uses
    ``"context"``: the Fig. 10 signal (ambit geometry deciding an
    otherwise-identical core) lives there, while the outer ambit is
    mostly unrelated routing that would drown it.  ``diagonal_max_gap``
    bounds diagonal-feature search distance in DBU.
    """

    region: str = "core"
    context_margin: int = 900
    diagonal_max_gap: Optional[int] = 600
    include_density_grid: bool = False
    density_resolution: int = 12
    canonical_orientation: bool = True
    #: ``"exact"`` (the oracle: per-row SVM margins, scalar sweeps) or
    #: ``"fast"`` (blocked-GEMM margins + vectorized sweeps).  Feature
    #: extraction is integer geometry and stays bit-identical between
    #: modes; only the SVM margins drift, bounded by
    #: :data:`repro.svm.fastpath.MAX_ULP_DRIFT` scale-ulps.
    compute: str = "exact"

    def __post_init__(self) -> None:
        if self.region not in ("core", "clip", "context"):
            raise FeatureError(
                f"region must be 'core', 'clip' or 'context', got {self.region!r}"
            )
        if self.context_margin < 0:
            raise FeatureError("context_margin must be non-negative")
        if self.density_resolution <= 0:
            raise FeatureError("density_resolution must be positive")
        if self.compute not in ("exact", "fast"):
            raise FeatureError(
                f"compute must be 'exact' or 'fast', got {self.compute!r}"
            )


@dataclass(frozen=True)
class ExtractedFeatures:
    """Raw extraction result for one clip, before schema alignment."""

    rules: tuple[RuleRect, ...]
    nontopo: NonTopoFeatures
    grid: Optional[np.ndarray]

    def count_of(self, feature_type: FeatureType) -> int:
        return sum(1 for rule in self.rules if rule.feature_type is feature_type)


@dataclass
class FeatureSchema:
    """Per-cluster feature census: how many rule rects of each type.

    ``counts`` maps each :class:`FeatureType` to the slot count reserved in
    the vector.  Vectors with fewer features are zero-padded; vectors with
    more are truncated in canonical sort order.
    """

    counts: dict[FeatureType, int] = field(default_factory=dict)

    @staticmethod
    def from_extractions(extractions: Sequence[ExtractedFeatures]) -> "FeatureSchema":
        """Schema sized to the per-type maximum over a pattern population."""
        counts = {ftype: 0 for ftype in TYPE_ORDER}
        for extraction in extractions:
            for ftype in TYPE_ORDER:
                counts[ftype] = max(counts[ftype], extraction.count_of(ftype))
        return FeatureSchema(counts)

    def rule_slots(self) -> int:
        return sum(self.counts.get(ftype, 0) for ftype in TYPE_ORDER) * RULE_RECT_SLOTS

    def vector_length(self, config: FeatureConfig) -> int:
        length = self.rule_slots() + NONTOPO_SLOTS
        if config.include_density_grid:
            length += config.density_resolution**2
        return length


class FeatureExtractor:
    """Extracts and vectorizes clip features under one configuration.

    ``cache`` (a :class:`repro.cache.HotspotCache`, attached via
    :class:`~repro.core.detector.HotspotDetector.attach_cache` or set
    directly) memoizes :meth:`extract` by clip geometry content — the
    MTCG tiling sweep is the per-clip hot spot, and identical geometry
    yields identical features.  The cache is shared mutable state and is
    dropped on pickling (scan workers run cold).
    """

    def __init__(self, config: FeatureConfig = FeatureConfig()):
        self.config = config
        self.cache = None
        self._cache_ids: Optional[tuple[str, bool]] = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["cache"] = None
        state["_cache_ids"] = None
        return state

    def _cache_identity(self) -> tuple[str, bool]:
        """(config fingerprint, use-D8-keys) — computed once per extractor.

        Hot paths always use translation-invariant raw keys: they are
        sound for every config (D8-canonical keys are only sound under
        Theorem 1 configs, see :func:`repro.cache.keys.cache_canonical`)
        and cost ~50x less to compute than the extraction they memoize.
        """
        if self._cache_ids is None:
            from repro.cache.keys import feature_fingerprint

            self._cache_ids = (feature_fingerprint(self.config), False)
        return self._cache_ids

    # ------------------------------------------------------------------
    def _region_of(self, clip: Clip) -> tuple[list[Rect], Rect]:
        if self.config.region == "core":
            return clip.core_rects(), clip.core
        if self.config.region == "context":
            margin = min(self.config.context_margin, clip.spec.ambit_margin)
            window = clip.core.expanded(margin)
            rects = [
                r for r in (rect.intersection(window) for rect in clip.rects) if r
            ]
            return rects, window
        return list(clip.rects), clip.window

    def extract(self, clip: Clip) -> ExtractedFeatures:
        """Raw features of one clip (canonically oriented when configured)."""
        if self.cache is not None:
            from repro.cache.keys import clip_content_key

            fingerprint, canonical = self._cache_identity()
            key = clip_content_key(clip, canonical=canonical)
            cached = self.cache.get_features(fingerprint, key)
            if cached is not None:
                return cached
            features = self._extract_uncached(clip)
            self.cache.put_features(fingerprint, key, features)
            return features
        return self._extract_uncached(clip)

    def _extract_uncached(self, clip: Clip) -> ExtractedFeatures:
        compute = self.config.compute
        rects, window = self._region_of(clip)
        if self.config.canonical_orientation and rects:
            _, rects = canonical_form(rects, window)
        rules = tuple(
            extract_topological_features(
                rects,
                window,
                diagonal_max_gap=self.config.diagonal_max_gap,
                compute=compute,
            )
        )
        nontopo = extract_nontopo_features(rects, window, compute=compute)
        grid: Optional[np.ndarray] = None
        if self.config.include_density_grid:
            resolution = self.config.density_resolution
            if compute == "fast":
                # Same rect sets the Clip convenience methods render,
                # through the vectorized (bit-identical) renderer.
                from repro.geometry.grid import density_grid_fast as _grid

                if self.config.region == "core":
                    grid = _grid(clip.core_rects(), clip.core, resolution)
                elif self.config.region == "context":
                    grid = _grid(rects, window, resolution)
                else:
                    grid = _grid(clip.rects, clip.window, resolution)
            elif self.config.region == "core":
                grid = clip.core_density_grid(resolution)
            elif self.config.region == "context":
                from repro.geometry.grid import density_grid as _density_grid

                grid = _density_grid(rects, window, resolution)
            else:
                grid = clip.clip_density_grid(resolution)
        return ExtractedFeatures(rules, nontopo, grid)

    # ------------------------------------------------------------------
    def vectorize(self, extraction: ExtractedFeatures, schema: FeatureSchema) -> np.ndarray:
        """Align one extraction to a schema and emit the numeric vector."""
        parts: list[float] = []
        for ftype in TYPE_ORDER:
            slots = schema.counts.get(ftype, 0)
            rules = sorted(r for r in extraction.rules if r.feature_type is ftype)
            for i in range(slots):
                if i < len(rules):
                    parts.extend(float(v) for v in rules[i].as_tuple())
                else:
                    parts.extend([0.0] * RULE_RECT_SLOTS)
        parts.extend(extraction.nontopo.as_list())
        vector = np.array(parts, dtype=np.float64)
        if self.config.include_density_grid:
            if extraction.grid is None:
                raise FeatureError("schema expects a density grid but none was extracted")
            vector = np.concatenate([vector, extraction.grid.ravel()])
        return vector

    def vectorize_clip(self, clip: Clip, schema: FeatureSchema) -> np.ndarray:
        """Convenience: extract then vectorize one clip."""
        return self.vectorize(self.extract(clip), schema)

    def build_matrix(
        self, clips: Sequence[Clip], schema: Optional[FeatureSchema] = None
    ) -> tuple[np.ndarray, FeatureSchema]:
        """Extract a population into an ``(n, d)`` matrix plus its schema.

        When ``schema`` is omitted it is derived from the population itself
        (per-type maximum counts).
        """
        with trace("features.build_matrix", clips=len(clips)) as span:
            extractions = [self.extract(clip) for clip in clips]
            if schema is None:
                schema = FeatureSchema.from_extractions(extractions)
            span.set(vector_length=schema.vector_length(self.config))
            if not clips:
                return np.zeros((0, schema.vector_length(self.config))), schema
            rows = [self.vectorize(extraction, schema) for extraction in extractions]
            return np.vstack(rows), schema
