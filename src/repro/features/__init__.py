"""Critical-feature pipeline: rule rectangles, nontopological features,
fixed-length vectorization."""

from repro.mtcg.rules import RULE_RECT_SLOTS, FeatureType, RuleRect
from repro.features.nontopo import (
    NONTOPO_SLOTS,
    NonTopoFeatures,
    corner_and_touch_counts,
    extract_nontopo_features,
)
from repro.features.vector import (
    TYPE_ORDER,
    ExtractedFeatures,
    FeatureConfig,
    FeatureExtractor,
    FeatureSchema,
)

__all__ = [
    "FeatureType",
    "RuleRect",
    "RULE_RECT_SLOTS",
    "NonTopoFeatures",
    "NONTOPO_SLOTS",
    "corner_and_touch_counts",
    "extract_nontopo_features",
    "TYPE_ORDER",
    "ExtractedFeatures",
    "FeatureConfig",
    "FeatureExtractor",
    "FeatureSchema",
]
