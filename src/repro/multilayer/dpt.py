"""Double (multiple) patterning support (Section IV-B).

Below ~80 nm pitch a single mask cannot print adjacent features, so the
layer is *decomposed* onto two masks.  Features closer than the same-mask
spacing threshold must land on different masks; the decomposition is a
2-colouring of the conflict graph, and odd cycles are native conflicts.

The paper's extension assumes the decomposition is given (by the foundry
or a decomposer); hotspot features are then extracted three ways — from
mask 1, from mask 2, and from the combined pattern — with mask marks on
the per-mask rules.  This module provides the decomposer (the substrate
the paper assumes) plus the three-set feature extraction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import FeatureError
from repro.features.vector import FeatureConfig, FeatureExtractor, FeatureSchema
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel


@dataclass
class Decomposition:
    """A two-mask colouring of a rectangle set."""

    mask1: list[Rect]
    mask2: list[Rect]
    conflicts: list[tuple[Rect, Rect]]

    @property
    def is_clean(self) -> bool:
        """True when no native (odd-cycle) conflicts remain."""
        return not self.conflicts


def _facing_gap(a: Rect, b: Rect) -> Optional[int]:
    """Face-to-face gap between two rectangles, ``None`` if not facing."""
    if a.overlaps(b):
        return 0
    x_overlap = min(a.x1, b.x1) > max(a.x0, b.x0)
    y_overlap = min(a.y1, b.y1) > max(a.y0, b.y0)
    if y_overlap and not x_overlap:
        return a.gap_x(b)
    if x_overlap and not y_overlap:
        return a.gap_y(b)
    return None


def decompose(rects: Sequence[Rect], min_same_mask_spacing: int) -> Decomposition:
    """Greedy BFS 2-colouring of the spacing-conflict graph.

    Two rectangles conflict when they face each other closer than
    ``min_same_mask_spacing``; conflicting rectangles go on different
    masks.  When an odd cycle forces two conflicting rectangles onto the
    same mask, the pair is recorded as a native conflict (the seed of the
    Fig. 14 misalignment hotspots).
    """
    rects = list(rects)
    n = len(rects)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            gap = _facing_gap(rects[i], rects[j])
            if gap is not None and gap < min_same_mask_spacing:
                adjacency[i].append(j)
                adjacency[j].append(i)

    colors: list[Optional[int]] = [None] * n
    conflicts: list[tuple[Rect, Rect]] = []
    for start in range(n):
        if colors[start] is not None:
            continue
        colors[start] = 0
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in adjacency[node]:
                if colors[neighbor] is None:
                    colors[neighbor] = 1 - colors[node]
                    queue.append(neighbor)
                elif colors[neighbor] == colors[node]:
                    conflicts.append((rects[node], rects[neighbor]))
    mask1 = [rects[i] for i in range(n) if colors[i] == 0]
    mask2 = [rects[i] for i in range(n) if colors[i] == 1]
    return Decomposition(mask1, mask2, conflicts)


@dataclass
class DptSchema:
    """Aligned schemas for the three Section IV-B feature sets."""

    mask1: FeatureSchema
    mask2: FeatureSchema
    combined: FeatureSchema


class DptFeatureExtractor:
    """Three-set feature extraction for decomposed patterns (Fig. 14(b)).

    Each clip is decomposed, then features are extracted from the mask-1
    pattern, the mask-2 pattern, and the original combined pattern; the
    vector is their concatenation.  The per-mask blocks carry the "mask
    marks" implicitly by position.
    """

    def __init__(
        self,
        min_same_mask_spacing: int = 100,
        config: FeatureConfig = FeatureConfig(),
    ):
        if min_same_mask_spacing <= 0:
            raise FeatureError("min_same_mask_spacing must be positive")
        self.min_same_mask_spacing = min_same_mask_spacing
        self.config = config
        self._single = FeatureExtractor(config)

    def decompose_clip(self, clip: Clip) -> Decomposition:
        """Decompose a clip's full-window geometry."""
        return decompose(list(clip.rects), self.min_same_mask_spacing)

    def _mask_clip(self, clip: Clip, rects: Sequence[Rect]) -> Clip:
        return Clip.build(clip.window, clip.spec, rects, clip.label, clip.layer)

    def extract(self, clip: Clip) -> tuple:
        """The (mask1, mask2, combined) extraction triple of one clip."""
        decomposition = self.decompose_clip(clip)
        return (
            self._single.extract(self._mask_clip(clip, decomposition.mask1)),
            self._single.extract(self._mask_clip(clip, decomposition.mask2)),
            self._single.extract(clip),
        )

    def build_matrix(
        self, clips: Sequence[Clip], schema: Optional[DptSchema] = None
    ) -> tuple[np.ndarray, DptSchema]:
        """Vectorize a clip population into the three-block DPT matrix."""
        if not clips:
            raise FeatureError("DPT matrix needs at least one clip")
        triples = [self.extract(clip) for clip in clips]
        if schema is None:
            schema = DptSchema(
                mask1=FeatureSchema.from_extractions([t[0] for t in triples]),
                mask2=FeatureSchema.from_extractions([t[1] for t in triples]),
                combined=FeatureSchema.from_extractions([t[2] for t in triples]),
            )
        rows = []
        for mask1, mask2, combined in triples:
            rows.append(
                np.concatenate(
                    [
                        self._single.vectorize(mask1, schema.mask1),
                        self._single.vectorize(mask2, schema.mask2),
                        self._single.vectorize(combined, schema.combined),
                    ]
                )
            )
        return np.vstack(rows), schema

    def vectorize_clip(self, clip: Clip, schema: DptSchema) -> np.ndarray:
        mask1, mask2, combined = self.extract(clip)
        return np.concatenate(
            [
                self._single.vectorize(mask1, schema.mask1),
                self._single.vectorize(mask2, schema.mask2),
                self._single.vectorize(combined, schema.combined),
            ]
        )
