"""Section IV extensions: multilayer detection and double patterning."""

from repro.multilayer.features import (
    OVERLAP_TYPES,
    MultiLayerClip,
    MultiLayerFeatureExtractor,
    MultiLayerSchema,
)
from repro.multilayer.dpt import (
    Decomposition,
    DptFeatureExtractor,
    DptSchema,
    decompose,
)
from repro.multilayer.detector import (
    DptDetector,
    DptKernel,
    MultiLayerDetector,
    MultiLayerKernel,
)

__all__ = [
    "MultiLayerClip",
    "MultiLayerFeatureExtractor",
    "MultiLayerSchema",
    "OVERLAP_TYPES",
    "Decomposition",
    "decompose",
    "DptFeatureExtractor",
    "DptSchema",
    "MultiLayerDetector",
    "MultiLayerKernel",
    "DptDetector",
    "DptKernel",
]
