"""Multilayer clips and feature extraction (Section IV-A).

In a real design hotspots can be formed by patterns on multiple metal
layers.  The paper's extension: topological classification runs on one
selected layer; for each training pattern the feature set is

- one full feature set per metal layer (m sets), plus
- one reduced feature set per adjacent layer pair, extracted from the
  *overlapped* polygons of the two layers (m-1 sets) — only diagonal and
  internal features are taken from overlaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.errors import FeatureError, LayoutError
from repro.features.vector import (
    ExtractedFeatures,
    FeatureConfig,
    FeatureExtractor,
    FeatureSchema,
)
from repro.mtcg.rules import FeatureType
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel, ClipSpec


@dataclass(frozen=True)
class MultiLayerClip:
    """A clip window carrying geometry on several metal layers."""

    window: Rect
    spec: ClipSpec
    layer_rects: tuple[tuple[int, tuple[Rect, ...]], ...]
    label: ClipLabel = ClipLabel.UNKNOWN

    @staticmethod
    def build(
        window: Rect,
        spec: ClipSpec,
        layers: dict[int, Sequence[Rect]],
        label: ClipLabel = ClipLabel.UNKNOWN,
    ) -> "MultiLayerClip":
        if not layers:
            raise LayoutError("multilayer clip needs at least one layer")
        packed = tuple(
            (number, tuple(sorted(
                r for r in (rect.intersection(window) for rect in rects) if r
            )))
            for number, rects in sorted(layers.items())
        )
        return MultiLayerClip(window, spec, packed, label)

    @property
    def core(self) -> Rect:
        """The centred core window (as for single-layer clips)."""
        return self.spec.core_of(self.window)

    @property
    def layers(self) -> list[int]:
        return [number for number, _rects in self.layer_rects]

    def rects_on(self, layer: int) -> tuple[Rect, ...]:
        for number, rects in self.layer_rects:
            if number == layer:
                return rects
        raise LayoutError(f"multilayer clip has no layer {layer}")

    def layer_clip(self, layer: int) -> Clip:
        """The single-layer clip view of one metal layer."""
        return Clip.build(
            self.window, self.spec, self.rects_on(layer), self.label, layer
        )

    def overlap_rects(self, lower: int, upper: int) -> list[Rect]:
        """Pairwise intersections of two layers' geometry.

        These are the "overlapped polygons of adjacent metal layers" of
        Fig. 13 — physically, the via candidate regions.
        """
        out: list[Rect] = []
        for a in self.rects_on(lower):
            for b in self.rects_on(upper):
                overlap = a.intersection(b)
                if overlap is not None:
                    out.append(overlap)
        return sorted(out)

    def with_label(self, label: ClipLabel) -> "MultiLayerClip":
        return replace(self, label=label)


#: Feature types retained for overlap regions (Section IV-A: "only
#: diagonal and internal features are extracted from the overlapped
#: polygons").
OVERLAP_TYPES = (FeatureType.INTERNAL, FeatureType.DIAGONAL)


@dataclass
class MultiLayerSchema:
    """Aligned schemas for each per-layer and per-overlap feature block."""

    layer_schemas: dict[int, FeatureSchema] = field(default_factory=dict)
    overlap_schemas: dict[tuple[int, int], FeatureSchema] = field(default_factory=dict)


class MultiLayerFeatureExtractor:
    """Extracts the Section IV-A feature stack from multilayer clips."""

    def __init__(self, config: FeatureConfig = FeatureConfig()):
        self.config = config
        self._single = FeatureExtractor(config)

    # ------------------------------------------------------------------
    def _overlap_extraction(
        self, clip: MultiLayerClip, lower: int, upper: int
    ) -> ExtractedFeatures:
        overlap_clip = Clip.build(
            clip.window, clip.spec, clip.overlap_rects(lower, upper), clip.label
        )
        extraction = self._single.extract(overlap_clip)
        kept = tuple(
            rule for rule in extraction.rules if rule.feature_type in OVERLAP_TYPES
        )
        return ExtractedFeatures(kept, extraction.nontopo, extraction.grid)

    def extract(self, clip: MultiLayerClip) -> dict:
        """All extraction blocks of one clip, keyed by layer / layer pair."""
        blocks: dict = {}
        layers = clip.layers
        for layer in layers:
            blocks[layer] = self._single.extract(clip.layer_clip(layer))
        for lower, upper in zip(layers, layers[1:]):
            blocks[(lower, upper)] = self._overlap_extraction(clip, lower, upper)
        return blocks

    # ------------------------------------------------------------------
    def build_matrix(
        self,
        clips: Sequence[MultiLayerClip],
        schema: Optional[MultiLayerSchema] = None,
    ) -> tuple[np.ndarray, MultiLayerSchema]:
        """Vectorize a multilayer population into one matrix.

        The vector is the concatenation of per-layer blocks (in layer
        order) followed by per-adjacent-pair overlap blocks.
        """
        if not clips:
            raise FeatureError("multilayer matrix needs at least one clip")
        layers = clips[0].layers
        for clip in clips:
            if clip.layers != layers:
                raise FeatureError("all multilayer clips must share a layer stack")

        extractions = [self.extract(clip) for clip in clips]
        if schema is None:
            schema = MultiLayerSchema()
            for layer in layers:
                schema.layer_schemas[layer] = FeatureSchema.from_extractions(
                    [e[layer] for e in extractions]
                )
            for pair in zip(layers, layers[1:]):
                schema.overlap_schemas[pair] = FeatureSchema.from_extractions(
                    [e[pair] for e in extractions]
                )

        rows = []
        for extraction in extractions:
            parts = [
                self._single.vectorize(extraction[layer], schema.layer_schemas[layer])
                for layer in layers
            ]
            parts.extend(
                self._single.vectorize(extraction[pair], schema.overlap_schemas[pair])
                for pair in zip(layers, layers[1:])
            )
            rows.append(np.concatenate(parts))
        return np.vstack(rows), schema

    def vectorize_clip(
        self, clip: MultiLayerClip, schema: MultiLayerSchema
    ) -> np.ndarray:
        """Vectorize one clip against an existing schema."""
        extraction = self.extract(clip)
        layers = clip.layers
        parts = [
            self._single.vectorize(extraction[layer], schema.layer_schemas[layer])
            for layer in layers
        ]
        parts.extend(
            self._single.vectorize(extraction[pair], schema.overlap_schemas[pair])
            for pair in zip(layers, layers[1:])
        )
        return np.concatenate(parts)
