"""Multilayer and double-patterning hotspot detectors (Section IV).

Both detectors reuse the single-layer machinery — topological
classification on one selected layer, per-cluster kernels with iterative
self-training, topological gating — but swap the feature vectorization
for the extended stacks of Sections IV-A and IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.resample import shift_derivatives
from repro.core.training import HOTSPOT, NON_HOTSPOT
from repro.errors import NotFittedError, SvmError
from repro.layout.clip import Clip, ClipLabel
from repro.multilayer.dpt import DptFeatureExtractor, DptSchema
from repro.multilayer.features import (
    MultiLayerClip,
    MultiLayerFeatureExtractor,
    MultiLayerSchema,
)
from repro.svm.grid_search import IterativeConfig, train_iterative
from repro.svm.model import SupportVectorClassifier
from repro.topology.cluster import TopologicalClassifier
from repro.topology.strings import canonical_string_key


def _iterative_config(config: DetectorConfig) -> IterativeConfig:
    svm = config.svm
    return IterativeConfig(
        initial_c=svm.initial_c,
        initial_gamma=svm.initial_gamma,
        target_accuracy=svm.target_accuracy,
        max_rounds=svm.max_rounds,
        class_weight=svm.class_weight,
        kernel=svm.kernel,
        far_field_floor=svm.far_field_floor,
    )


@dataclass
class MultiLayerKernel:
    """One per-cluster kernel over the multilayer feature stack."""

    schema: MultiLayerSchema
    model: SupportVectorClassifier
    key_set: frozenset


@dataclass
class MultiLayerDetector:
    """Section IV-A: hotspot detection over stacked metal layers.

    Topological classification (and gating) runs on ``classify_layer``;
    kernels see the concatenated per-layer + overlap feature vectors.
    """

    config: DetectorConfig = field(default_factory=DetectorConfig)
    classify_layer: Optional[int] = None
    kernels_: list[MultiLayerKernel] = field(default_factory=list, repr=False)
    extractor_: Optional[MultiLayerFeatureExtractor] = field(default=None, repr=False)

    def _classify_key(self, clip: MultiLayerClip) -> tuple:
        layer = self.classify_layer if self.classify_layer is not None else clip.layers[0]
        view = clip.layer_clip(layer)
        return canonical_string_key(view.core_rects(), view.core)

    def _derivatives(self, clip: MultiLayerClip) -> list[MultiLayerClip]:
        """Shift derivatives of every layer in lockstep."""
        amount = self.config.shift_amount
        if amount == 0:
            return [clip]
        out = []
        for dx, dy in ((0, 0), (0, amount), (0, -amount), (amount, 0), (-amount, 0)):
            moved_window = clip.window.translated(-dx, -dy)
            layers = {
                number: rects for number, rects in clip.layer_rects
            }
            out.append(
                MultiLayerClip.build(moved_window, clip.spec, layers, clip.label)
            )
        return out

    # ------------------------------------------------------------------
    def fit(self, clips: Sequence[MultiLayerClip]) -> int:
        """Train per-cluster kernels; returns the kernel count."""
        hotspots = [c for c in clips if c.label is ClipLabel.HOTSPOT]
        non_hotspots = [c for c in clips if c.label is ClipLabel.NON_HOTSPOT]
        if not hotspots or not non_hotspots:
            raise SvmError("multilayer training needs both classes")
        self.extractor_ = MultiLayerFeatureExtractor(self.config.features)

        classifier = TopologicalClassifier(self.config.classifier)
        layer = self.classify_layer if self.classify_layer is not None else hotspots[0].layers[0]
        clusters = classifier.classify([c.layer_clip(layer) for c in hotspots])

        self.kernels_ = []
        for cluster in clusters:
            members = [hotspots[i] for i in cluster.members]
            expanded: list[MultiLayerClip] = []
            for member in members:
                expanded.extend(self._derivatives(member))
            train_clips = expanded + list(non_hotspots)
            labels = np.array(
                [HOTSPOT] * len(expanded) + [NON_HOTSPOT] * len(non_hotspots)
            )
            matrix, schema = self.extractor_.build_matrix(train_clips)
            result = train_iterative(matrix, labels, _iterative_config(self.config))
            key_set = frozenset(self._classify_key(clip) for clip in expanded)
            self.kernels_.append(MultiLayerKernel(schema, result.model, key_set))
        return len(self.kernels_)

    def margins(self, clips: Sequence[MultiLayerClip]) -> np.ndarray:
        """Best kernel margin per clip (gated, as in the base detector)."""
        if self.extractor_ is None:
            raise NotFittedError("MultiLayerDetector used before fit()")
        out = np.full(len(clips), -1e9)
        keys = [self._classify_key(clip) for clip in clips]
        for kernel in self.kernels_:
            for i, clip in enumerate(clips):
                if keys[i] not in kernel.key_set:
                    continue
                vector = self.extractor_.vectorize_clip(clip, kernel.schema)
                out[i] = max(out[i], float(kernel.model.decision_function(vector)))
        return out

    def predict(
        self, clips: Sequence[MultiLayerClip], threshold: Optional[float] = None
    ) -> np.ndarray:
        threshold = (
            self.config.decision_threshold if threshold is None else threshold
        )
        return self.margins(clips) >= threshold

    def detect(
        self,
        layout,
        layers: Optional[Sequence[int]] = None,
        threshold: Optional[float] = None,
    ) -> list[MultiLayerClip]:
        """Scan a multi-layer :class:`~repro.layout.layout.Layout`.

        Candidate windows come from density-driven extraction on the
        classification layer (Section IV-A: "we do our extraction on the
        same layer as topological classification"); each candidate is
        assembled into a multilayer clip from all requested layers and
        judged by the gated kernels.  Returns the flagged clips.
        """
        from repro.core.extraction import extract_candidate_clips

        layers = list(layers) if layers is not None else layout.layer_numbers()
        classify = (
            self.classify_layer if self.classify_layer is not None else layers[0]
        )
        extraction = extract_candidate_clips(
            layout, self.config.spec, self.config.extraction, classify
        )
        candidates = []
        for clip in extraction.clips:
            stack = {
                layer: layout.rects_in_window(layer, clip.window)
                for layer in layers
                if layer in layout.layer_numbers()
            }
            candidates.append(
                MultiLayerClip.build(clip.window, self.config.spec, stack)
            )
        if not candidates:
            return []
        flags = self.predict(candidates, threshold)
        return [
            clip.with_label(ClipLabel.HOTSPOT)
            for clip, flagged in zip(candidates, flags)
            if flagged
        ]


@dataclass
class DptKernel:
    """One per-cluster kernel over the three-mask DPT feature stack."""

    schema: DptSchema
    model: SupportVectorClassifier
    key_set: frozenset


@dataclass
class DptDetector:
    """Section IV-B: detection on double-patterned layers.

    Clips are decomposed onto two masks; kernels see the (mask1, mask2,
    combined) feature stack.  Classification and gating use the combined
    pattern's core topology.
    """

    config: DetectorConfig = field(default_factory=DetectorConfig)
    min_same_mask_spacing: int = 100
    kernels_: list[DptKernel] = field(default_factory=list, repr=False)
    extractor_: Optional[DptFeatureExtractor] = field(default=None, repr=False)

    def _key(self, clip: Clip) -> tuple:
        return canonical_string_key(clip.core_rects(), clip.core)

    def fit(self, clips: Sequence[Clip]) -> int:
        hotspots = [c for c in clips if c.label is ClipLabel.HOTSPOT]
        non_hotspots = [c for c in clips if c.label is ClipLabel.NON_HOTSPOT]
        if not hotspots or not non_hotspots:
            raise SvmError("DPT training needs both classes")
        self.extractor_ = DptFeatureExtractor(
            self.min_same_mask_spacing, self.config.features
        )
        classifier = TopologicalClassifier(self.config.classifier)
        clusters = classifier.classify(hotspots)
        self.kernels_ = []
        for cluster in clusters:
            members = [hotspots[i] for i in cluster.members]
            expanded: list[Clip] = []
            for member in members:
                expanded.extend(shift_derivatives(member, self.config.shift_amount))
            train_clips = expanded + list(non_hotspots)
            labels = np.array(
                [HOTSPOT] * len(expanded) + [NON_HOTSPOT] * len(non_hotspots)
            )
            matrix, schema = self.extractor_.build_matrix(train_clips)
            result = train_iterative(matrix, labels, _iterative_config(self.config))
            key_set = frozenset(self._key(clip) for clip in expanded)
            self.kernels_.append(DptKernel(schema, result.model, key_set))
        return len(self.kernels_)

    def margins(self, clips: Sequence[Clip]) -> np.ndarray:
        if self.extractor_ is None:
            raise NotFittedError("DptDetector used before fit()")
        out = np.full(len(clips), -1e9)
        keys = [self._key(clip) for clip in clips]
        for kernel in self.kernels_:
            for i, clip in enumerate(clips):
                if keys[i] not in kernel.key_set:
                    continue
                vector = self.extractor_.vectorize_clip(clip, kernel.schema)
                out[i] = max(out[i], float(kernel.model.decision_function(vector)))
        return out

    def predict(
        self, clips: Sequence[Clip], threshold: Optional[float] = None
    ) -> np.ndarray:
        threshold = (
            self.config.decision_threshold if threshold is None else threshold
        )
        return self.margins(clips) >= threshold
