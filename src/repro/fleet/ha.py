"""Warm-standby coordinator: tail the primary, promote on its death.

A :class:`StandbyCoordinator` wraps a fully constructed (but not
started) :class:`~repro.fleet.coordinator.FleetCoordinator` and runs a
single replication loop against the primary's ``GET
/fleet/v1/replicate`` feed.  Each tick doubles as a health probe and a
state sync: the standby mirrors every completed shard it has not seen
(fetching the RPCB1 blob via ``/fleet/v1/shard`` and landing it in its
*own* journal through ``absorb_replicated``), and resets its
missed-probe counter.  When ``max_missed_probes`` consecutive ticks
fail with :class:`~repro.errors.TransientError`, the primary is
declared dead and the standby **promotes**:

1. fire the ``fleet.promote`` chaos point (a drill can fail the
   promotion itself),
2. adopt leader epoch ``primary_epoch + 1`` via
   :meth:`~repro.fleet.coordinator.FleetCoordinator.set_epoch`,
3. start the lease reaper (never running while the primary owned the
   leases), and
4. begin answering lease/heartbeat/push as the new leader.

The replication feed intentionally does **not** mirror live leases into
the inner lease table — on promotion a shard that was leased under the
old leader is simply still pending here, gets re-leased, and first push
wins exactly as it does for an expired lease.  Any push the zombie
primary accepts after hand-off is unreachable by workers (they carry
the new epoch and the old leader fences nothing — it is dead or
partitioned), and any worker still pushing to the *new* leader under
the old epoch is fenced with ``409 stale_epoch``.  The replication gap
— pushes the primary accepted after the standby's last successful tick
— costs only recomputation: those shards are re-leased and their
recomputed records are bit-identical by construction.

Before promotion the standby's HTTP surface answers health/config/
status (``role=standby``), exposes ``POST /fleet/v1/promote`` for
operator- or drill-forced hand-off, and turns work RPCs away with
``503 {"status": "standby"}`` so a worker that re-homes too early keeps
cycling its endpoint list.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.cache import open_blob
from repro.errors import (
    FleetError,
    FleetHandshakeError,
    FleetProtocolError,
    TransientError,
)
from repro.fleet.coordinator import FleetCoordinator, FleetOptions
from repro.fleet.protocol import JSON_TYPE, FleetClient, FleetHTTPServer
from repro.obs import get_logger
from repro.resilience import faults
from repro.work.shard import decode_shard_record

_log = get_logger("fleet.ha")


class StandbyCoordinator:
    """A warm standby for one fleet scan, promotable under a new epoch."""

    def __init__(
        self,
        detector,
        layout,
        primary_url: str,
        layer: int = 1,
        options: Optional[FleetOptions] = None,
        probe_interval_s: float = 0.5,
        max_missed_probes: int = 2,
    ) -> None:
        self.inner = FleetCoordinator(detector, layout, layer, options)
        self.inner.role = "standby"
        self.probe_interval_s = max(0.05, float(probe_interval_s))
        self.max_missed_probes = max(1, int(max_missed_probes))
        # The probe client's timeout tracks the probe interval so a
        # SIGSTOPped (zombie) primary cannot stall detection much past
        # the missed-probe budget.
        self.primary = FleetClient(
            primary_url, timeout=max(0.2, self.probe_interval_s)
        )
        self.promoted = threading.Event()
        self.failed: Optional[str] = None
        self.primary_epoch = 0
        self.primary_done = False
        self.mirrored = 0
        self.missed_probes = 0
        self._promote_lock = threading.Lock()
        self._stop = threading.Event()
        self._server: Optional[FleetHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._m_mirrored = self.inner.metrics.counter(
            "fleet_standby_mirrored_total",
            "Completed shards mirrored from the primary's replicate feed.",
        )
        self._m_missed = self.inner.metrics.counter(
            "fleet_standby_missed_probes_total",
            "Replication ticks that failed to reach the primary.",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        if self._server is None:
            raise FleetError("standby not started")
        return self._server.url

    @property
    def metrics(self):
        return self.inner.metrics

    def start(self) -> "StandbyCoordinator":
        if self._server is not None:
            return self
        self._server = FleetHTTPServer(
            self,
            host=self.inner.options.host,
            port=self.inner.options.port,
        ).start()
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet-standby", daemon=True
        )
        self._thread.start()
        _log.info(
            "standby_started",
            url=self._server.url,
            primary=self.primary.url,
            probe_interval_s=self.probe_interval_s,
        )
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.inner.stop()  # reaper, if promoted; inner never owns a server
        if self._server is not None:
            self._server.stop()
            self._server = None

    def __enter__(self) -> "StandbyCoordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """True once every shard is mirrored or merged (inner done)."""
        return self.inner.wait(timeout)

    # ------------------------------------------------------------------
    # replication loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set() and not self.promoted.is_set():
            try:
                self._sync_once()
                self.missed_probes = 0
            except FleetHandshakeError as exc:
                # Different model/layout/config than the primary: this
                # standby could only corrupt the scan, so it refuses to
                # ever promote.
                self.failed = str(exc)
                _log.error("standby_mismatched", error=str(exc))
                return
            except (TransientError, FleetProtocolError, ValueError, KeyError, OSError) as exc:
                self.missed_probes += 1
                self._m_missed.labels().inc()
                _log.warning(
                    "primary_probe_missed",
                    missed=self.missed_probes,
                    of=self.max_missed_probes,
                    error=str(exc)[:200],
                )
                if self.missed_probes >= self.max_missed_probes:
                    if self.inner._done.is_set():
                        # Nothing to lead: every shard is already
                        # mirrored — the primary finished and exited.
                        # Promoting would report a spurious failover.
                        return
                    try:
                        self.promote()
                    except TransientError as fault:
                        self.failed = str(fault)
                        _log.error("standby_promote_failed", error=str(fault))
                    return
            if self._stop.wait(self.probe_interval_s):
                return

    def _sync_once(self) -> None:
        """One replication tick: probe, adopt epoch, mirror new shards."""
        status, feed = self.primary.get_json("/fleet/v1/replicate")
        if status != 200:
            raise TransientError(
                f"replicate feed answered HTTP {status} from {self.primary.url}"
            )
        if str(feed.get("fingerprint", "")) != self.inner.fingerprint:
            raise FleetHandshakeError(
                "standby disagrees with primary: "
                f"{self.inner.fingerprint[:16]} != "
                f"{str(feed.get('fingerprint'))[:16]}"
            )
        self.primary_epoch = int(feed.get("epoch", self.primary_epoch))
        self.primary_done = bool(feed.get("done"))
        for raw_id in feed.get("completed", []):
            shard_id = int(raw_id)
            if shard_id in self.inner._completed:
                continue
            code, blob = self.primary.get_blob(f"/fleet/v1/shard?id={shard_id}")
            if code != 200:
                continue  # raced result()/cleanup; next tick retries
            payload = open_blob(blob)
            if payload is None:
                continue  # digest-rejected transfer; next tick retries
            record = decode_shard_record(payload, shard_id)
            if self.inner.absorb_replicated(record):
                self.mirrored += 1
                self._m_mirrored.labels().inc()

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------
    def promote(self) -> bool:
        """Take over as leader; returns False when already promoted."""
        with self._promote_lock:
            if self.promoted.is_set():
                return False
            # Chaos point: an ``error`` plan here models a standby that
            # dies during hand-off itself.
            faults.inject("fleet.promote", primary_epoch=self.primary_epoch)
            epoch = max(self.primary_epoch + 1, self.inner.epoch + 1)
            self.inner.set_epoch(epoch)
            self.inner.role = "primary"
            self.inner.start_reaper()
            self.promoted.set()
        _log.warning(
            "standby_promoted",
            epoch=epoch,
            mirrored=self.mirrored,
            pending=len(self.inner._pending),
        )
        return True

    # ------------------------------------------------------------------
    # HTTP app (FleetHTTPServer)
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes, headers) -> tuple:
        bare = path.partition("?")[0]
        if method == "POST" and bare == "/fleet/v1/promote":
            fresh = self.promote()
            return (
                200,
                {
                    "status": "ok" if fresh else "already_promoted",
                    "epoch": self.inner.epoch,
                },
                JSON_TYPE,
            )
        if self.promoted.is_set():
            return self.inner.handle(method, path, body, headers)
        if method == "GET" and bare == "/healthz":
            return (
                200,
                {
                    "status": "failed" if self.failed else "ok",
                    "role": "standby",
                    "epoch": self.inner.epoch,
                    "primary_epoch": self.primary_epoch,
                    "mirrored": self.mirrored,
                    "missed_probes": self.missed_probes,
                },
                JSON_TYPE,
            )
        if method == "GET" and bare == "/fleet/v1/config":
            return 200, self.inner.config_document(), JSON_TYPE
        if method == "GET" and bare == "/fleet/v1/status":
            document = self.inner.status()
            document["primary_epoch"] = self.primary_epoch
            document["mirrored"] = self.mirrored
            document["missed_probes"] = self.missed_probes
            return 200, document, JSON_TYPE
        if method == "GET" and bare == "/fleet/v1/replicate":
            # Chained standbys are not supported, but the feed is
            # harmless to serve: it reports this mirror's view.
            return 200, self.inner.replicate_document(), JSON_TYPE
        if bare in (
            "/fleet/v1/lease",
            "/fleet/v1/heartbeat",
            "/fleet/v1/push",
        ):
            return 503, {"status": "standby"}, JSON_TYPE
        return self.inner.handle(method, path, body, headers)
