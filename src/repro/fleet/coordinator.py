"""The scan coordinator: leases shards to workers, merges their pushes.

The coordinator partitions a layout scan exactly as the single-node
process backend does (:func:`repro.work.shard.shard_cells` over the same
grid), journals completed shards in the same
:class:`~repro.work.shard.ScanJournal` format, and merges results with
the same :func:`~repro.work.shard._merge_shards` — which is what makes a
fleet scan bit-identical to a local one and lets ``--resume`` /
``--incremental`` work unchanged across a coordinator crash.

Lease protocol (all JSON over HTTP, see ``docs/FLEET.md``):

- ``POST /fleet/v1/lease`` — a worker (identified by name + scan
  fingerprint) asks for work.  Response: a shard (anchors, cell,
  geometry hash, lease id + TTL), ``{"status": "wait"}`` when all
  remaining shards are leased out, or ``{"status": "done"}``.
- ``POST /fleet/v1/heartbeat`` — extends a lease; a worker whose lease
  already expired learns it via ``{"status": "lost"}`` and abandons the
  shard.
- ``POST /fleet/v1/push`` — the shard's npz record in an RPCB1
  envelope.  First push wins: a push for an already-completed shard is
  acknowledged as ``stale`` and discarded, so reassignment can never
  double-count a shard.  Accepted pushes are journaled immediately —
  the journal, not coordinator memory, is the durable state.

A background reaper expires leases whose worker stopped heartbeating
and returns their shards to the *front* of the queue (they are the
oldest work, and front-of-queue reassignment keeps tail latency down).

High availability (``docs/FLEET.md``, :mod:`repro.fleet.ha`): every
coordinator serves under a monotonically increasing **leader epoch**.
Workers adopt the epoch at handshake and send it with every lease,
heartbeat and push; a request carrying any *other* epoch is fenced with
``409 {"status": "stale_epoch"}`` — so after a warm standby promotes
(epoch + 1), a zombie primary's leases can never double-accept a shard
on the new leader.  The standby mirrors durable state through ``GET
/fleet/v1/replicate`` (completed-shard ids + the live lease table) and
fetches journaled shard records via ``GET /fleet/v1/shard?id=N``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.cache import open_blob, wrap_blob
from repro.errors import FleetError, FleetProtocolError, ScanDrainedError
from repro.fleet.membership import MemberTable
from repro.fleet.protocol import (
    BLOB_TYPE,
    FLEET_PROTOCOL_VERSION,
    JSON_TYPE,
    METRICS_TEXT_TYPE,
    FleetHTTPServer,
    metrics_routes,
)
from repro.obs import MetricsAggregator, get_logger, new_request_id, trace
from repro.serve.metrics import MetricsRegistry
from repro.resilience import faults
from repro.resilience.quarantine import QuarantineReport
from repro.work.pool import PoolStats
from repro.work.shard import (
    DEFAULT_SHARD_CLIPS,
    ScanJournal,
    ScanResult,
    _merge_shards,
    _ShardRecord,
    decode_shard_record,
    encode_shard_record,
    scan_base_fingerprint,
    scan_fingerprint,
    shard_cells,
    shard_geometry_hash,
)

_log = get_logger("fleet.coordinator")


@dataclass
class FleetOptions:
    """Coordinator-side knobs of one fleet scan."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Seconds a lease survives without a heartbeat before reassignment.
    lease_ttl_s: float = 5.0
    shard_side: Optional[int] = None
    journal_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    keep_journal: bool = False
    #: Remote cache node URLs, handed to workers via ``/fleet/v1/config``.
    cache_urls: list[str] = field(default_factory=list)
    #: Root trace/request id of the whole scan; minted when unset.  Every
    #: worker adopts it from ``/fleet/v1/config``, so one fleet scan's
    #: RPCs and spans all share a single root id.
    request_id: Optional[str] = None
    #: Tell workers to record spans and ship them back with pushes.
    trace: bool = False
    #: Leader epoch this coordinator serves under.  A journal directory
    #: that has seen a leader before bumps past its stored epoch, and a
    #: promoted standby serves at the dead primary's epoch + 1 — the
    #: epoch only ever moves forward for a given worker population.
    epoch: int = 1


#: Shard-duration buckets (seconds) — shards run from tens of ms on a
#: toy layout up to minutes on a dense full-chip layer.
SHARD_SECONDS_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0,
)


@dataclass
class _Lease:
    """One outstanding shard lease."""

    lease_id: int
    shard_id: int
    worker: str
    expires: float  # time.monotonic()
    granted: float = 0.0  # time.monotonic() at grant, for straggler age


class FleetCoordinator:
    """Owns the shard queue, the journal and the merge of one fleet scan."""

    def __init__(
        self,
        detector,
        layout,
        layer: int = 1,
        options: Optional[FleetOptions] = None,
    ) -> None:
        from repro.errors import NotFittedError

        self.detector = detector
        self.layout = layout
        self.layer = layer
        self.options = options or FleetOptions()
        model = detector.model_
        if model is None:
            raise NotFittedError("fleet scan used before fit()")
        config = detector.config
        self.shard_side = (
            self.options.shard_side
            or config.spec.clip_side * DEFAULT_SHARD_CLIPS
        )
        self.fingerprint = scan_fingerprint(
            layout, layer, config, model, self.shard_side
        )
        self._base = scan_base_fingerprint(layer, config, model, self.shard_side)
        self.cells = shard_cells(layout, config.spec, layer, self.shard_side)
        self.shards = [anchors for _, anchors in self.cells]
        self._geometry = [
            shard_geometry_hash(
                layout, layer, cell, self.shard_side, config.spec.clip_side
            )
            for cell, _ in self.cells
        ]

        self.journal: Optional[ScanJournal] = None
        self._resumed: dict[int, _ShardRecord] = {}
        if self.options.journal_dir is not None:
            self.journal = ScanJournal(self.options.journal_dir)
            self._resumed = self.journal.begin(
                self.fingerprint,
                len(self.shards),
                self.shard_side,
                resume=self.options.resume,
                base=self._base,
            )
            if self._resumed:
                _log.info(
                    "fleet_scan_resumed",
                    shards=len(self._resumed),
                    of=len(self.shards),
                )

        # Leader epoch: monotone across restarts of the same journal dir
        # (the sidecar survives a crash, so a resumed coordinator never
        # reuses the epoch its predecessor's leases were granted under).
        self.role = "primary"
        self.epoch = int(self.options.epoch)
        if self.options.journal_dir is not None:
            stored = _read_epoch(Path(self.options.journal_dir))
            if stored is not None:
                self.epoch = max(self.epoch, stored + 1)
            _write_epoch(Path(self.options.journal_dir), self.epoch)
        self.stale_epoch_fenced = 0

        self._lock = threading.Lock()
        self._completed: dict[int, _ShardRecord] = dict(self._resumed)
        self._pending: deque[int] = deque(
            shard_id
            for shard_id in range(len(self.shards))
            if shard_id not in self._completed
        )
        self._leases: dict[int, _Lease] = {}  # keyed by shard_id
        self._next_lease = 0
        self._done = threading.Event()
        if not self._pending:
            self._done.set()

        self.members = MemberTable(ttl_s=max(10.0, 3 * self.options.lease_ttl_s))
        self.leases_granted = 0
        self.leases_expired = 0
        self.pushes_accepted = 0
        self.pushes_stale = 0
        self.pushes_rejected = 0
        self.reassignments: dict[int, int] = {}

        # Root trace context of the whole scan: workers adopt it from
        # /fleet/v1/config so every RPC and shipped span shares one id.
        self.request_id = self.options.request_id or new_request_id()

        # Live metrics, scraped on GET /metrics(/state) and federated
        # with the workers' registries on GET /fleet/v1/metrics.
        self.metrics = MetricsRegistry()
        self._m_leases = self.metrics.counter(
            "fleet_leases_total",
            "Shard leases by outcome (granted / expired).",
            labels=("outcome",),
        )
        self._m_pushes = self.metrics.counter(
            "fleet_pushes_total",
            "Shard pushes by outcome (accepted / stale / rejected).",
            labels=("outcome",),
        )
        self._m_shard_seconds = self.metrics.histogram(
            "fleet_shard_seconds",
            "Worker-reported wall seconds per completed shard.",
            buckets=SHARD_SECONDS_BUCKETS,
        )
        self._m_stale_epoch = self.metrics.counter(
            "fleet_stale_epoch_total",
            "Requests fenced with 409 stale_epoch, by route.",
            labels=("route",),
        )
        self._m_epoch = self.metrics.gauge(
            "fleet_epoch", "Leader epoch this coordinator serves under."
        )
        self._m_epoch.labels().set(float(self.epoch))

        # Status-plane state: per-shard wall clock (resumed shards keep
        # theirs via the journal), per-worker self-reports and push
        # tallies, and shipped trace documents.
        self._started = time.monotonic()
        self._shard_wall: dict[int, float] = {
            shard_id: record.wall_s
            for shard_id, record in self._resumed.items()
            if record.wall_s > 0
        }
        self._worker_reports: dict[str, dict] = {}
        self._worker_pushes: dict[str, int] = {}
        self._trace_docs: list[dict] = []
        for record in self._resumed.values():
            if record.wall_s > 0:
                self._m_shard_seconds.labels().observe(record.wall_s)

        self._server: Optional[FleetHTTPServer] = None
        self._reaper: Optional[threading.Thread] = None
        self._closing = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        if self._server is None:
            raise FleetError("coordinator not started")
        return self._server.url

    def start(self) -> "FleetCoordinator":
        if self._server is not None:
            return self
        self._server = FleetHTTPServer(
            self, host=self.options.host, port=self.options.port
        ).start()
        self.start_reaper()
        _log.info(
            "coordinator_started",
            url=self._server.url,
            shards=len(self.shards),
            resumed=len(self._resumed),
            epoch=self.epoch,
            fingerprint=self.fingerprint[:16],
        )
        return self

    def start_reaper(self) -> None:
        """Start the lease-expiry thread (separately from the server).

        A :class:`~repro.fleet.ha.StandbyCoordinator` serves this app
        through its own HTTP server and only starts the reaper at
        promotion — mirrored state must never expire leases the primary
        still owns.
        """
        if self._reaper is not None:
            return
        self._closing.clear()
        self._reaper = threading.Thread(
            target=self._reap_loop, name="repro-fleet-reaper", daemon=True
        )
        self._reaper.start()

    def stop(self) -> None:
        self._closing.set()
        if self._reaper is not None:
            self._reaper.join(timeout=5.0)
            self._reaper = None
        if self._server is not None:
            self._server.stop()
            self._server = None

    def __enter__(self) -> "FleetCoordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # leader epoch
    # ------------------------------------------------------------------
    def set_epoch(self, epoch: int) -> None:
        """Adopt a new (strictly larger) leader epoch.

        Called by a promoting standby with the dead primary's epoch + 1;
        persisted beside the journal so a later ``--resume`` of this
        directory keeps moving forward.
        """
        if epoch <= self.epoch:
            raise FleetError(
                f"epoch must increase: {epoch} <= current {self.epoch}"
            )
        self.epoch = int(epoch)
        self._m_epoch.labels().set(float(self.epoch))
        if self.options.journal_dir is not None:
            _write_epoch(Path(self.options.journal_dir), self.epoch)

    def _fence_epoch(self, raw, route: str) -> Optional[tuple]:
        """The 409 fence response for a stale-epoch request, or ``None``.

        A request carrying no epoch at all is let through (hand-rolled
        clients and pre-HA peers); :class:`~repro.fleet.worker.FleetWorker`
        always sends the epoch it handshook under, which is what makes
        the zombie-primary fence airtight for real fleets.
        """
        if raw is None or raw == "":
            return None
        try:
            theirs = int(raw)
        except (TypeError, ValueError) as exc:
            raise FleetProtocolError(f"bad epoch {raw!r}") from exc
        if theirs == self.epoch:
            return None
        self.stale_epoch_fenced += 1
        self._m_stale_epoch.labels(route).inc()
        _log.warning(
            "stale_epoch_fenced", route=route, got=theirs, expected=self.epoch
        )
        return (
            409,
            {"status": "stale_epoch", "expected": self.epoch, "got": theirs},
            JSON_TYPE,
        )

    # ------------------------------------------------------------------
    # lease state machine
    # ------------------------------------------------------------------
    def _reap_loop(self) -> None:
        interval = max(0.05, self.options.lease_ttl_s / 4)
        while not self._closing.wait(interval):
            self._expire_leases()

    def _expire_leases(self) -> None:
        now = time.monotonic()
        with self._lock:
            expired = [
                lease for lease in self._leases.values() if lease.expires <= now
            ]
            for lease in expired:
                del self._leases[lease.shard_id]
                # Front of the queue: an expired shard is the oldest
                # outstanding work, so it is reassigned first.
                self._pending.appendleft(lease.shard_id)
                self.leases_expired += 1
                self.reassignments[lease.shard_id] = (
                    self.reassignments.get(lease.shard_id, 0) + 1
                )
        for lease in expired:
            self._m_leases.labels("expired").inc()
        for lease in expired:
            _log.warning(
                "lease_expired",
                shard=lease.shard_id,
                worker=lease.worker,
                lease=lease.lease_id,
            )

    def _grant(self, worker: str) -> dict:
        with self._lock:
            if len(self._completed) == len(self.shards):
                return {"status": "done"}
            if not self._pending:
                return {
                    "status": "wait",
                    "retry_after_s": max(0.05, self.options.lease_ttl_s / 4),
                }
            shard_id = self._pending.popleft()
            self._next_lease += 1
            now = time.monotonic()
            lease = _Lease(
                lease_id=self._next_lease,
                shard_id=shard_id,
                worker=worker,
                expires=now + self.options.lease_ttl_s,
                granted=now,
            )
            self._leases[shard_id] = lease
            self.leases_granted += 1
        self._m_leases.labels("granted").inc()
        cell, anchors = self.cells[shard_id]
        _log.info(
            "lease_granted",
            shard=shard_id,
            worker=worker,
            lease=lease.lease_id,
            anchors=len(anchors),
        )
        return {
            "status": "lease",
            "shard": shard_id,
            "lease": lease.lease_id,
            "ttl_s": self.options.lease_ttl_s,
            "cell": list(cell),
            "geometry_sha": self._geometry[shard_id],
            "anchors": [[int(x), int(y)] for x, y in anchors],
        }

    def _heartbeat(self, shard_id: int, lease_id: int) -> dict:
        with self._lock:
            lease = self._leases.get(shard_id)
            if lease is None or lease.lease_id != lease_id:
                return {"status": "lost"}
            lease.expires = time.monotonic() + self.options.lease_ttl_s
            return {"status": "ok"}

    def _accept_push(self, shard_id: int, lease_id: int, body: bytes) -> dict:
        if not 0 <= shard_id < len(self.shards):
            raise FleetProtocolError(f"push for unknown shard {shard_id}")
        payload = open_blob(body)
        if payload is None:
            # Digest-verified on receipt: a corrupt push is re-leased,
            # never merged.
            self.pushes_rejected += 1
            self._m_pushes.labels("rejected").inc()
            raise FleetProtocolError(f"corrupt push envelope for shard {shard_id}")
        try:
            record = decode_shard_record(payload, shard_id)
        except (KeyError, ValueError, OSError) as exc:
            self.pushes_rejected += 1
            self._m_pushes.labels("rejected").inc()
            raise FleetProtocolError(
                f"undecodable push for shard {shard_id}: {exc}"
            ) from exc
        record.cell = self.cells[shard_id][0]
        record.geometry_sha = self._geometry[shard_id]
        with self._lock:
            if shard_id in self._completed:
                # First push won already (the lease expired and another
                # worker finished the reassigned shard first).
                self.pushes_stale += 1
                self._m_pushes.labels("stale").inc()
                return {"status": "stale"}
            # Chaos point: an ``error`` plan aborts between pushes (the
            # journal keeps accepted shards for --resume); a ``kill``
            # plan SIGKILLs the coordinator, which is how the resume
            # tests produce a half-finished journal.
            faults.inject("fleet.push", shard=shard_id)
            self._completed[shard_id] = record
            lease = self._leases.pop(shard_id, None)
            if self.journal is not None:
                self.journal.record(record)
            self.pushes_accepted += 1
            if record.wall_s > 0:
                self._shard_wall[shard_id] = record.wall_s
            worker = lease.worker if lease is not None else "?"
            self._worker_pushes[worker] = self._worker_pushes.get(worker, 0) + 1
            done = len(self._completed) == len(self.shards)
        self._m_pushes.labels("accepted").inc()
        if record.wall_s > 0:
            self._m_shard_seconds.labels().observe(record.wall_s)
        _log.info(
            "push_accepted",
            shard=shard_id,
            lease=lease_id,
            candidates=len(record.anchors),
        )
        if done:
            self._done.set()
        return {"status": "ok"}

    # ------------------------------------------------------------------
    # replication (standby tail)
    # ------------------------------------------------------------------
    def absorb_replicated(self, record: _ShardRecord) -> bool:
        """Mirror one already-validated shard record from the primary.

        The standby's replication loop calls this for every completed
        shard id it has not mirrored yet; the record lands in this
        coordinator's own journal, so a promotion (or a crash of the
        promoted standby followed by ``--resume``) starts from
        everything the feed delivered.  Returns ``False`` for a
        duplicate.
        """
        shard_id = record.shard_id
        if not 0 <= shard_id < len(self.shards):
            raise FleetProtocolError(f"replicated unknown shard {shard_id}")
        record.cell = self.cells[shard_id][0]
        record.geometry_sha = self._geometry[shard_id]
        with self._lock:
            if shard_id in self._completed:
                return False
            self._completed[shard_id] = record
            try:
                self._pending.remove(shard_id)
            except ValueError:
                pass
            if self.journal is not None:
                self.journal.record(record)
            if record.wall_s > 0:
                self._shard_wall[shard_id] = record.wall_s
            done = len(self._completed) == len(self.shards)
        if record.wall_s > 0:
            self._m_shard_seconds.labels().observe(record.wall_s)
        if done:
            self._done.set()
        return True

    def replicate_document(self) -> dict:
        """The ``GET /fleet/v1/replicate`` feed a warm standby tails.

        Everything a standby needs to mirror durable state and take
        over: the leader epoch, the scan identity, every completed
        shard id (blobs fetched separately via ``/fleet/v1/shard``) and
        the live lease table (status continuity — on promotion leased
        shards are simply re-queued, first push still wins).
        """
        now = time.monotonic()
        with self._lock:
            completed = sorted(self._completed)
            leases = [
                {
                    "shard": lease.shard_id,
                    "worker": lease.worker,
                    "lease": lease.lease_id,
                    "expires_in_s": round(lease.expires - now, 3),
                }
                for lease in sorted(self._leases.values(), key=lambda l: l.shard_id)
            ]
        return {
            "protocol": FLEET_PROTOCOL_VERSION,
            "epoch": self.epoch,
            "role": self.role,
            "fingerprint": self.fingerprint,
            "shards": len(self.shards),
            "shard_side": self.shard_side,
            "layer": self.layer,
            "lease_ttl_s": self.options.lease_ttl_s,
            "request_id": self.request_id,
            "cache_urls": list(self.options.cache_urls),
            "trace": bool(self.options.trace),
            "completed": completed,
            "leases": leases,
            "done": self._done.is_set(),
        }

    def shard_blob(self, shard_id: int) -> Optional[bytes]:
        """One completed shard re-encoded as an RPCB1 blob, or ``None``."""
        with self._lock:
            record = self._completed.get(shard_id)
        if record is None:
            return None
        return wrap_blob(encode_shard_record(record))

    # ------------------------------------------------------------------
    # HTTP app (FleetHTTPServer)
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes, headers) -> tuple:
        path, _, query = path.partition("?")
        routed = metrics_routes(self.metrics, method, path)
        if routed is not None:
            return routed
        if method == "GET" and path == "/fleet/v1/config":
            return 200, self.config_document(), JSON_TYPE
        if method == "GET" and path == "/fleet/v1/status":
            return 200, self.status(), JSON_TYPE
        if method == "GET" and path == "/fleet/v1/metrics":
            return 200, self.federated_metrics().render(), METRICS_TEXT_TYPE
        if method == "GET" and path == "/fleet/v1/replicate":
            return 200, self.replicate_document(), JSON_TYPE
        if method == "GET" and path == "/fleet/v1/shard":
            params = dict(
                pair.split("=", 1) for pair in query.split("&") if "=" in pair
            )
            try:
                shard_id = int(params.get("id", ""))
            except ValueError as exc:
                raise FleetProtocolError(f"bad shard query {query!r}") from exc
            blob = self.shard_blob(shard_id)
            if blob is None:
                return 404, {"error": f"shard {shard_id} not completed"}, JSON_TYPE
            return 200, blob, BLOB_TYPE
        if method == "GET" and path == "/healthz":
            return (
                200,
                {
                    "status": "ok",
                    "done": self._done.is_set(),
                    "role": self.role,
                    "epoch": self.epoch,
                },
                JSON_TYPE,
            )
        if method == "POST" and path == "/fleet/v1/trace":
            document = _json_body(body)
            with self._lock:
                self._trace_docs.append(document)
            return 200, {"status": "ok"}, JSON_TYPE
        if method == "POST" and path == "/fleet/v1/lease":
            document = _json_body(body)
            fenced = self._fence_epoch(document.get("epoch"), "lease")
            if fenced is not None:
                return fenced
            worker = str(document.get("worker", "?"))
            theirs = str(document.get("fingerprint", ""))
            if theirs != self.fingerprint:
                # Handshake failure: the worker loaded a different
                # model/layout/config — its margins would be wrong.
                return (
                    409,
                    {
                        "status": "fingerprint_mismatch",
                        "expected": self.fingerprint,
                        "got": theirs,
                    },
                    JSON_TYPE,
                )
            self.members.register(
                worker,
                str(document.get("url", "") or ""),
                kind="worker",
                version=theirs,
            )
            stats = document.get("stats")
            if isinstance(stats, dict):
                with self._lock:
                    self._worker_reports[worker] = stats
            answer = self._grant(worker)
            # Piggyback the live cache topology on every lease response,
            # so workers adopt ring membership changes mid-scan.
            answer["cache_urls"] = list(self.options.cache_urls)
            return 200, answer, JSON_TYPE
        if method == "POST" and path == "/fleet/v1/cache-join":
            document = _json_body(body)
            url = str(document.get("url", "")).strip()
            if not url:
                return 400, {"error": "cache-join needs a url"}, JSON_TYPE
            joined = self.join_cache_node(url)
            return (
                200,
                {
                    "status": "joined" if joined else "known",
                    "cache_urls": list(self.options.cache_urls),
                },
                JSON_TYPE,
            )
        if method == "POST" and path == "/fleet/v1/heartbeat":
            document = _json_body(body)
            fenced = self._fence_epoch(document.get("epoch"), "heartbeat")
            if fenced is not None:
                return fenced
            self.members.heartbeat(str(document.get("worker", "?")))
            stats = document.get("stats")
            if isinstance(stats, dict):
                with self._lock:
                    self._worker_reports[str(document.get("worker", "?"))] = stats
            return (
                200,
                self._heartbeat(
                    int(document.get("shard", -1)), int(document.get("lease", -1))
                ),
                JSON_TYPE,
            )
        if method == "POST" and path == "/fleet/v1/push":
            params = dict(
                pair.split("=", 1) for pair in query.split("&") if "=" in pair
            )
            try:
                shard_id = int(params.get("shard", ""))
                lease_id = int(params.get("lease", "-1"))
            except ValueError as exc:
                raise FleetProtocolError(f"bad push query {query!r}") from exc
            fenced = self._fence_epoch(params.get("epoch"), "push")
            if fenced is not None:
                return fenced
            return 200, self._accept_push(shard_id, lease_id, body), JSON_TYPE
        return 404, {"error": f"no route {path!r}"}, JSON_TYPE

    def join_cache_node(self, url: str) -> bool:
        """Admit one cache node into the announced ring topology.

        Consistent hashing bounds the key movement: only keys whose
        replica set now touches the new node re-home, the rest of the
        fleet's warm tier stays where it is.  Workers pick the new
        membership up from their next lease response.
        """
        url = str(url).rstrip("/")
        if not url:
            return False
        with self._lock:
            if url in self.options.cache_urls:
                return False
            self.options.cache_urls.append(url)
            nodes = list(self.options.cache_urls)
        _log.info("cache_node_joined", url=url, nodes=nodes)
        return True

    def config_document(self) -> dict:
        return {
            "protocol": FLEET_PROTOCOL_VERSION,
            "epoch": self.epoch,
            "role": self.role,
            "fingerprint": self.fingerprint,
            "compute": self.detector.config.features.compute,
            "shard_side": self.shard_side,
            "layer": self.layer,
            "shards": len(self.shards),
            "lease_ttl_s": self.options.lease_ttl_s,
            "cache_urls": list(self.options.cache_urls),
            "request_id": self.request_id,
            "trace": bool(self.options.trace),
        }

    def status(self) -> dict:
        """The live status plane served on ``GET /fleet/v1/status``.

        Beyond the raw queue counters this reports per-lease age, per-
        worker throughput and cache behaviour (from their lease/heartbeat
        self-reports), shard-duration percentiles, an ETA, and straggler
        shards — leases older than the p95 completed-shard duration.
        """
        now = time.monotonic()
        with self._lock:
            completed = len(self._completed)
            leased = len(self._leases)
            pending = len(self._pending)
            leases = [
                {
                    "shard": lease.shard_id,
                    "worker": lease.worker,
                    "lease": lease.lease_id,
                    "age_s": round(max(0.0, now - lease.granted), 3),
                    "expires_in_s": round(lease.expires - now, 3),
                }
                for lease in sorted(
                    self._leases.values(), key=lambda l: l.shard_id
                )
            ]
            walls = sorted(self._shard_wall.values())
            reports = {name: dict(doc) for name, doc in self._worker_reports.items()}
            pushes = dict(self._worker_pushes)
        durations: dict = {"count": len(walls)}
        if walls:
            durations.update(
                p50=round(_percentile(walls, 0.50), 6),
                p95=round(_percentile(walls, 0.95), 6),
                mean=round(sum(walls) / len(walls), 6),
            )
        stragglers = []
        if walls:
            p95 = _percentile(walls, 0.95)
            stragglers = [
                entry["shard"] for entry in leases if entry["age_s"] > p95
            ]
        alive = {m.name for m in self.members.members(kind="worker")}
        workers = []
        for name in sorted(set(alive) | set(reports) | set(pushes)):
            report = reports.get(name, {})
            workers.append(
                {
                    "name": name,
                    "alive": name in alive,
                    "pushes": pushes.get(name, 0),
                    "shards_done": int(report.get("shards_done", 0)),
                    "shards_stale": int(report.get("shards_stale", 0)),
                    "cache": report.get("cache") or {},
                }
            )
        elapsed = max(1e-9, now - self._started)
        fresh = completed - len(self._resumed)
        throughput = fresh / elapsed
        eta_s = None
        if pending + leased and walls:
            mean = sum(walls) / len(walls)
            eta_s = round(
                (pending + leased) * mean / max(1, len(alive) or 1), 3
            )
        cache = _merged_cache_stats(reports.values())
        return {
            "shards": len(self.shards),
            "epoch": self.epoch,
            "role": self.role,
            "completed": completed,
            "leased": leased,
            "pending": pending,
            "resumed": len(self._resumed),
            "stale_epoch_fenced": self.stale_epoch_fenced,
            "leases_granted": self.leases_granted,
            "leases_expired": self.leases_expired,
            "pushes_accepted": self.pushes_accepted,
            "pushes_stale": self.pushes_stale,
            "pushes_rejected": self.pushes_rejected,
            "reassigned_shards": {
                str(k): v for k, v in sorted(self.reassignments.items())
            },
            "workers": [m.name for m in self.members.members(kind="worker")],
            "done": self._done.is_set(),
            "request_id": self.request_id,
            "elapsed_s": round(elapsed, 3),
            "throughput_shards_per_s": round(throughput, 6),
            "eta_s": eta_s,
            "durations": durations,
            "leases": leases,
            "stragglers": stragglers,
            "worker_details": workers,
            "cache": cache,
        }

    # ------------------------------------------------------------------
    # observability plane
    # ------------------------------------------------------------------
    def federated_metrics(self) -> MetricsRegistry:
        """The fleet-wide merged registry served on ``/fleet/v1/metrics``.

        Scrapes every alive worker that registered a status URL plus the
        configured cache nodes, and merges their states with the
        coordinator's own registry (bucket-wise, label-preserving).
        """
        aggregator = MetricsAggregator()
        aggregator.register("coordinator", self.metrics.export_state)
        for member in self.members.members(kind="worker", alive_only=True):
            if member.url:
                aggregator.register(member.name, member.url)
        for index, url in enumerate(self.options.cache_urls):
            aggregator.register(f"cache-{index}", url)
        return aggregator.merged()

    def trace_documents(self) -> list[dict]:
        """Span documents shipped by workers via ``POST /fleet/v1/trace``."""
        with self._lock:
            return list(self._trace_docs)

    # ------------------------------------------------------------------
    # completion + merge
    # ------------------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every shard is pushed (or the timeout elapses)."""
        return self._done.wait(timeout)

    def result(
        self, quarantine: Optional[QuarantineReport] = None
    ) -> ScanResult:
        """Merge completed shards into the global candidate order.

        Exactly :func:`~repro.work.shard._merge_shards` — the same code
        path the single-node process backend uses, so a fleet scan's
        hotspot set, margins and funnel counts are bit-identical to a
        local scan of the same layout.  Raises
        :class:`~repro.errors.ScanDrainedError` while shards are still
        outstanding (the journal keeps what finished).
        """
        with self._lock:
            completed = dict(self._completed)
        if len(completed) < len(self.shards):
            raise ScanDrainedError(
                f"fleet scan incomplete: {len(completed)}/{len(self.shards)} "
                "shards pushed; rerun with --resume to finish"
            )
        with trace(
            "fleet.merge", shards=len(self.shards), resumed=len(self._resumed)
        ):
            result = _merge_shards(
                self.detector,
                self.layout,
                self.layer,
                self.shards,
                completed,
                self._resumed,
                quarantine,
                PoolStats(),
            )
        if self.journal is not None and not self.options.keep_journal:
            self.journal.clear()
            _clear_epoch(Path(self.options.journal_dir))
        return result


#: Sidecar file (in the journal dir) persisting the leader epoch.
EPOCH_FILE = "epoch.json"


def _read_epoch(journal_dir: Path) -> Optional[int]:
    try:
        document = json.loads((journal_dir / EPOCH_FILE).read_text())
        return int(document["epoch"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _write_epoch(journal_dir: Path, epoch: int) -> None:
    try:
        journal_dir.mkdir(parents=True, exist_ok=True)
        (journal_dir / EPOCH_FILE).write_text(json.dumps({"epoch": int(epoch)}))
    except OSError:
        pass  # best-effort: a lost sidecar only costs monotonicity-on-resume


def _clear_epoch(journal_dir: Path) -> None:
    """Drop the sidecar with the cleared journal (a finished scan's
    epoch has no successor to fence against)."""
    try:
        (journal_dir / EPOCH_FILE).unlink(missing_ok=True)
        journal_dir.rmdir()
    except OSError:
        pass


def _percentile(ordered: list, q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return float(ordered[rank])


#: Worst-state-wins ordering when several workers disagree on a node.
_NODE_STATE_RANK = {"up": 0, "half_open": 1, "down": 2}


def _merged_cache_stats(reports) -> dict:
    """Sum workers' self-reported remote-cache counters into fleet totals.

    Beyond hit/miss/corrupt totals this merges per-node liveness (the
    worst state any worker observed wins), repair/probe counters and
    RPC counts, feeding ``fleet-status`` and the chaos drills.
    """
    totals = {
        "remote_hits": 0,
        "remote_misses": 0,
        "remote_corrupt": 0,
        "remote_rpcs": 0,
        "remote_batch_rpcs": 0,
        "remote_repairs": 0,
        "remote_probes": 0,
    }
    nodes: dict = {}
    for report in reports:
        cache = report.get("cache") or {}
        totals["remote_hits"] += int(cache.get("remote_hits", 0))
        totals["remote_corrupt"] += int(cache.get("remote_corrupt", 0))
        if "remote_store_gets" in cache:
            gets = int(cache.get("remote_store_gets", 0))
            hits = int(cache.get("remote_store_hits", 0))
        else:  # older worker: derive from the tier counters
            hits = int(cache.get("remote_hits", 0))
            gets = int(cache.get("feature_misses", 0))
        totals["remote_misses"] += max(0, gets - hits)
        for key in (
            "remote_rpcs", "remote_batch_rpcs", "remote_repairs",
            "remote_probes",
        ):
            totals[key] += int(cache.get(key, 0))
        for url, health in (cache.get("remote_nodes") or {}).items():
            if not isinstance(health, dict):
                continue
            merged = nodes.setdefault(
                url,
                {
                    "state": "up",
                    "failures": 0,
                    "errors": 0,
                    "probes": 0,
                    "repairs": 0,
                    "hints_pending": 0,
                },
            )
            state = str(health.get("state", "up"))
            if (
                _NODE_STATE_RANK.get(state, 0)
                > _NODE_STATE_RANK.get(merged["state"], 0)
            ):
                merged["state"] = state
            merged["failures"] = max(
                merged["failures"], int(health.get("failures", 0))
            )
            for key in ("errors", "probes", "repairs", "hints_pending"):
                merged[key] += int(health.get(key, 0))
    lookups = totals["remote_hits"] + totals["remote_misses"]
    totals["hit_rate"] = (
        round(totals["remote_hits"] / lookups, 6) if lookups else 0.0
    )
    if nodes:
        totals["nodes"] = nodes
    return totals


def _json_body(body: bytes) -> dict:
    try:
        document = json.loads(body or b"{}")
    except ValueError as exc:
        raise FleetProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise FleetProtocolError("request body must be a JSON object")
    return document
