"""repro.fleet — distributed scans and horizontally-replicated serving.

The fleet layer spans the single-node primitives across machines while
preserving the repo's core invariant: **a 1-node and an N-node scan are
bit-identical** (same hotspot set, margins and funnel counts).

- :mod:`repro.fleet.protocol` — the JSON + RPCB1-blob wire format and
  the shared HTTP server/client plumbing;
- :mod:`repro.fleet.coordinator` — :class:`FleetCoordinator`: shard
  leasing with heartbeat TTLs, first-push-wins merge, journal-backed
  crash recovery (``--resume`` works across coordinator death);
- :mod:`repro.fleet.worker` — :class:`FleetWorker`: pull a lease,
  evaluate the shard with the exact single-node code path, push the
  npz record back; takes an ordered coordinator list and re-homes to
  the promoted standby on leader failure;
- :mod:`repro.fleet.ha` — :class:`StandbyCoordinator`: tails the
  primary's replicate feed and promotes itself under a new leader
  epoch when health probes go unanswered;
- :mod:`repro.fleet.remote_cache` — an HTTP blob cache
  (:class:`CacheServer`) and the :class:`RemoteCacheStore` tier that
  plugs it into :class:`~repro.cache.HotspotCache`: RF=2 replication
  over the hash ring, read-repair, half-open node recovery with hinted
  handoff, and a batch RPC (``/cache/v1/batch``) for shard-sized
  multi-get/multi-put;
- :mod:`repro.fleet.membership` / :mod:`repro.fleet.router` — TTL'd
  peer registry, consistent-hash + round-robin routing, and the
  :class:`~repro.fleet.router.FleetFrontend` predict proxy.

CLI entry points: ``repro fleet-scan | fleet-worker | fleet-cache |
fleet-frontend | fleet-coordinator | chaos``.  See ``docs/FLEET.md``.
"""

from repro.fleet.coordinator import FleetCoordinator, FleetOptions
from repro.fleet.ha import StandbyCoordinator
from repro.fleet.membership import Member, MemberTable
from repro.fleet.protocol import (
    FLEET_PROTOCOL_VERSION,
    METRICS_TEXT_TYPE,
    FleetClient,
    FleetHTTPServer,
    metrics_routes,
)
from repro.fleet.remote_cache import (
    REPLICATION_FACTOR,
    CacheServer,
    RemoteCacheStore,
    pack_batch,
    unpack_batch,
)
from repro.fleet.router import FleetFrontend, HashRing, RoundRobin
from repro.fleet.worker import CoordinatorChannel, FleetWorker

__all__ = [
    "FLEET_PROTOCOL_VERSION",
    "METRICS_TEXT_TYPE",
    "REPLICATION_FACTOR",
    "CacheServer",
    "CoordinatorChannel",
    "FleetClient",
    "FleetCoordinator",
    "FleetFrontend",
    "FleetHTTPServer",
    "FleetOptions",
    "FleetWorker",
    "HashRing",
    "Member",
    "MemberTable",
    "RemoteCacheStore",
    "RoundRobin",
    "StandbyCoordinator",
    "metrics_routes",
    "pack_batch",
    "unpack_batch",
]
