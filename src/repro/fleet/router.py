"""Request routing: consistent hashing for blobs, round-robin for RPCs.

Two small primitives plus the serving front end built on them:

- :class:`HashRing` — consistent hashing over node names.  Cache
  content keys are sha256 hex, so hashing them onto a ring of cache
  nodes spreads blobs evenly, and adding/removing one node only remaps
  the keys that landed on it (the rest of the fleet's warm tier stays
  warm).
- :class:`RoundRobin` — a thread-safe rotating cursor for stateless
  RPCs where any healthy peer will do.
- :class:`FleetFrontend` — the thin HTTP front end that round-robins
  ``/v1/predict`` across the healthy serve replicas registered in a
  :class:`~repro.fleet.membership.MemberTable`, retrying the next
  replica when one drops mid-request (prediction is idempotent).
"""

from __future__ import annotations

import bisect
import itertools
import json
import threading
import time
from hashlib import sha256
from typing import Optional, Sequence

from repro.errors import FleetError, TransientError
from repro.fleet.membership import MemberTable
from repro.fleet.protocol import JSON_TYPE, FleetClient, metrics_routes
from repro.obs import REQUEST_ID_HEADER, current_request_id, get_logger
from repro.serve.metrics import MetricsRegistry

_log = get_logger("fleet.router")


class HashRing:
    """Consistent-hash ring over node names.

    Each node is hashed onto the ring at ``replicas`` virtual points
    (sha256 of ``"node:i"``), and a key routes to the first node point
    clockwise of the key's own hash.  ``nodes_for`` walks onward around
    the ring, yielding a deterministic fallback order that skips nothing
    and repeats nothing — the lookup path when the primary is down.
    """

    def __init__(self, nodes: Sequence[str], replicas: int = 64) -> None:
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            for i in range(replicas):
                point = int.from_bytes(
                    sha256(f"{node}:{i}".encode("utf-8")).digest()[:8], "big"
                )
                self._points.append((point, node))
        self._points.sort()
        self._keys = [point for point, _ in self._points]
        self.nodes = sorted(set(nodes))

    def __len__(self) -> int:
        return len(self.nodes)

    def _key_point(self, key: str) -> int:
        return int.from_bytes(sha256(key.encode("utf-8")).digest()[:8], "big")

    def node_for(self, key: str) -> str:
        """The primary node of one content key."""
        if not self._points:
            raise FleetError("hash ring has no nodes")
        index = bisect.bisect_right(self._keys, self._key_point(key))
        return self._points[index % len(self._points)][1]

    def nodes_for(self, key: str) -> list[str]:
        """Every node, primary first, in deterministic fallback order."""
        if not self._points:
            return []
        start = bisect.bisect_right(self._keys, self._key_point(key))
        seen: list[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self.nodes):
                    break
        return seen

    def replicas_for(self, key: str, rf: int) -> list[str]:
        """The key's replica set: the first ``rf`` distinct fallback nodes.

        ``replicas_for(key, 1)[0] == node_for(key)`` (the primary), and
        the successor replicas are the next distinct nodes clockwise —
        so membership changes move only the keys whose replica set
        actually touched the changed node.
        """
        return self.nodes_for(key)[: max(1, int(rf))]


class RoundRobin:
    """Thread-safe rotating cursor over a (mutable) item list."""

    def __init__(self, items: Optional[Sequence] = None) -> None:
        self._items = list(items or [])
        self._cursor = itertools.count()
        self._lock = threading.Lock()

    def set_items(self, items: Sequence) -> None:
        with self._lock:
            self._items = list(items)

    def next(self):
        with self._lock:
            if not self._items:
                raise FleetError("round-robin pool is empty")
            return self._items[next(self._cursor) % len(self._items)]

    def ordered(self) -> list:
        """A full rotation starting at the cursor (retry order)."""
        with self._lock:
            if not self._items:
                return []
            start = next(self._cursor) % len(self._items)
            return self._items[start:] + self._items[:start]


class FleetFrontend:
    """Round-robin ``/v1/predict`` proxy over registered serve replicas.

    Routes (an app for :class:`~repro.fleet.protocol.FleetHTTPServer`):

    - ``POST /fleet/v1/register``  — replica self-registration
      (``{name, url, kind, version}``);
    - ``POST /fleet/v1/heartbeat`` — liveness refresh;
    - ``GET  /fleet/v1/members``   — the membership table;
    - ``POST /v1/predict``         — forwarded to the next healthy
      replica, falling through dead ones (prediction is idempotent);
    - ``GET  /healthz``            — 200 iff ≥1 replica is alive; the
      document reports replica count and version drift.
    """

    def __init__(self, members: Optional[MemberTable] = None) -> None:
        self.members = members or MemberTable()
        self._rotation = RoundRobin()
        self._clients: dict[str, FleetClient] = {}
        self._clients_lock = threading.Lock()
        self.forwarded = 0
        self.failed_over = 0
        self.metrics = MetricsRegistry()
        self._m_proxied = self.metrics.counter(
            "fleet_frontend_requests_total",
            "Predict requests by outcome (forwarded / failed_over / "
            "no_replicas).",
            labels=("outcome",),
        )
        self._m_proxy_seconds = self.metrics.histogram(
            "fleet_frontend_proxy_seconds",
            "Wall seconds per forwarded predict round trip.",
        )

    # ------------------------------------------------------------------
    def _client(self, url: str) -> FleetClient:
        with self._clients_lock:
            client = self._clients.get(url)
            if client is None:
                client = FleetClient(url)
                self._clients[url] = client
            return client

    def _refresh_rotation(self) -> list[str]:
        urls = [m.url for m in self.members.members(kind="serve")]
        self._rotation.set_items(urls)
        return urls

    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes, headers) -> tuple:
        path = path.split("?", 1)[0]
        routed = metrics_routes(self.metrics, method, path)
        if routed is not None:
            return routed
        if method == "POST" and path == "/fleet/v1/register":
            document = json.loads(body or b"{}")
            member = self.members.register(
                name=str(document.get("name", "")),
                url=str(document.get("url", "")),
                kind=str(document.get("kind", "serve")),
                version=str(document.get("version", "")),
            )
            _log.info(
                "member_registered", name=member.name, url=member.url,
                kind=member.kind, version=member.version,
            )
            return 200, {"status": "ok", "ttl_s": self.members.ttl_s}, JSON_TYPE
        if method == "POST" and path == "/fleet/v1/heartbeat":
            document = json.loads(body or b"{}")
            known = self.members.heartbeat(
                str(document.get("name", "")), document.get("version")
            )
            if not known:
                return 404, {"status": "unknown"}, JSON_TYPE
            return 200, {"status": "ok"}, JSON_TYPE
        if method == "GET" and path == "/fleet/v1/members":
            return 200, {"members": self.members.describe()}, JSON_TYPE
        if method == "GET" and path == "/healthz":
            replicas = self.members.members(kind="serve")
            versions = self.members.versions(kind="serve")
            healthy = bool(replicas)
            return (
                200 if healthy else 503,
                {
                    "status": "ok" if healthy else "no_replicas",
                    "replicas": len(replicas),
                    "versions": sorted(versions),
                    "version_drift": len(versions) > 1,
                    "forwarded": self.forwarded,
                    "failed_over": self.failed_over,
                },
                JSON_TYPE,
            )
        if method == "POST" and path == "/v1/predict":
            return self._forward_predict(body)
        return 404, {"error": f"no route {path!r}"}, JSON_TYPE

    # ------------------------------------------------------------------
    def _forward_predict(self, body: bytes) -> tuple:
        self._refresh_rotation()
        urls = self._rotation.ordered()
        if not urls:
            self._m_proxied.labels("no_replicas").inc()
            return 503, {"error": "no healthy serve replicas"}, JSON_TYPE
        # The caller's request id rides to the replica verbatim, so one
        # id stitches client -> frontend -> replica in every log line.
        request_id = current_request_id()
        forward_headers = (
            {REQUEST_ID_HEADER: request_id} if request_id else None
        )
        last_error = "unreachable"
        for index, url in enumerate(urls):
            client = self._client(url)
            started = time.perf_counter()
            try:
                status, payload, content_type = client.request(
                    "POST", "/v1/predict", body, JSON_TYPE,
                    headers=forward_headers,
                )
            except TransientError as exc:
                # Dead replica: fall through to the next one and stop
                # routing to it until its next heartbeat revives it.
                last_error = str(exc)
                self.failed_over += index == 0
                if index == 0:
                    self._m_proxied.labels("failed_over").inc()
                _log.warning("replica_unreachable", url=url, error=str(exc))
                continue
            self.forwarded += 1
            self._m_proxied.labels("forwarded").inc()
            self._m_proxy_seconds.labels().observe(
                time.perf_counter() - started
            )
            return status, payload, content_type or JSON_TYPE
        return 503, {"error": f"all replicas failed: {last_error}"}, JSON_TYPE
