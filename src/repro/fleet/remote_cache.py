"""The fleet's shared warm tier: an HTTP blob cache + its store client.

:class:`CacheServer` serves RPCB1-enveloped blobs over HTTP, backed by
any :class:`~repro.cache.CacheStore` (memory by default, disk with a
directory).  :class:`RemoteCacheStore` is the matching client-side tier
that plugs straight into :class:`~repro.cache.HotspotCache`'s store
list, routing each content key to its home node via a consistent-hash
ring (:class:`~repro.fleet.router.HashRing`).

Digest verification happens on **both** ends of the wire:

- the server re-verifies the envelope on every ``PUT`` and rejects a
  corrupt upload with 400 — one worker with a bad NIC cannot poison the
  fleet's shared tier;
- the reading :class:`HotspotCache` verifies every blob coming back
  from ``get`` — a corrupt download (or a corrupt server store) is
  counted as ``remote_corrupt`` and treated as a miss, never decoded.

Every client operation passes the ``fleet.cache`` fault point, and any
failure — injected or real — degrades to a miss/no-op: the remote tier
is an accelerator, never a correctness dependency.
"""

from __future__ import annotations

import urllib.parse
from typing import Optional, Sequence

from repro.cache import CacheStore, MemoryCacheStore, open_blob
from repro.errors import FleetError
from repro.fleet.protocol import BLOB_TYPE, JSON_TYPE, FleetClient, metrics_routes
from repro.fleet.router import HashRing
from repro.obs import get_logger
from repro.resilience import faults
from repro.serve.metrics import MetricsRegistry

_log = get_logger("fleet.cache")

#: Consecutive failures after which a cache node is skipped.
NODE_FAILURE_LIMIT = 3


def _split_blob_path(path: str) -> Optional[tuple[str, str, str]]:
    """``/cache/v1/<kind>/<fingerprint>/<key>`` -> its three components."""
    parts = path.strip("/").split("/")
    if len(parts) != 5 or parts[0] != "cache" or parts[1] != "v1":
        return None
    kind, fingerprint, key = (urllib.parse.unquote(p) for p in parts[2:])
    if not (kind and fingerprint and key):
        return None
    return kind, fingerprint, key


class CacheServer:
    """HTTP blob-cache app for :class:`~repro.fleet.protocol.FleetHTTPServer`.

    Routes::

        GET  /cache/v1/<kind>/<fingerprint>/<key>   blob | 404
        PUT  /cache/v1/<kind>/<fingerprint>/<key>   verify + store
        GET  /cache/v1/stats                        hit/corruption counters
        GET  /healthz                               liveness
    """

    def __init__(self, store: Optional[CacheStore] = None) -> None:
        self.store = store or MemoryCacheStore()
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.rejected_corrupt = 0
        self.metrics = MetricsRegistry()
        self._m_ops = self.metrics.counter(
            "fleet_cache_ops_total",
            "Cache node operations by outcome "
            "(hit / miss / put / rejected_corrupt).",
            labels=("outcome",),
        )

    def handle(self, method: str, path: str, body: bytes, headers) -> tuple:
        path = path.split("?", 1)[0]
        routed = metrics_routes(self.metrics, method, path)
        if routed is not None:
            return routed
        if method == "GET" and path == "/healthz":
            healthy = self.store.healthy()
            return (
                200 if healthy else 503,
                {"status": "ok" if healthy else "degraded"},
                JSON_TYPE,
            )
        if method == "GET" and path == "/cache/v1/stats":
            return 200, self.stats(), JSON_TYPE
        blob_key = _split_blob_path(path)
        if blob_key is None:
            return 404, {"error": f"no route {path!r}"}, JSON_TYPE
        kind, fingerprint, key = blob_key
        if method == "GET":
            self.gets += 1
            blob = self.store.get(kind, fingerprint, key)
            if blob is None:
                self._m_ops.labels("miss").inc()
                return 404, {"error": "miss"}, JSON_TYPE
            self.hits += 1
            self._m_ops.labels("hit").inc()
            return 200, blob, BLOB_TYPE
        if method == "PUT":
            # Server-side digest check: a corrupt upload never lands.
            if open_blob(body) is None:
                self.rejected_corrupt += 1
                self._m_ops.labels("rejected_corrupt").inc()
                return 400, {"error": "corrupt blob envelope"}, JSON_TYPE
            self.store.put(kind, fingerprint, key, body)
            self.puts += 1
            self._m_ops.labels("put").inc()
            return 200, {"status": "ok"}, JSON_TYPE
        return 405, {"error": f"method {method} not allowed"}, JSON_TYPE

    def stats(self) -> dict:
        return {
            "gets": self.gets,
            "hits": self.hits,
            "misses": self.gets - self.hits,
            "puts": self.puts,
            "rejected_corrupt": self.rejected_corrupt,
            "entries": len(self.store) if hasattr(self.store, "__len__") else None,
            "hit_rate": (self.hits / self.gets) if self.gets else 0.0,
        }


class RemoteCacheStore(CacheStore):
    """Client-side remote tier: consistent-hash routed HTTP blob store.

    Plugs into ``HotspotCache(stores=[...])``.  Each key's home node
    comes from the hash ring; on a node failure the lookup falls through
    the ring's deterministic fallback order.  A node failing
    ``NODE_FAILURE_LIMIT`` times in a row is skipped until a later
    success (any successful call through it resets the count).
    """

    name = "remote"

    def __init__(self, urls: Sequence[str], timeout: float = 10.0) -> None:
        urls = [url.rstrip("/") for url in urls]
        if not urls:
            raise FleetError("remote cache tier needs at least one URL")
        self.ring = HashRing(urls)
        self._clients = {url: FleetClient(url, timeout=timeout) for url in urls}
        self._failures = {url: 0 for url in urls}
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.errors = 0

    # ------------------------------------------------------------------
    def _blob_path(self, kind: str, fingerprint: str, key: str) -> str:
        return "/cache/v1/{}/{}/{}".format(
            *(urllib.parse.quote(p, safe="") for p in (kind, fingerprint, key))
        )

    def _node_up(self, url: str) -> bool:
        return self._failures[url] < NODE_FAILURE_LIMIT

    def _mark(self, url: str, ok: bool) -> None:
        self._failures[url] = 0 if ok else self._failures[url] + 1

    def healthy(self) -> bool:
        return any(self._node_up(url) for url in self.ring.nodes)

    # ------------------------------------------------------------------
    def get(self, kind: str, fingerprint: str, key: str) -> Optional[bytes]:
        self.gets += 1
        path = self._blob_path(kind, fingerprint, key)
        for url in self.ring.nodes_for(f"{kind}/{fingerprint}/{key}"):
            if not self._node_up(url):
                continue
            try:
                faults.inject("fleet.cache", op="get", node=url, key=key)
                status, payload, _ = self._clients[url].request("GET", path)
            except Exception as exc:
                self.errors += 1
                self._mark(url, ok=False)
                _log.warning("remote_cache_get_failed", node=url, error=str(exc))
                continue
            self._mark(url, ok=True)
            if status == 200:
                # Raw enveloped bytes: HotspotCache verifies the digest
                # before decoding (corrupt -> remote_corrupt + miss).
                self.hits += 1
                return payload
            return None  # authoritative miss from the key's home node
        return None

    def put(self, kind: str, fingerprint: str, key: str, blob: bytes) -> None:
        path = self._blob_path(kind, fingerprint, key)
        for url in self.ring.nodes_for(f"{kind}/{fingerprint}/{key}"):
            if not self._node_up(url):
                continue
            try:
                faults.inject("fleet.cache", op="put", node=url, key=key)
                status, payload, _ = self._clients[url].request(
                    "PUT", path, blob, BLOB_TYPE
                )
            except Exception as exc:
                self.errors += 1
                self._mark(url, ok=False)
                _log.warning("remote_cache_put_failed", node=url, error=str(exc))
                continue
            self._mark(url, ok=True)
            if status == 200:
                self.puts += 1
            else:
                _log.warning(
                    "remote_cache_put_rejected",
                    node=url,
                    status=status,
                    detail=str(payload[:100]),
                )
            return  # one home write (accepted or rejected) is enough

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "gets": self.gets,
            "hits": self.hits,
            "errors": self.errors,
            "nodes": {url: self._failures[url] for url in self.ring.nodes},
        }

    def node_stats(self) -> dict:
        """``/cache/v1/stats`` of every reachable node, keyed by URL."""
        out: dict = {}
        for url in self.ring.nodes:
            try:
                status, document = self._clients[url].get_json("/cache/v1/stats")
            except Exception:
                continue
            if status == 200:
                out[url] = document
        return out
