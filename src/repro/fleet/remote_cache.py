"""The fleet's shared warm tier: an HTTP blob cache + its store client.

:class:`CacheServer` serves RPCB1-enveloped blobs over HTTP, backed by
any :class:`~repro.cache.CacheStore` (memory by default, disk with a
directory).  :class:`RemoteCacheStore` is the matching client-side tier
that plugs straight into :class:`~repro.cache.HotspotCache`'s store
list, routing each content key to its replica set via a consistent-hash
ring (:class:`~repro.fleet.router.HashRing`).

Churn tolerance
---------------

- **Replication.**  Every ``put`` writes the blob to the key's first
  ``REPLICATION_FACTOR`` distinct ring nodes (primary + successor), so
  one dead node loses no warmth.
- **Read-repair.**  ``get`` falls through the replica set; when a later
  replica serves the hit, the blob is written back to every earlier
  replica that missed (or hinted to it if it is down), healing holes
  left by churn.
- **Half-open recovery.**  A node failing ``NODE_FAILURE_LIMIT`` times
  in a row is *down*: the next ``PROBE_AFTER_SKIPS`` uses skip it (each
  skip counted), after which the node is *half-open* and the next use
  is admitted as a probe.  Probe success re-opens the node (and flushes
  its hint log); failure re-arms the skip counter.  Everything is
  counter-based — no wall clock — so seeded tests stay deterministic.
- **Hinted handoff.**  Writes that could not reach a replica land in a
  bounded per-node hint log and are flushed when the node's probe
  succeeds, so a recovered node is re-warmed instead of staying a cold
  spot.

Digest verification happens on **both** ends of the wire:

- the server re-verifies the envelope on every ``PUT`` (single or
  batch) and rejects a corrupt upload with 400 — one worker with a bad
  NIC cannot poison the fleet's shared tier;
- the reading :class:`HotspotCache` verifies every blob coming back
  from ``get`` — a corrupt download (or a corrupt server store) is
  counted as ``remote_corrupt`` and treated as a miss, never decoded.

``POST /cache/v1/batch`` carries many gets/puts in one RPC (see
:func:`pack_batch`), so a shard costs one round trip per node instead
of one per clip.

Every client operation passes the ``fleet.cache`` fault point (the
server side passes ``fleet.cache_server``, whose ``corrupt`` kind makes
the node serve deliberately rotten bytes), and any failure — injected
or real — degrades to a miss/no-op: the remote tier is an accelerator,
never a correctness dependency.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from collections import OrderedDict
from typing import Optional, Sequence

from repro.cache import CacheStore, MemoryCacheStore, open_blob
from repro.errors import FleetError, InputError
from repro.fleet.protocol import BLOB_TYPE, JSON_TYPE, FleetClient, metrics_routes
from repro.fleet.router import HashRing
from repro.obs import get_logger
from repro.resilience import faults
from repro.serve.metrics import MetricsRegistry

_log = get_logger("fleet.cache")

#: Consecutive failures after which a cache node is down (skipped).
NODE_FAILURE_LIMIT = 3

#: Skipped uses of a down node before it turns half-open (probe-due).
PROBE_AFTER_SKIPS = 4

#: Blobs replicated per key: primary + ring successor.
REPLICATION_FACTOR = 2

#: Per-node hint-log bound (oldest hints dropped first).
HINT_LOG_LIMIT = 512

#: Magic prefix of the ``/cache/v1/batch`` wire framing.
BATCH_MAGIC = b"RPCBATCH1\n"

#: Numeric node states for the ``fleet_cache_node_state`` gauge.
NODE_STATE_VALUES = {"down": 0.0, "half_open": 1.0, "up": 2.0}


def _split_blob_path(path: str) -> Optional[tuple[str, str, str]]:
    """``/cache/v1/<kind>/<fingerprint>/<key>`` -> its three components."""
    parts = path.strip("/").split("/")
    if len(parts) != 5 or parts[0] != "cache" or parts[1] != "v1":
        return None
    kind, fingerprint, key = (urllib.parse.unquote(p) for p in parts[2:])
    if not (kind and fingerprint and key):
        return None
    return kind, fingerprint, key


# ----------------------------------------------------------------------
# batch wire framing
# ----------------------------------------------------------------------


def pack_batch(document: dict, blobs: Sequence[bytes] = ()) -> bytes:
    """Frame a JSON header + concatenated blobs into one batch body.

    Layout: ``RPCBATCH1\\n`` + 4-byte big-endian header length + JSON
    header (which carries ``blob_lengths``) + the raw blobs backtoback.
    The blobs themselves are RPCB1 envelopes, so each one still carries
    its own digest.
    """
    blobs = list(blobs)
    document = dict(document)
    document["blob_lengths"] = [len(blob) for blob in blobs]
    header = json.dumps(document, separators=(",", ":")).encode("utf-8")
    return (
        BATCH_MAGIC
        + len(header).to_bytes(4, "big")
        + header
        + b"".join(blobs)
    )


def unpack_batch(raw: bytes) -> Optional[tuple[dict, list[bytes]]]:
    """Inverse of :func:`pack_batch`; ``None`` on any framing damage."""
    if not raw.startswith(BATCH_MAGIC):
        return None
    offset = len(BATCH_MAGIC)
    if len(raw) < offset + 4:
        return None
    header_len = int.from_bytes(raw[offset : offset + 4], "big")
    offset += 4
    if len(raw) < offset + header_len:
        return None
    try:
        document = json.loads(raw[offset : offset + header_len])
    except (ValueError, UnicodeDecodeError):
        return None
    offset += header_len
    lengths = document.get("blob_lengths")
    if not isinstance(lengths, list):
        return None
    blobs: list[bytes] = []
    for length in lengths:
        if not isinstance(length, int) or length < 0:
            return None
        blobs.append(raw[offset : offset + length])
        offset += length
    if offset != len(raw):
        return None
    return document, blobs


class CacheServer:
    """HTTP blob-cache app for :class:`~repro.fleet.protocol.FleetHTTPServer`.

    Routes::

        GET  /cache/v1/<kind>/<fingerprint>/<key>   blob | 404
        PUT  /cache/v1/<kind>/<fingerprint>/<key>   verify + store
        POST /cache/v1/batch                        many gets/puts, one RPC
        GET  /cache/v1/stats                        hit/corruption counters
        GET  /healthz                               liveness
    """

    def __init__(self, store: Optional[CacheStore] = None) -> None:
        self.store = store or MemoryCacheStore()
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.batches = 0
        self.rejected_corrupt = 0
        self.metrics = MetricsRegistry()
        self._m_ops = self.metrics.counter(
            "fleet_cache_ops_total",
            "Cache node operations by outcome "
            "(hit / miss / put / rejected_corrupt).",
            labels=("outcome",),
        )

    def _serve_blob(self, blob: bytes, key: str) -> bytes:
        """Pass the ``fleet.cache_server`` fault point on the way out.

        A ``corrupt`` fault here rots the payload on the wire — the
        reading tier must catch it via the envelope digest and count it
        as ``remote_corrupt``, never decode it.
        """
        try:
            faults.inject("fleet.cache_server", op="get", key=key)
        except InputError:
            return blob[:-1] + bytes([blob[-1] ^ 0x01])
        return blob

    def handle(self, method: str, path: str, body: bytes, headers) -> tuple:
        path = path.split("?", 1)[0]
        routed = metrics_routes(self.metrics, method, path)
        if routed is not None:
            return routed
        if method == "GET" and path == "/healthz":
            healthy = self.store.healthy()
            return (
                200 if healthy else 503,
                {"status": "ok" if healthy else "degraded"},
                JSON_TYPE,
            )
        if method == "GET" and path == "/cache/v1/stats":
            return 200, self.stats(), JSON_TYPE
        if method == "POST" and path == "/cache/v1/batch":
            return self._handle_batch(body)
        blob_key = _split_blob_path(path)
        if blob_key is None:
            return 404, {"error": f"no route {path!r}"}, JSON_TYPE
        kind, fingerprint, key = blob_key
        if method == "GET":
            self.gets += 1
            blob = self.store.get(kind, fingerprint, key)
            if blob is None:
                self._m_ops.labels("miss").inc()
                return 404, {"error": "miss"}, JSON_TYPE
            self.hits += 1
            self._m_ops.labels("hit").inc()
            return 200, self._serve_blob(blob, key), BLOB_TYPE
        if method == "PUT":
            # Server-side digest check: a corrupt upload never lands.
            if open_blob(body) is None:
                self.rejected_corrupt += 1
                self._m_ops.labels("rejected_corrupt").inc()
                return 400, {"error": "corrupt blob envelope"}, JSON_TYPE
            self.store.put(kind, fingerprint, key, body)
            self.puts += 1
            self._m_ops.labels("put").inc()
            return 200, {"status": "ok"}, JSON_TYPE
        return 405, {"error": f"method {method} not allowed"}, JSON_TYPE

    def _handle_batch(self, body: bytes) -> tuple:
        parsed = unpack_batch(body)
        if parsed is None:
            return 400, {"error": "corrupt batch framing"}, JSON_TYPE
        document, blobs = parsed
        self.batches += 1
        hit_keys: list[list] = []
        hit_blobs: list[bytes] = []
        for entry in document.get("gets") or []:
            kind, fingerprint, key = (str(part) for part in entry)
            self.gets += 1
            blob = self.store.get(kind, fingerprint, key)
            if blob is None:
                self._m_ops.labels("miss").inc()
                continue
            self.hits += 1
            self._m_ops.labels("hit").inc()
            hit_keys.append([kind, fingerprint, key])
            hit_blobs.append(self._serve_blob(blob, key))
        put_ok = 0
        put_rejected = 0
        for entry, blob in zip(document.get("puts") or [], blobs):
            kind, fingerprint, key = (str(part) for part in entry)
            if open_blob(blob) is None:
                self.rejected_corrupt += 1
                put_rejected += 1
                self._m_ops.labels("rejected_corrupt").inc()
                continue
            self.store.put(kind, fingerprint, key, blob)
            self.puts += 1
            put_ok += 1
            self._m_ops.labels("put").inc()
        response = {
            "hits": hit_keys,
            "put_ok": put_ok,
            "put_rejected": put_rejected,
        }
        return 200, pack_batch(response, hit_blobs), BLOB_TYPE

    def stats(self) -> dict:
        return {
            "gets": self.gets,
            "hits": self.hits,
            "misses": self.gets - self.hits,
            "puts": self.puts,
            "batches": self.batches,
            "rejected_corrupt": self.rejected_corrupt,
            "entries": len(self.store) if hasattr(self.store, "__len__") else None,
            "hit_rate": (self.hits / self.gets) if self.gets else 0.0,
        }


class RemoteCacheStore(CacheStore):
    """Client-side remote tier: replicated, self-healing HTTP blob store.

    Plugs into ``HotspotCache(stores=[...])``.  Each key's replica set
    is the first ``rf`` distinct ring nodes; ``put`` writes to all of
    them and ``get`` falls through them, read-repairing earlier
    replicas when a later one serves the hit.

    A node failing ``NODE_FAILURE_LIMIT`` times in a row is *down*.  It
    is **not** blacklisted forever: after ``PROBE_AFTER_SKIPS`` skipped
    uses the node is half-open and the next call through it is admitted
    as a recovery probe — success re-opens the node (and flushes its
    hint log back to it), failure re-arms the skip counter.  The whole
    scheme is counter-based, never wall-clock-based, so seeded tests
    stay deterministic.
    """

    name = "remote"

    def __init__(
        self,
        urls: Sequence[str],
        timeout: float = 10.0,
        rf: int = REPLICATION_FACTOR,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        urls = [url.rstrip("/") for url in urls]
        if not urls:
            raise FleetError("remote cache tier needs at least one URL")
        self.timeout = timeout
        self.rf = max(1, int(rf))
        self.ring = HashRing(urls)
        self._clients = {url: FleetClient(url, timeout=timeout) for url in urls}
        self._failures = {url: 0 for url in urls}
        self._skips = {url: 0 for url in urls}
        self._node_errors = {url: 0 for url in urls}
        self._node_probes = {url: 0 for url in urls}
        self._node_repairs = {url: 0 for url in urls}
        self._hints: dict[str, OrderedDict] = {url: OrderedDict() for url in urls}
        self._lock = threading.Lock()
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.errors = 0
        self.rpcs = 0
        self.batch_rpcs = 0
        self.repairs = 0
        self.probes = 0
        self.hints_recorded = 0
        self.hints_flushed = 0
        self._m_rpcs = None
        self._m_repairs = None
        self._m_node_state = None
        if metrics is not None:
            self._m_rpcs = metrics.counter(
                "fleet_cache_client_rpcs_total",
                "Remote-cache client RPCs by op "
                "(get / put / batch / probe).",
                labels=("op",),
            )
            self._m_repairs = metrics.counter(
                "fleet_cache_repairs_total",
                "Read-repair writes + hint-log flushes to cache nodes.",
            )
            self._m_node_state = metrics.gauge(
                "fleet_cache_node_state",
                "Cache node liveness (2 up, 1 half-open, 0 down).",
                labels=("node",),
            )
            for url in urls:
                self._m_node_state.labels(url).set(NODE_STATE_VALUES["up"])

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def set_nodes(self, urls: Sequence[str]) -> bool:
        """Swap in a new ring membership; ``True`` when it changed.

        Counters and hint logs of retained nodes survive, so a node
        that was down stays down across a topology change.  Thanks to
        consistent hashing only the keys whose replica set touches the
        changed node move.
        """
        urls = [url.rstrip("/") for url in urls if url]
        if not urls:
            return False
        with self._lock:
            if sorted(set(urls)) == self.ring.nodes:
                return False
            self.ring = HashRing(urls)
            for url in self.ring.nodes:
                self._clients.setdefault(url, FleetClient(url, timeout=self.timeout))
                self._failures.setdefault(url, 0)
                self._skips.setdefault(url, 0)
                self._node_errors.setdefault(url, 0)
                self._node_probes.setdefault(url, 0)
                self._node_repairs.setdefault(url, 0)
                self._hints.setdefault(url, OrderedDict())
        _log.info("remote_cache_topology", nodes=list(self.ring.nodes))
        for url in self.ring.nodes:
            self._publish_state(url)
        return True

    def add_node(self, url: str) -> bool:
        """Join one node into the ring; ``True`` when it was new."""
        return self.set_nodes([*self.ring.nodes, url])

    # ------------------------------------------------------------------
    # half-open recovery state machine (all counter-based)
    # ------------------------------------------------------------------
    def _blob_path(self, kind: str, fingerprint: str, key: str) -> str:
        return "/cache/v1/{}/{}/{}".format(
            *(urllib.parse.quote(p, safe="") for p in (kind, fingerprint, key))
        )

    def _replicas(self, kind: str, fingerprint: str, key: str) -> list[str]:
        return self.ring.replicas_for(f"{kind}/{fingerprint}/{key}", self.rf)

    def _node_up(self, url: str) -> bool:
        return self._failures.get(url, 0) < NODE_FAILURE_LIMIT

    def _state_of(self, url: str) -> str:
        if self._node_up(url):
            return "up"
        if self._skips.get(url, 0) >= PROBE_AFTER_SKIPS:
            return "half_open"
        return "down"

    def _publish_state(self, url: str) -> None:
        if self._m_node_state is not None:
            self._m_node_state.labels(url).set(
                NODE_STATE_VALUES[self._state_of(url)]
            )

    def _admit(self, url: str) -> bool:
        """Deterministic gate in front of every node use.

        Up nodes pass.  A down node counts the skipped use; once it has
        been skipped ``PROBE_AFTER_SKIPS`` times it is half-open and
        this call is admitted as the recovery probe (re-arming the skip
        counter so a failed probe waits another full cycle).
        """
        with self._lock:
            if self._node_up(url):
                return True
            if self._skips[url] >= PROBE_AFTER_SKIPS:
                self._skips[url] = 0
                self.probes += 1
                self._node_probes[url] += 1
                probe = True
            else:
                self._skips[url] += 1
                probe = False
        self._publish_state(url)
        if probe:
            if self._m_rpcs is not None:
                self._m_rpcs.labels("probe").inc()
            _log.info("remote_cache_probe", node=url)
        return probe

    def _mark(self, url: str, ok: bool) -> None:
        recovered = False
        with self._lock:
            was_down = not self._node_up(url)
            if ok:
                self._failures[url] = 0
                self._skips[url] = 0
                recovered = was_down
            else:
                self._node_errors[url] = self._node_errors.get(url, 0) + 1
                self._failures[url] = self._failures.get(url, 0) + 1
                self._skips[url] = 0
        self._publish_state(url)
        if recovered:
            _log.info("remote_cache_node_recovered", node=url)
            self._flush_hints(url)

    def healthy(self) -> bool:
        """``True`` while the tier is worth calling.

        When *every* node is down the tier itself would be skipped by
        the cache, so no per-call skip counting could ever arm a probe.
        This method counts those skipped tier uses instead, turning
        true once a node is probe-due — which re-admits the tier and
        lets the probe fire.
        """
        with self._lock:
            if any(self._node_up(url) for url in self.ring.nodes):
                return True
            due = False
            for url in self.ring.nodes:
                if self._skips[url] >= PROBE_AFTER_SKIPS:
                    due = True
                else:
                    self._skips[url] += 1
        return due

    # ------------------------------------------------------------------
    # hinted handoff
    # ------------------------------------------------------------------
    def _hint(self, url: str, kind: str, fingerprint: str, key: str,
              blob: bytes) -> None:
        with self._lock:
            log = self._hints.setdefault(url, OrderedDict())
            log[(kind, fingerprint, key)] = blob
            log.move_to_end((kind, fingerprint, key))
            while len(log) > HINT_LOG_LIMIT:
                log.popitem(last=False)
            self.hints_recorded += 1

    def _flush_hints(self, url: str) -> None:
        """Replay the node's hint log after a successful probe."""
        with self._lock:
            pending = self._hints.get(url)
            if not pending:
                return
            items = list(pending.items())
            pending.clear()
        entries = [
            (kind, fingerprint, key, blob)
            for (kind, fingerprint, key), blob in items
        ]
        sent = self._send_batch_put(url, entries, record_hints=False)
        if sent:
            with self._lock:
                self.hints_flushed += len(entries)
                self.repairs += len(entries)
                self._node_repairs[url] = (
                    self._node_repairs.get(url, 0) + len(entries)
                )
            if self._m_repairs is not None:
                self._m_repairs.labels().inc(len(entries))
            _log.info("remote_cache_hints_flushed", node=url,
                      count=len(entries))

    # ------------------------------------------------------------------
    # single-key ops
    # ------------------------------------------------------------------
    def get(self, kind: str, fingerprint: str, key: str) -> Optional[bytes]:
        self.gets += 1
        path = self._blob_path(kind, fingerprint, key)
        missed_live: list[str] = []
        unreachable: list[str] = []
        for url in self._replicas(kind, fingerprint, key):
            if not self._admit(url):
                unreachable.append(url)
                continue
            try:
                faults.inject("fleet.cache", op="get", node=url, key=key)
                self.rpcs += 1
                if self._m_rpcs is not None:
                    self._m_rpcs.labels("get").inc()
                status, payload, _ = self._clients[url].request("GET", path)
            except Exception as exc:
                self.errors += 1
                self._mark(url, ok=False)
                unreachable.append(url)
                _log.warning("remote_cache_get_failed", node=url,
                             error=str(exc))
                continue
            self._mark(url, ok=True)
            if status == 200:
                # Raw enveloped bytes: HotspotCache verifies the digest
                # before decoding (corrupt -> remote_corrupt + miss).
                self.hits += 1
                self._repair(missed_live, unreachable, kind, fingerprint,
                             key, payload)
                return payload
            missed_live.append(url)
        return None  # every replica answered miss or is unreachable

    def put(self, kind: str, fingerprint: str, key: str, blob: bytes) -> None:
        path = self._blob_path(kind, fingerprint, key)
        for url in self._replicas(kind, fingerprint, key):
            if not self._admit(url):
                self._hint(url, kind, fingerprint, key, blob)
                continue
            try:
                faults.inject("fleet.cache", op="put", node=url, key=key)
                self.rpcs += 1
                if self._m_rpcs is not None:
                    self._m_rpcs.labels("put").inc()
                status, payload, _ = self._clients[url].request(
                    "PUT", path, blob, BLOB_TYPE
                )
            except Exception as exc:
                self.errors += 1
                self._mark(url, ok=False)
                self._hint(url, kind, fingerprint, key, blob)
                _log.warning("remote_cache_put_failed", node=url,
                             error=str(exc))
                continue
            self._mark(url, ok=True)
            if status == 200:
                self.puts += 1
            else:
                _log.warning(
                    "remote_cache_put_rejected",
                    node=url,
                    status=status,
                    detail=str(payload[:100]),
                )

    def _repair(self, missed_live: Sequence[str], unreachable: Sequence[str],
                kind: str, fingerprint: str, key: str, blob: bytes) -> None:
        """Write a deep-replica hit back to the earlier replicas."""
        path = self._blob_path(kind, fingerprint, key)
        for url in unreachable:
            self._hint(url, kind, fingerprint, key, blob)
        for url in missed_live:
            try:
                faults.inject("fleet.cache", op="put", node=url, key=key)
                self.rpcs += 1
                if self._m_rpcs is not None:
                    self._m_rpcs.labels("put").inc()
                status, _, _ = self._clients[url].request(
                    "PUT", path, blob, BLOB_TYPE
                )
            except Exception:
                self.errors += 1
                self._mark(url, ok=False)
                self._hint(url, kind, fingerprint, key, blob)
                continue
            self._mark(url, ok=True)
            if status == 200:
                with self._lock:
                    self.repairs += 1
                    self._node_repairs[url] = self._node_repairs.get(url, 0) + 1
                if self._m_repairs is not None:
                    self._m_repairs.labels().inc()
                _log.info("remote_cache_read_repair", node=url, key=key)

    # ------------------------------------------------------------------
    # batch ops (one RPC per node per shard)
    # ------------------------------------------------------------------
    def _batch_rpc(
        self, url: str, gets: Sequence[tuple] = (), puts: Sequence[tuple] = ()
    ) -> Optional[tuple[dict, list[bytes]]]:
        """One ``POST /cache/v1/batch`` round trip; ``None`` on failure."""
        document = {
            "gets": [[k, f, key] for (k, f, key) in gets],
            "puts": [[k, f, key] for (k, f, key, _) in puts],
        }
        body = pack_batch(document, [blob for (_, _, _, blob) in puts])
        try:
            faults.inject("fleet.cache", op="batch", node=url,
                          key=f"batch:{len(gets)}g{len(puts)}p")
            self.rpcs += 1
            self.batch_rpcs += 1
            if self._m_rpcs is not None:
                self._m_rpcs.labels("batch").inc()
            status, payload, _ = self._clients[url].request(
                "POST", "/cache/v1/batch", body, BLOB_TYPE
            )
        except Exception as exc:
            self.errors += 1
            self._mark(url, ok=False)
            _log.warning("remote_cache_batch_failed", node=url,
                         error=str(exc))
            return None
        self._mark(url, ok=True)
        if status != 200:
            _log.warning("remote_cache_batch_rejected", node=url,
                         status=status)
            return None
        parsed = unpack_batch(payload)
        if parsed is None:
            _log.warning("remote_cache_batch_unparseable", node=url)
            return None
        return parsed

    def get_many(
        self, entries: Sequence[tuple[str, str, str]]
    ) -> dict[tuple[str, str, str], bytes]:
        """Batched multi-get across the ring, with replica fall-through.

        Returns the found blobs keyed by ``(kind, fingerprint, key)``.
        Keys missed at an earlier replica but found at a later one are
        read-repaired (batched per node).
        """
        entries = [tuple(entry) for entry in entries]
        self.gets += len(entries)
        results: dict[tuple[str, str, str], bytes] = {}
        repair_now: dict[str, list[tuple]] = {}
        hint_later: dict[str, list[tuple]] = {}
        tried: dict[tuple, list[tuple[str, bool]]] = {e: [] for e in entries}
        remaining = list(dict.fromkeys(entries))
        for attempt in range(self.rf):
            if not remaining:
                break
            groups: dict[str, list[tuple]] = {}
            exhausted: list[tuple] = []
            for entry in remaining:
                replicas = self._replicas(*entry)
                if attempt >= len(replicas):
                    exhausted.append(entry)
                    continue
                groups.setdefault(replicas[attempt], []).append(entry)
            next_round: list[tuple] = list(exhausted)
            for url, batch_entries in groups.items():
                if not self._admit(url):
                    for entry in batch_entries:
                        tried[entry].append((url, False))
                    next_round.extend(batch_entries)
                    continue
                parsed = self._batch_rpc(url, gets=batch_entries)
                if parsed is None:
                    for entry in batch_entries:
                        tried[entry].append((url, False))
                    next_round.extend(batch_entries)
                    continue
                document, blobs = parsed
                found = {
                    tuple(str(p) for p in entry): blob
                    for entry, blob in zip(document.get("hits") or [], blobs)
                }
                for entry in batch_entries:
                    blob = found.get(entry)
                    if blob is None:
                        tried[entry].append((url, True))
                        next_round.append(entry)
                        continue
                    self.hits += 1
                    results[entry] = blob
                    for earlier_url, live in tried[entry]:
                        target = repair_now if live else hint_later
                        target.setdefault(earlier_url, []).append(
                            (*entry, blob)
                        )
            remaining = [e for e in next_round if e not in results]
        for url, hinted in hint_later.items():
            for (kind, fingerprint, key, blob) in hinted:
                self._hint(url, kind, fingerprint, key, blob)
        for url, repairs in repair_now.items():
            if self._send_batch_put(url, repairs, record_hints=True):
                with self._lock:
                    self.repairs += len(repairs)
                    self._node_repairs[url] = (
                        self._node_repairs.get(url, 0) + len(repairs)
                    )
                if self._m_repairs is not None:
                    self._m_repairs.labels().inc(len(repairs))
        return results

    def _send_batch_put(
        self,
        url: str,
        entries: Sequence[tuple[str, str, str, bytes]],
        record_hints: bool = True,
    ) -> bool:
        if not entries:
            return True
        parsed = self._batch_rpc(url, puts=entries)
        if parsed is None:
            if record_hints:
                for (kind, fingerprint, key, blob) in entries:
                    self._hint(url, kind, fingerprint, key, blob)
            return False
        document, _ = parsed
        self.puts += int(document.get("put_ok", 0))
        return True

    def put_many(
        self, entries: Sequence[tuple[str, str, str, bytes]]
    ) -> None:
        """Batched multi-put: each blob to its full replica set."""
        groups: dict[str, list[tuple]] = {}
        for (kind, fingerprint, key, blob) in entries:
            for url in self._replicas(kind, fingerprint, key):
                groups.setdefault(url, []).append(
                    (kind, fingerprint, key, blob)
                )
        for url, batch in groups.items():
            if not self._admit(url):
                for (kind, fingerprint, key, blob) in batch:
                    self._hint(url, kind, fingerprint, key, blob)
                continue
            self._send_batch_put(url, batch, record_hints=True)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "gets": self.gets,
                "hits": self.hits,
                "puts": self.puts,
                "errors": self.errors,
                "rpcs": self.rpcs,
                "batch_rpcs": self.batch_rpcs,
                "repairs": self.repairs,
                "probes": self.probes,
                "hints_pending": sum(len(h) for h in self._hints.values()),
                "hints_flushed": self.hints_flushed,
                "nodes": {url: self._failures[url] for url in self.ring.nodes},
            }

    def node_health(self) -> dict:
        """Per-node liveness + repair counters (client's view)."""
        with self._lock:
            return {
                url: {
                    "state": self._state_of(url),
                    "failures": self._failures.get(url, 0),
                    "skips": self._skips.get(url, 0),
                    "errors": self._node_errors.get(url, 0),
                    "probes": self._node_probes.get(url, 0),
                    "repairs": self._node_repairs.get(url, 0),
                    "hints_pending": len(self._hints.get(url, ())),
                }
                for url in self.ring.nodes
            }

    def tier_stats(self) -> dict:
        """Extra keys merged into ``HotspotCache.stats_dict()``."""
        return {
            "remote_store_gets": self.gets,
            "remote_store_hits": self.hits,
            "remote_rpcs": self.rpcs,
            "remote_batch_rpcs": self.batch_rpcs,
            "remote_repairs": self.repairs,
            "remote_probes": self.probes,
            "remote_hints_flushed": self.hints_flushed,
            "remote_nodes": self.node_health(),
        }

    def node_stats(self) -> dict:
        """``/cache/v1/stats`` of every reachable node, keyed by URL."""
        out: dict = {}
        for url in self.ring.nodes:
            try:
                status, document = self._clients[url].get_json("/cache/v1/stats")
            except Exception:
                continue
            if status == 200:
                out[url] = document
        return out
