"""Health-checked membership for serve replicas, workers and caches.

:class:`MemberTable` is the coordinator-/front-end-side registry of
fleet peers.  A peer registers once with its role and version (a serve
replica publishes its :meth:`~repro.serve.registry.ModelRegistry.signature`,
a scan worker its scan fingerprint), then heartbeats; a member whose
heartbeat goes stale for ``ttl_s`` drops out of ``members()`` until it
heartbeats again — so routing layers only ever see peers that answered
recently.  Registration is idempotent: re-registering under the same
name (a restarted replica) replaces the previous entry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

#: Default member time-to-live between heartbeats, seconds.
DEFAULT_MEMBER_TTL_S = 10.0


@dataclass
class Member:
    """One registered fleet peer."""

    name: str
    url: str
    kind: str  # "serve" | "worker" | "cache"
    version: str = ""
    registered_unix: float = field(default_factory=time.time)
    #: ``time.monotonic()`` of the last heartbeat (or registration).
    last_seen: float = field(default_factory=time.monotonic)
    heartbeats: int = 0

    def alive(self, ttl_s: float) -> bool:
        return time.monotonic() - self.last_seen < ttl_s


class MemberTable:
    """Thread-safe peer registry with TTL-based liveness."""

    def __init__(self, ttl_s: float = DEFAULT_MEMBER_TTL_S) -> None:
        self.ttl_s = ttl_s
        self._members: dict[str, Member] = {}
        self._lock = threading.Lock()

    def register(
        self, name: str, url: str, kind: str, version: str = ""
    ) -> Member:
        member = Member(name=name, url=url, kind=kind, version=version)
        with self._lock:
            self._members[name] = member
        return member

    def heartbeat(self, name: str, version: Optional[str] = None) -> bool:
        """Refresh a member's lease; False if it was never registered."""
        with self._lock:
            member = self._members.get(name)
            if member is None:
                return False
            member.last_seen = time.monotonic()
            member.heartbeats += 1
            if version is not None:
                member.version = version
            return True

    def remove(self, name: str) -> None:
        with self._lock:
            self._members.pop(name, None)

    def members(
        self, kind: Optional[str] = None, alive_only: bool = True
    ) -> list[Member]:
        """Registered members, alive-first filtered, in name order."""
        with self._lock:
            out = list(self._members.values())
        if kind is not None:
            out = [m for m in out if m.kind == kind]
        if alive_only:
            out = [m for m in out if m.alive(self.ttl_s)]
        return sorted(out, key=lambda m: m.name)

    def expire(self) -> list[str]:
        """Drop dead members; returns the expired names."""
        with self._lock:
            dead = [
                name
                for name, member in self._members.items()
                if not member.alive(self.ttl_s)
            ]
            for name in dead:
                del self._members[name]
        return dead

    def versions(self, kind: Optional[str] = None) -> set[str]:
        """Distinct versions among alive members (replica drift check)."""
        return {m.version for m in self.members(kind=kind) if m.version}

    def describe(self) -> list[dict]:
        """JSON-friendly dump (alive and dead, for status endpoints)."""
        out = []
        for member in self.members(alive_only=False):
            out.append(
                {
                    "name": member.name,
                    "url": member.url,
                    "kind": member.kind,
                    "version": member.version,
                    "alive": member.alive(self.ttl_s),
                    "heartbeats": member.heartbeats,
                    "registered_unix": member.registered_unix,
                }
            )
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)
