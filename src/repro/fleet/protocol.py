"""Wire format + transport helpers shared by every fleet role.

The fleet speaks two payload kinds over plain HTTP/1.1:

- **JSON documents** for control traffic (leases, heartbeats, membership,
  status) — same stdlib ``http`` stack as :mod:`repro.serve`;
- **RPCB1 blobs** for bulk data (pushed shard npz archives, remote cache
  entries) — the cache tier's sha256-enveloped format
  (:func:`repro.cache.wrap_blob` / :func:`repro.cache.open_blob`), so
  every bulk payload is digest-verified on both ends of the wire and a
  corrupt transfer degrades to a miss/retry, never to wrong margins.

Servers subclass nothing: a role implements ``handle(method, path,
body, headers) -> (status, payload, content_type)`` and wraps itself in
:class:`FleetHTTPServer`, which reuses the serve front end's
``SO_REUSEADDR`` + ephemeral-port bind semantics
(:class:`repro.serve.httpd.ReuseAddrHTTPServer`).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler
from typing import Callable, Optional

from repro.errors import FleetError, FleetProtocolError, TransientError
from repro.obs import get_logger, log_context, new_request_id, trace
from repro.obs.fleet import (
    REQUEST_ID_HEADER,
    TRACE_PARENT_HEADER,
    bind_trace_context,
    trace_headers,
)
from repro.obs.trace import enabled as _tracing_enabled
from repro.resilience import faults
from repro.serve.httpd import ReuseAddrHTTPServer

#: Bump on breaking fleet wire-format changes; exchanged in every
#: ``/fleet/v1/config`` handshake.
FLEET_PROTOCOL_VERSION = 1

#: Bulk payloads (shard pushes, cache blobs) above this are rejected.
MAX_BLOB_BYTES = 256 * 1024 * 1024

JSON_TYPE = "application/json"
BLOB_TYPE = "application/x-repro-blob"

_log = get_logger("fleet.protocol")


# ----------------------------------------------------------------------
# server side
# ----------------------------------------------------------------------
class _FleetHandler(BaseHTTPRequestHandler):
    """Routes every request into the owning app's ``handle``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-fleet"

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # fleet servers log through repro.obs, not stderr

    def _dispatch(self, method: str) -> None:
        # Trace context: adopt the caller's request id (or mint one) and
        # bind it into this thread's log context + span stack for the
        # duration of the handler, echoing it on every response — the
        # 413/400/500 error paths included.
        request_id = (self.headers.get(REQUEST_ID_HEADER, "") or "").strip()
        request_id = request_id or new_request_id()
        parent = (self.headers.get(TRACE_PARENT_HEADER, "") or "").strip() or None
        self._request_id = request_id
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BLOB_BYTES:
            self._respond(413, {"error": "payload too large"})
            return
        body = self.rfile.read(length) if length else b""
        app = self.server.app  # type: ignore[attr-defined]
        try:
            with bind_trace_context(request_id, parent), log_context(
                request_id=request_id
            ):
                if _tracing_enabled():
                    with trace(
                        "fleet.rpc",
                        method=method,
                        path=self.path.split("?", 1)[0],
                        request_id=request_id,
                        **({"trace_parent": parent} if parent else {}),
                    ):
                        status, payload, content_type = app.handle(
                            method, self.path, body, self.headers
                        )
                else:
                    status, payload, content_type = app.handle(
                        method, self.path, body, self.headers
                    )
        except FleetProtocolError as exc:
            status, payload, content_type = 400, {"error": str(exc)}, JSON_TYPE
        except Exception as exc:  # one bad request never kills the server
            _log.error(
                "fleet_request_failed",
                path=self.path,
                request_id=request_id,
                error_type=type(exc).__name__,
                error=str(exc),
            )
            status, payload, content_type = 500, {"error": str(exc)}, JSON_TYPE
        self._respond(status, payload, content_type)

    def _respond(
        self, status: int, payload, content_type: str = JSON_TYPE
    ) -> None:
        if isinstance(payload, (dict, list)):
            body = json.dumps(payload).encode("utf-8")
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = payload or b""
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            request_id = getattr(self, "_request_id", None)
            if request_id:
                self.send_header(REQUEST_ID_HEADER, request_id)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # peer vanished mid-response; its retry will re-ask

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802 — stdlib naming
        self._dispatch("PUT")


class FleetHTTPServer:
    """A background-thread HTTP server around one fleet role object.

    ``app.handle(method, path, body, headers)`` returns ``(status,
    payload, content_type)`` where payload is a JSON-able document or
    raw bytes.  Port ``0`` binds ephemerally; read ``.url`` after
    ``start()``.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self.host = host
        self._port = port
        self._httpd: Optional[ReuseAddrHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise FleetError("fleet server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetHTTPServer":
        if self._httpd is not None:
            return self
        self._httpd = ReuseAddrHTTPServer((self.host, self._port), _FleetHandler)
        self._httpd.app = self.app  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-fleet-{type(self.app).__name__}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        # Keep-alive peers would otherwise still be answered by live
        # handler threads — a zombie server, not a stopped one.
        self._httpd.close_connections()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "FleetHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------
class FleetClient:
    """Thread-safe JSON/blob HTTP client for one fleet peer.

    Transport errors retry once on a fresh socket (stale keep-alive),
    then surface as :class:`~repro.errors.TransientError` so callers'
    retry policies treat a flapping peer like any other transient.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        netloc = parsed.netloc or parsed.path
        if ":" not in netloc:
            raise FleetError(f"fleet URL needs host:port, got {url!r}")
        host, port = netloc.rsplit(":", 1)
        self.url = url.rstrip("/")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = JSON_TYPE,
        headers: Optional[dict] = None,
    ) -> tuple[int, bytes, str]:
        """One HTTP round trip: (status, payload bytes, content type)."""
        status, payload, response_headers = self.request_full(
            method, path, body, content_type, headers
        )
        return status, payload, response_headers.get("Content-Type", "")

    def request_full(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = JSON_TYPE,
        headers: Optional[dict] = None,
    ) -> tuple[int, bytes, dict]:
        """Like :meth:`request`, but returns the full response headers.

        Every outbound request is stamped with the thread's trace
        context (``X-Request-Id`` / ``X-Trace-Parent``) when one is
        bound — :func:`repro.obs.fleet.trace_headers` is a no-op dict
        on the untraced path.  Explicit ``headers`` win over stamped
        ones (the frontend forwards its caller's request id verbatim).
        """
        # Chaos point: ``fleet.partition.<host>_<port>`` simulates a
        # network partition toward this one peer — an ``error`` plan
        # makes every RPC to it raise TransientError, which is exactly
        # what a worker sees when its coordinator drops off the network
        # (and what drives its re-homing).  Pattern rules cover a whole
        # peer set: ``fleet.partition.*_8990=error:1.0``.
        if faults.get() is not None:
            faults.inject(f"fleet.partition.{self.host}_{self.port}", path=path)
        merged = dict(trace_headers())
        if body is not None:
            merged["Content-Type"] = content_type
        if headers:
            merged.update(headers)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=merged)
                response = conn.getresponse()
                payload = response.read()
                return response.status, payload, dict(response.headers.items())
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self.close()
                if attempt:
                    raise TransientError(
                        f"fleet peer {self.url} unreachable: {exc}"
                    ) from exc
        raise AssertionError("unreachable")

    def get_json(self, path: str) -> tuple[int, dict]:
        status, payload, _ = self.request("GET", path)
        return status, _decode_json(payload)

    def post_json(self, path: str, document: dict) -> tuple[int, dict]:
        status, payload, _ = self.request(
            "POST", path, json.dumps(document).encode("utf-8")
        )
        return status, _decode_json(payload)

    def post_blob(self, path: str, blob: bytes) -> tuple[int, dict]:
        status, payload, _ = self.request("POST", path, blob, BLOB_TYPE)
        return status, _decode_json(payload)

    def get_blob(self, path: str) -> tuple[int, bytes]:
        """Fetch a raw RPCB1 blob (the standby's shard-mirror path)."""
        status, payload, _ = self.request("GET", path)
        return status, payload


def _decode_json(payload: bytes) -> dict:
    if not payload:
        return {}
    try:
        document = json.loads(payload)
    except ValueError as exc:
        raise FleetProtocolError(f"peer sent invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise FleetProtocolError("peer sent a non-object JSON document")
    return document


#: Content type of the Prometheus text exposition format.
METRICS_TEXT_TYPE = "text/plain; version=0.0.4"


def metrics_routes(registry, method: str, path: str) -> Optional[tuple]:
    """The two metrics routes every fleet role serves, or ``None``.

    - ``GET /metrics`` — Prometheus text exposition (human/scraper);
    - ``GET /metrics/state`` — the lossless JSON state
      (:meth:`~repro.serve.metrics.MetricsRegistry.export_state`) the
      :class:`~repro.obs.fleet.MetricsAggregator` federates from.

    Roles call this first in ``handle`` and fall through on ``None``.
    """
    if method != "GET":
        return None
    if path == "/metrics":
        return 200, registry.render(), METRICS_TEXT_TYPE
    if path == "/metrics/state":
        return 200, registry.export_state(), JSON_TYPE
    return None


def wait_until(
    predicate: Callable[[], bool], timeout_s: float, interval_s: float = 0.05
) -> bool:
    """Poll ``predicate`` until true or ``timeout_s`` elapses."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()
