"""The fleet scan worker: lease, evaluate in-process, push, repeat.

A worker owns a full copy of the scan state (layout, trained model,
config) and proves it matches the coordinator's by sending its own
:func:`~repro.work.shard.scan_fingerprint` with every lease request —
a mismatched worker is rejected with 409 and aborts loudly
(:class:`~repro.errors.FleetHandshakeError`) instead of contributing
margins computed under different state.

Per lease, a background heartbeat thread extends the lease at TTL/3
while the main thread evaluates the shard with
:func:`~repro.work.shard.evaluate_shard` — the exact single-node code
path, minus the clips (the coordinator re-cuts them at merge, so the
result is bit-identical).  A heartbeat answered with ``lost`` makes the
evaluation's push come back ``stale``; both are normal outcomes of
lease reassignment and the worker just asks for the next shard.

Workers take an **ordered coordinator list** (primary first, then any
warm standby).  Every RPC carries the leader epoch adopted at
handshake; when the current coordinator drops off the network
(``TransientError`` after retries) or fences a request with ``409
stale_epoch``, the worker *re-homes*: it cycles the endpoint list for a
leader config (skipping un-promoted standbys), re-verifies the scan
fingerprint, adopts the new epoch, and resumes leasing — completed
shards survive in whichever journal accepted them.

When the coordinator hands out remote cache URLs, the worker attaches a
:class:`~repro.cache.HotspotCache` over a
:class:`~repro.fleet.remote_cache.RemoteCacheStore` (plus an optional
local disk tier), so the whole fleet shares one warm tier.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence, Union

from repro.cache import HotspotCache, wrap_blob
from repro.errors import (
    FleetError,
    FleetHandshakeError,
    FleetProtocolError,
    TransientError,
)
from repro.fleet.protocol import (
    JSON_TYPE,
    FleetClient,
    FleetHTTPServer,
    metrics_routes,
)
from repro.obs import (
    Tracer,
    bind_trace_context,
    get_logger,
    get_tracer,
    set_tracer,
    span_document,
    trace,
)
from repro.obs.trace import enabled as _tracing_enabled
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.serve.metrics import MetricsRegistry
from repro.work.shard import encode_shard_record, evaluate_shard, scan_fingerprint

_log = get_logger("fleet.worker")

#: Lease/push RPCs retry transient transport failures with this policy.
RPC_RETRY = RetryPolicy(attempts=4, base_delay_s=0.1, max_delay_s=2.0)


class CoordinatorChannel:
    """Ordered coordinator endpoints with a failover cursor.

    The worker talks to ``current`` until it proves unreachable or
    stale; ``advance`` rotates to the next endpoint in the ordered list
    (primary first, standbys after).  Cursor reads/writes are single
    int assignments, so the heartbeat thread can share the channel with
    the lease loop without a lock.
    """

    def __init__(
        self, urls: Union[str, Sequence[str]], timeout_s: float = 30.0
    ) -> None:
        if isinstance(urls, str):
            urls = [part.strip() for part in urls.split(",") if part.strip()]
        self.clients = [FleetClient(url, timeout=timeout_s) for url in urls]
        if not self.clients:
            raise FleetError("worker needs at least one coordinator URL")
        self._index = 0

    def __len__(self) -> int:
        return len(self.clients)

    @property
    def current(self) -> FleetClient:
        return self.clients[self._index]

    @property
    def url(self) -> str:
        return self.current.url

    def advance(self) -> None:
        self._index = (self._index + 1) % len(self.clients)


class _WorkerApp:
    """The worker's tiny status/metrics HTTP surface.

    Exposes ``/metrics`` + ``/metrics/state`` (scraped by the
    coordinator's federated view) and ``/healthz``; the URL rides along
    in every lease request so the coordinator discovers it.
    """

    def __init__(self, worker: "FleetWorker") -> None:
        self.worker = worker

    def handle(self, method: str, path: str, body: bytes, headers) -> tuple:
        path = path.partition("?")[0]
        routed = metrics_routes(self.worker.metrics, method, path)
        if routed is not None:
            return routed
        if method == "GET" and path == "/healthz":
            return (
                200,
                {"status": "ok", "worker": self.worker.worker_id},
                JSON_TYPE,
            )
        return 404, {"error": f"no route {path!r}"}, JSON_TYPE


class FleetWorker:
    """One scan worker node, identified by ``worker_id``."""

    def __init__(
        self,
        coordinator_url: Union[str, Sequence[str]],
        detector,
        layout,
        worker_id: str,
        cache_dir: Optional[Union[str, "object"]] = None,
        status_server: bool = True,
        rehome_timeout_s: float = 30.0,
    ) -> None:
        self.channel = CoordinatorChannel(coordinator_url)
        self.detector = detector
        self.layout = layout
        self.worker_id = worker_id
        self.cache_dir = cache_dir
        self.status_server = status_server
        self.rehome_timeout_s = rehome_timeout_s
        self.epoch = 0
        self.rehomes = 0
        self.heartbeat_failures = 0
        self.shards_done = 0
        self.shards_stale = 0
        self._fingerprint = ""
        self._stop = threading.Event()
        self._server: Optional[FleetHTTPServer] = None
        self._request_id: Optional[str] = None
        self._owns_tracer = False
        self._shipped = 0  # spans already POSTed to /fleet/v1/trace
        self._cache = None
        self._remote_store = None
        self.metrics = MetricsRegistry()
        self._m_shards = self.metrics.counter(
            "fleet_worker_shards_total",
            "Shards this worker finished, by outcome (done / stale).",
            labels=("outcome",),
        )
        from repro.fleet.coordinator import SHARD_SECONDS_BUCKETS

        self._m_shard_seconds = self.metrics.histogram(
            "fleet_worker_shard_seconds",
            "Wall seconds spent evaluating each leased shard.",
            buckets=SHARD_SECONDS_BUCKETS,
        )
        self._m_heartbeat_failures = self.metrics.counter(
            "fleet_heartbeat_failures_total",
            "Lease heartbeats that failed transport before reaching the "
            "coordinator.",
        )
        self._m_rehomes = self.metrics.counter(
            "fleet_worker_rehomes_total",
            "Times this worker re-homed to another coordinator endpoint.",
            labels=("reason",),
        )

    @property
    def client(self) -> FleetClient:
        """The coordinator endpoint currently believed to be the leader."""
        return self.channel.current

    def stop(self) -> None:
        self._stop.set()

    @property
    def status_url(self) -> str:
        return self._server.url if self._server is not None else ""

    def _stats(self) -> dict:
        """Self-report shipped with every lease/heartbeat request."""
        stats = {
            "shards_done": self.shards_done,
            "shards_stale": self.shards_stale,
        }
        cache = getattr(self.detector, "cache_", None)
        if cache is not None:
            try:
                stats["cache"] = cache.stats_dict()
            except Exception:
                pass
        return stats

    # ------------------------------------------------------------------
    def _handshake(self) -> dict:
        """Find the fleet leader among the ordered endpoints.

        Cycles the endpoint list until one serves a leader
        ``/fleet/v1/config`` (an un-promoted standby answers
        ``role=standby`` and is skipped), verifies the scan fingerprint
        against it, and adopts its leader epoch.  Raises
        :class:`TransientError` when no leader answers within
        ``rehome_timeout_s``.
        """
        deadline = time.monotonic() + self.rehome_timeout_s
        last = "no coordinator endpoint answered"
        while not self._stop.is_set():
            for _ in range(len(self.channel)):
                client = self.channel.current
                try:
                    status, config = client.get_json("/fleet/v1/config")
                except TransientError as exc:
                    last = f"{client.url}: {exc}"
                    self.channel.advance()
                    continue
                if status != 200:
                    last = f"{client.url}: config HTTP {status}"
                    self.channel.advance()
                    continue
                if str(config.get("role", "primary")) == "standby":
                    last = f"{client.url}: standby, not promoted"
                    self.channel.advance()
                    continue
                self._verify_fingerprint(config)
                self.epoch = int(config.get("epoch", 0))
                _log.info(
                    "worker_homed", worker=self.worker_id, url=client.url,
                    epoch=self.epoch,
                )
                return config
            if time.monotonic() >= deadline:
                raise TransientError(f"no fleet leader reachable: {last}")
            time.sleep(0.2)
        raise TransientError("worker stopped while locating a leader")

    def _verify_fingerprint(self, config: dict) -> None:
        # Adopt the coordinator's compute mode before comparing
        # fingerprints: the mode is part of the model hash, so a worker
        # left on the other mode would 409 every handshake instead of
        # just evaluating the way the coordinator asked.
        mode = str(config.get("compute", "exact"))
        if mode != self.detector.config.features.compute:
            self.detector.set_compute(mode)
        fingerprint = scan_fingerprint(
            self.layout,
            int(config["layer"]),
            self.detector.config,
            self.detector.model_,
            int(config["shard_side"]),
        )
        if fingerprint != config["fingerprint"]:
            raise FleetHandshakeError(
                f"worker {self.worker_id} disagrees with coordinator: "
                f"{fingerprint[:16]} != {str(config['fingerprint'])[:16]}"
            )
        self._fingerprint = fingerprint

    def _rehome(self, reason: str) -> dict:
        """Locate the current leader again after losing this one."""
        self.rehomes += 1
        self._m_rehomes.labels(reason).inc()
        _log.warning(
            "worker_rehoming", worker=self.worker_id, reason=reason,
            epoch=self.epoch,
        )
        if reason == "unreachable":
            # The current endpoint is dark; probing it again first would
            # just spend another connect timeout.
            self.channel.advance()
        return self._handshake()

    def _attach_cache(self, cache_urls: list[str]) -> None:
        if not cache_urls and self.cache_dir is None:
            return
        stores = []
        if cache_urls:
            from repro.fleet.remote_cache import RemoteCacheStore

            self._remote_store = RemoteCacheStore(
                cache_urls, metrics=self.metrics
            )
            stores.append(self._remote_store)
        self._cache = HotspotCache(
            directory=self.cache_dir, stores=stores, write_behind=True
        )
        self.detector.attach_cache(self._cache)

    def _update_cache_topology(self, cache_urls) -> None:
        """Adopt a coordinator-announced cache ring membership change."""
        if not isinstance(cache_urls, list) or not cache_urls:
            return
        urls = [str(url) for url in cache_urls if url]
        if not urls:
            return
        if self._remote_store is None:
            # A cache tier appeared mid-scan (first node joined).
            self._attach_cache(urls)
            if self._remote_store is not None:
                _log.info(
                    "worker_cache_attached", worker=self.worker_id, nodes=urls
                )
            return
        if self._remote_store.set_nodes(urls):
            _log.info(
                "worker_cache_topology", worker=self.worker_id, nodes=urls
            )

    def _flush_cache(self) -> None:
        cache = self._cache or getattr(self.detector, "cache_", None)
        flush = getattr(cache, "flush", None)
        if flush is not None:
            try:
                flush()
            except Exception:  # noqa: BLE001 — cache is best-effort
                pass

    # ------------------------------------------------------------------
    def run(self, poll_interval_s: float = 0.05) -> dict:
        """Work the lease queue until the coordinator reports ``done``.

        Returns a summary dict (shards completed/stale) for logging.
        """
        config = self._handshake()
        self._attach_cache([str(u) for u in config.get("cache_urls", [])])
        layer = int(config["layer"])
        ttl_s = float(config.get("lease_ttl_s", 5.0))

        # Adopt the coordinator's root request id, and — when the scan
        # is traced and this process has no tracer of its own (a real
        # subprocess worker, not an in-process test worker sharing the
        # driver's) — record spans locally and ship them back.
        self._request_id = str(config.get("request_id") or "") or None
        if config.get("trace") and not _tracing_enabled():
            set_tracer(Tracer())
            self._owns_tracer = True
        if self.status_server and self._server is None:
            try:
                self._server = FleetHTTPServer(_WorkerApp(self)).start()
            except OSError:
                self._server = None  # status plane is best-effort

        binding = (
            bind_trace_context(self._request_id) if self._request_id else None
        )
        try:
            while not self._stop.is_set():
                try:
                    status, document = call_with_retry(
                        lambda: self.channel.current.post_json(
                            "/fleet/v1/lease",
                            {
                                "worker": self.worker_id,
                                "fingerprint": self._fingerprint,
                                "epoch": self.epoch,
                                "url": self.status_url,
                                "stats": self._stats(),
                            },
                        ),
                        RPC_RETRY,
                        label="fleet.lease",
                    )
                except TransientError:
                    config = self._rehome("unreachable")
                    layer = int(config["layer"])
                    ttl_s = float(config.get("lease_ttl_s", ttl_s))
                    continue
                if status == 409:
                    if document.get("status") == "stale_epoch":
                        # A new leader took over; adopt its epoch and
                        # keep leasing — completed shards are safe.
                        config = self._rehome("stale_epoch")
                        continue
                    raise FleetHandshakeError(
                        f"coordinator rejected worker {self.worker_id}: "
                        f"{document.get('status')}"
                    )
                if status == 503 and document.get("status") == "standby":
                    # Raced an endpoint that has not promoted yet.
                    config = self._rehome("standby")
                    continue
                if status != 200:
                    raise FleetProtocolError(
                        f"lease request failed with HTTP {status}"
                    )
                self._update_cache_topology(document.get("cache_urls"))
                state = document.get("status")
                if state == "done":
                    break
                if state == "wait":
                    time.sleep(
                        float(document.get("retry_after_s", poll_interval_s))
                    )
                    continue
                if state != "lease":
                    raise FleetProtocolError(
                        f"unexpected lease response {document!r}"
                    )
                self._work_lease(document, layer, ttl_s)
        finally:
            self._flush_cache()
            self._ship_spans()
            if binding is not None:
                binding.__exit__(None, None, None)
            if self._owns_tracer:
                set_tracer(None)
                self._owns_tracer = False
            if self._server is not None:
                self._server.stop()
                self._server = None
        summary = {
            "worker": self.worker_id,
            "shards_done": self.shards_done,
            "shards_stale": self.shards_stale,
            "rehomes": self.rehomes,
            "heartbeat_failures": self.heartbeat_failures,
        }
        _log.info("worker_finished", **summary)
        return summary

    def _ship_spans(self) -> None:
        """POST finished spans since the last ship (own tracer only)."""
        tracer = get_tracer()
        if not self._owns_tracer or not tracer.enabled:
            return
        document = span_document(
            tracer,
            role=f"worker:{self.worker_id}",
            request_id=self._request_id,
            since=self._shipped,
        )
        if not document["spans"]:
            return
        try:
            status, _ = self.client.post_json("/fleet/v1/trace", document)
        except TransientError:
            return  # unshipped spans go with the next push's ship
        if status == 200:
            self._shipped += len(document["spans"])

    # ------------------------------------------------------------------
    def _work_lease(self, lease_doc: dict, layer: int, ttl_s: float) -> None:
        shard_id = int(lease_doc["shard"])
        lease_id = int(lease_doc["lease"])
        anchors = [(int(x), int(y)) for x, y in lease_doc["anchors"]]
        # Chaos point: a ``kill`` plan SIGKILLs this worker the moment it
        # accepts a lease — the scenario the lease TTL exists for.
        faults.inject("fleet.lease", shard=shard_id, worker=self.worker_id)

        lost = threading.Event()
        beat_stop = threading.Event()

        def _beat() -> None:
            while not beat_stop.wait(max(0.05, ttl_s / 3)):
                try:
                    code, answer = self.channel.current.post_json(
                        "/fleet/v1/heartbeat",
                        {
                            "worker": self.worker_id,
                            "shard": shard_id,
                            "lease": lease_id,
                            "epoch": self.epoch,
                            "stats": self._stats(),
                        },
                    )
                except TransientError as exc:
                    # The lease may survive a coordinator blip, but a
                    # flapping coordinator must be visible before leases
                    # start expiring.
                    self.heartbeat_failures += 1
                    self._m_heartbeat_failures.labels().inc()
                    _log.warning(
                        "heartbeat_failed", worker=self.worker_id,
                        shard=shard_id, lease=lease_id, error=str(exc),
                    )
                    continue
                if code == 409 or answer.get("status") in (
                    "lost", "stale_epoch", "standby",
                ):
                    lost.set()
                    return

        beater = threading.Thread(
            target=_beat, name=f"repro-fleet-beat-{shard_id}", daemon=True
        )
        beater.start()
        try:
            with trace(
                "fleet.shard",
                shard=shard_id,
                worker=self.worker_id,
                anchors=len(anchors),
            ):
                record = evaluate_shard(
                    self.detector.config, self.detector.model_, self.layout,
                    layer, anchors,
                )
            record.shard_id = shard_id
            cell = lease_doc.get("cell")
            record.cell = (int(cell[0]), int(cell[1])) if cell else None
            record.geometry_sha = str(lease_doc.get("geometry_sha", ""))
            blob = wrap_blob(encode_shard_record(record))
        finally:
            beat_stop.set()
            # Push this shard's buffered remote-cache writes in one RPC
            # per node, so other workers can hit them.
            self._flush_cache()
        if record.wall_s > 0:
            self._m_shard_seconds.labels().observe(record.wall_s)
        if lost.is_set():
            # The coordinator reassigned this shard; pushing anyway is
            # harmless (first push wins) but skipping saves the transfer.
            self.shards_stale += 1
            self._m_shards.labels("stale").inc()
            _log.warning("lease_lost", shard=shard_id, worker=self.worker_id)
            return
        try:
            status, answer = call_with_retry(
                lambda: self.channel.current.post_blob(
                    f"/fleet/v1/push?shard={shard_id}&lease={lease_id}"
                    f"&epoch={self.epoch}",
                    blob,
                ),
                RPC_RETRY,
                label="fleet.push",
            )
        except TransientError:
            # The coordinator died between lease and push.  Drop the
            # result: the next lease RPC re-homes, and whoever leads
            # next re-leases this shard — first push wins keeps it
            # single-counted.
            self.shards_stale += 1
            self._m_shards.labels("stale").inc()
            _log.warning(
                "push_unreachable", shard=shard_id, worker=self.worker_id
            )
            return
        if status != 200:
            # A 4xx/5xx push (e.g. an injected coordinator fault) leaves
            # the lease alive; the reaper will reassign the shard, so
            # dropping it here is safe — and retrying the whole lease
            # loop is the worker's only job anyway.
            self.shards_stale += 1
            self._m_shards.labels("stale").inc()
            _log.warning(
                "push_rejected", shard=shard_id, status=status,
                detail=str(answer)[:200],
            )
            return
        if answer.get("status") == "stale":
            self.shards_stale += 1
            self._m_shards.labels("stale").inc()
        else:
            self.shards_done += 1
            self._m_shards.labels("done").inc()
        # Ship the spans this shard produced while the trace is fresh —
        # a worker killed mid-scan has already shipped everything up to
        # its last completed shard.
        self._ship_spans()
