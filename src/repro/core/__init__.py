"""The paper's framework: training, feedback, extraction, removal, facade."""

from repro.core.config import (
    DetectorConfig,
    ExtractionConfig,
    RemovalConfig,
)
from repro.core.metrics import DetectionScore, is_hit, score_reports
from repro.core.resample import (
    balancing_class_weights,
    downsample_to_centroids,
    shift_derivatives,
    upsample_hotspots,
)
from repro.core.training import (
    HOTSPOT,
    NON_HOTSPOT,
    MultiKernelModel,
    TrainedKernel,
    train_multi_kernel,
)
from repro.core.feedback import FeedbackKernel, train_feedback_kernel
from repro.core.extraction import (
    ExtractionReport,
    extract_candidate_clips,
    extract_for_detector,
)
from repro.core.removal import (
    discard_redundant,
    merge_into_regions,
    reframe_region,
    region_frame,
    remove_redundant_clips,
    shift_to_gravity,
)
from repro.core.detector import DetectionReport, HotspotDetector, TrainingReport
from repro.core.inspect import Explanation, KernelVerdict, explain_clip
from repro.core.persist import load_detector, save_detector
from repro.core.roc import CurvePoint, area_under_curve, knee_point, sweep_thresholds

__all__ = [
    "DetectorConfig",
    "ExtractionConfig",
    "RemovalConfig",
    "DetectionScore",
    "is_hit",
    "score_reports",
    "shift_derivatives",
    "upsample_hotspots",
    "downsample_to_centroids",
    "balancing_class_weights",
    "HOTSPOT",
    "NON_HOTSPOT",
    "TrainedKernel",
    "MultiKernelModel",
    "train_multi_kernel",
    "FeedbackKernel",
    "train_feedback_kernel",
    "ExtractionReport",
    "extract_candidate_clips",
    "extract_for_detector",
    "merge_into_regions",
    "region_frame",
    "reframe_region",
    "discard_redundant",
    "shift_to_gravity",
    "remove_redundant_clips",
    "HotspotDetector",
    "DetectionReport",
    "TrainingReport",
    "explain_clip",
    "Explanation",
    "KernelVerdict",
    "save_detector",
    "load_detector",
    "sweep_thresholds",
    "CurvePoint",
    "area_under_curve",
    "knee_point",
]
