"""The hotspot-detection facade (Fig. 3).

:class:`HotspotDetector` wires the whole framework together:

- ``fit`` runs the training phase: data shifting, topological
  classification, population balancing, multiple-kernel learning and
  feedback-kernel learning;
- ``detect`` runs the evaluation phase on a layout: density-driven clip
  extraction, multiple-kernel evaluation, feedback filtering, redundant
  clip removal;
- ``score`` additionally grades the reports against ground truth.

Typical use::

    from repro import HotspotDetector, DetectorConfig, generate_benchmark

    bench = generate_benchmark("benchmark1", scale=0.3)
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(bench.training)
    result = detector.score(bench.testing)
    print(result.score.accuracy, result.score.extras)
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.extraction import ExtractionReport, extract_for_detector
from repro.obs import get_logger, trace
from repro.core.feedback import FeedbackKernel, train_feedback_kernel
from repro.core.metrics import DetectionScore, score_reports
from repro.core.removal import remove_redundant_clips
from repro.core.training import MultiKernelModel, train_multi_kernel
from repro.data.synth import TestingLayout
from repro.errors import NotFittedError, ReproError
from repro.layout.clip import Clip, ClipLabel, ClipSet
from repro.layout.layout import Layout


@dataclass
class TrainingReport:
    """Telemetry of one ``fit`` call."""

    hotspot_clusters: int
    nonhotspot_centroids: int
    kernels: int
    feedback_trained: bool
    upsampled_hotspots: int
    train_seconds: float

    def total_rounds(self, model: MultiKernelModel) -> int:
        return sum(len(kernel.history) for kernel in model.kernels)


@dataclass
class DetectionReport:
    """Everything one ``detect`` call produced."""

    reports: list[Clip]
    extraction: ExtractionReport
    flagged_before_feedback: int
    flagged_after_feedback: int
    eval_seconds: float
    score: Optional[DetectionScore] = None
    #: Candidates skipped (not crashed on) for malformed geometry.
    quarantined: int = 0
    #: The feedback kernel errored and was bypassed for this run.
    feedback_degraded: bool = False
    #: Execution backend used ("thread" or "process").
    backend: str = "thread"
    #: Process-backend supervision counters (zero on the thread path).
    worker_restarts: int = 0
    poison_tasks: int = 0
    shards_total: int = 0
    shards_resumed: int = 0
    #: Shards reused from a previous run's journal (incremental scans).
    shards_reused: int = 0
    #: Compute mode the margins were evaluated under ("exact"/"fast").
    compute: str = "exact"
    #: Cache counter deltas for this call (``None`` when no cache attached).
    cache_stats: Optional[dict] = None

    @property
    def report_count(self) -> int:
        return len(self.reports)


@dataclass
class HotspotDetector:
    """The complete machine-learning hotspot-detection framework."""

    config: DetectorConfig = field(default_factory=DetectorConfig)
    model_: Optional[MultiKernelModel] = field(default=None, repr=False)
    feedback_: Optional[FeedbackKernel] = field(default=None, repr=False)
    training_report_: Optional[TrainingReport] = field(default=None, repr=False)
    #: Optional duck-typed metrics sink (``observe(name, seconds)``), e.g.
    #: a :class:`repro.serve.metrics.MetricsRegistry`.  The detector feeds
    #: it ``fit``/``detect`` timings; ``None`` costs nothing.
    metrics_sink_: Optional[object] = field(default=None, repr=False, compare=False)
    #: Optional :class:`repro.cache.HotspotCache` memoizing per-clip
    #: features and per-kernel margin rows by geometry content.  Attach
    #: via :meth:`attach_cache`; ``None`` costs nothing.
    cache_: Optional[object] = field(default=None, repr=False, compare=False)

    def attach_cache(self, cache) -> None:
        """Attach (or detach with ``None``) a shared hotspot cache.

        The cache is threaded into the model's extractor, the margin
        stage and the feedback kernel's extractor, so every repeated
        geometry — across ``detect`` calls, serve requests or scans —
        is extracted and scored once.
        """
        self.cache_ = cache
        self._wire_cache()

    def _wire_cache(self) -> None:
        """Point every fitted component at the current cache (idempotent)."""
        if self.model_ is not None:
            self.model_.cache = self.cache_
            self.model_.extractor.cache = self.cache_
        if self.feedback_ is not None:
            self.feedback_.extractor.cache = self.cache_

    # ------------------------------------------------------------------
    # compute mode
    # ------------------------------------------------------------------
    @property
    def compute(self) -> str:
        """The active margin/extraction compute mode."""
        return self.config.features.compute

    def set_compute(self, mode: str) -> "HotspotDetector":
        """Switch between ``"exact"`` and ``"fast"`` margin evaluation.

        Threads the mode through the config, the fitted model's
        extractor and the feedback kernel's extractor, and drops the
        memoized margin fingerprint — the margin-cache namespace embeds
        the mode (:func:`repro.cache.keys.model_fingerprint`), so a
        switched detector never reads the other mode's cached margins.
        Validated by :class:`~repro.features.vector.FeatureConfig`;
        idempotent; usable before or after ``fit``.
        """
        from dataclasses import replace as _replace

        self.config = self.config.with_compute(mode)
        if self.model_ is not None:
            extractor = self.model_.extractor
            extractor.config = _replace(extractor.config, compute=mode)
            extractor._cache_ids = None
            self.model_.__dict__.pop("_margin_fingerprint", None)
        if self.feedback_ is not None:
            feedback_extractor = self.feedback_.extractor
            feedback_extractor.config = _replace(
                feedback_extractor.config, compute=mode
            )
            feedback_extractor._cache_ids = None
        return self

    def _cache_snapshot(self) -> Optional[dict]:
        if self.cache_ is None:
            return None
        return self.cache_.stats_dict()

    def _cache_delta(self, before: Optional[dict]) -> Optional[dict]:
        if self.cache_ is None or before is None:
            return None
        after = self.cache_.stats_dict()
        # Non-numeric entries (per-node health maps from the remote
        # tier) have no meaningful delta; report their current value.
        return {
            name: (
                value - before.get(name, 0)
                if isinstance(value, (int, float))
                else value
            )
            for name, value in after.items()
        }

    def _observe(self, name: str, seconds: float) -> None:
        sink = self.metrics_sink_
        if sink is not None:
            observe = getattr(sink, "observe", None)
            if callable(observe):
                observe(name, seconds)

    def _increment(self, name: str, amount: float = 1.0) -> None:
        sink = self.metrics_sink_
        if sink is not None:
            increment = getattr(sink, "increment", None)
            if callable(increment):
                increment(name, amount)

    # ------------------------------------------------------------------
    # training phase
    # ------------------------------------------------------------------
    def fit(
        self,
        training: ClipSet,
        checkpoint=None,
        deadline=None,
        resume: bool = True,
    ) -> TrainingReport:
        """Run the training phase on a labelled clip set.

        ``checkpoint``/``deadline``/``resume`` flow into
        :func:`~repro.core.training.train_multi_kernel` — see there for
        the checkpoint/resume and stage-timeout semantics.
        """
        started = time.perf_counter()
        with trace("detector.fit", clips=len(training)) as span:
            self.model_ = train_multi_kernel(
                training,
                self.config,
                checkpoint=checkpoint,
                deadline=deadline,
                resume=resume,
            )
            self.feedback_ = (
                train_feedback_kernel(self.model_, self.config)
                if self.config.use_feedback
                else None
            )
            span.set(
                kernels=len(self.model_.kernels),
                feedback=self.feedback_ is not None,
            )
        if self.cache_ is not None:
            self._wire_cache()
        self.training_report_ = TrainingReport(
            hotspot_clusters=len(self.model_.hotspot_clusters),
            nonhotspot_centroids=len(self.model_.nonhotspot_centroids),
            kernels=len(self.model_.kernels),
            feedback_trained=self.feedback_ is not None,
            upsampled_hotspots=len(self.model_.hotspot_clips),
            train_seconds=time.perf_counter() - started,
        )
        self._observe("detector_fit_seconds", self.training_report_.train_seconds)
        return self.training_report_

    def _require_model(self) -> MultiKernelModel:
        if self.model_ is None:
            raise NotFittedError("HotspotDetector used before fit()")
        # Re-point components at the current cache on every entry: models
        # and feedback kernels can be swapped underneath the detector
        # (registry hot-reload, ``load_detector``), and wiring is three
        # attribute writes.  A cache attached directly to a component is
        # left alone when the detector has none.
        if self.cache_ is not None:
            self._wire_cache()
        return self.model_

    # ------------------------------------------------------------------
    # clip-level prediction
    # ------------------------------------------------------------------
    def margins(self, clips: Sequence[Clip]) -> np.ndarray:
        """Best kernel margin per clip (before feedback)."""
        return self._require_model().margins(clips)

    def predict_clips(
        self, clips: Sequence[Clip], threshold: Optional[float] = None
    ) -> np.ndarray:
        """Boolean hotspot flags, including the feedback stage."""
        model = self._require_model()
        threshold = (
            self.config.decision_threshold if threshold is None else threshold
        )
        if not clips:
            return np.zeros(0, dtype=bool)
        flags = model.margins(clips) >= threshold
        if self.feedback_ is not None and np.any(flags):
            flagged_indices = np.flatnonzero(flags)
            keep = self._feedback_keep([clips[i] for i in flagged_indices])
            if keep is not None:
                flags[flagged_indices[~keep]] = False
        return flags

    def _feedback_keep(self, flagged: Sequence[Clip]) -> Optional[np.ndarray]:
        """The feedback kernel's keep mask, or ``None`` on degradation.

        The feedback kernel is a precision refinement; when it errors
        (corrupt state, injected fault) the detector degrades gracefully
        to the primary kernel verdicts instead of failing the request.
        """
        assert self.feedback_ is not None
        try:
            return np.asarray(self.feedback_.keep_mask(flagged), dtype=bool)
        except ReproError as exc:
            get_logger("detector").error(
                "feedback_degraded", error=str(exc), flagged=len(flagged)
            )
            self._increment("feedback_degraded_total")
            return None

    # ------------------------------------------------------------------
    # layout-level evaluation
    # ------------------------------------------------------------------
    def detect(
        self,
        layout: Layout,
        layer: int = 1,
        threshold: Optional[float] = None,
        quarantine=None,
        work=None,
        scan=None,
    ) -> DetectionReport:
        """Evaluate a full layout and return hotspot reports.

        ``quarantine`` is an optional
        :class:`~repro.resilience.quarantine.QuarantineReport`; malformed
        candidate clips are recorded there and skipped instead of failing
        the whole evaluation.

        ``work`` is an optional :class:`repro.work.ScanOptions`; passing
        one (or configuring ``backend="process"``) runs extraction and
        margin evaluation as a crash-isolated, journaled sharded scan on
        a :class:`repro.work.SupervisedPool` — same hotspot set, but a
        worker crash, hang or poison clip no longer kills the run.

        ``scan`` is an optional precomputed
        :class:`~repro.work.ScanResult` (e.g. from a
        :class:`repro.fleet.FleetCoordinator`); thresholding, feedback
        filtering and redundancy removal then run on its margins through
        this exact code path, so a distributed scan's report is
        bit-identical to a local one.
        """
        model = self._require_model()
        wanted = getattr(work, "compute", None) if work is not None else None
        if wanted and wanted != self.config.features.compute:
            # Apply the per-scan mode override to the whole evaluation —
            # margins, feedback filtering, cache routing — then restore
            # the configured mode.
            previous = self.config.features.compute
            self.set_compute(wanted)
            try:
                return self.detect(layout, layer, threshold, quarantine, work, scan)
            finally:
                self.set_compute(previous)
        threshold = (
            self.config.decision_threshold if threshold is None else threshold
        )
        if scan is not None:
            backend = "fleet"
        elif work is not None or self.config.backend == "process":
            backend = "process"
        else:
            backend = "thread"
        started = time.perf_counter()
        cache_before = self._cache_snapshot()
        compute = self.config.features.compute
        with trace(
            "detector.detect", layer=layer, threshold=threshold, compute=compute
        ) as span:
            if backend in ("process", "fleet"):
                if scan is None:
                    from repro.work.shard import ScanOptions, run_sharded_scan

                    options = (
                        work
                        if work is not None
                        else ScanOptions(workers=self.config.worker_count)
                    )
                    scan = run_sharded_scan(
                        self, layout, layer=layer, quarantine=quarantine,
                        options=options,
                    )
                extraction = ExtractionReport(
                    clips=scan.clips,
                    anchor_count=scan.anchor_count,
                    rejected_density=scan.rejected_density,
                    rejected_count=scan.rejected_count,
                    rejected_boundary=scan.rejected_boundary,
                    quarantined=scan.quarantined,
                )
                candidates = scan.clips
                margins = scan.margins
            else:
                extraction = extract_for_detector(
                    layout, self.config, layer, quarantine=quarantine
                )
                candidates = extraction.clips

                with trace("detect.margins", candidates=len(candidates)):
                    if self.config.parallel and len(candidates) > 64:
                        chunk = (len(candidates) + self.config.worker_count - 1) // self.config.worker_count
                        parts = [
                            candidates[i : i + chunk]
                            for i in range(0, len(candidates), chunk)
                        ]
                        with ThreadPoolExecutor(max_workers=self.config.worker_count) as pool:
                            margin_parts = list(pool.map(model.margins, parts))
                        margins = np.concatenate(margin_parts) if margin_parts else np.zeros(0)
                    else:
                        margins = model.margins(candidates)
            flags = margins >= threshold
            flagged = [clip for clip, f in zip(candidates, flags) if f]
            before_feedback = len(flagged)

            feedback_degraded = False
            if self.feedback_ is not None and flagged:
                with trace("detect.feedback", flagged=before_feedback):
                    keep = self._feedback_keep(flagged)
                    if keep is None:
                        feedback_degraded = True
                    else:
                        flagged = [clip for clip, k in zip(flagged, keep) if k]
            after_feedback = len(flagged)

            if self.config.use_removal and flagged:
                def clip_factory(core):
                    return layout.cut_clip_at_core(self.config.spec, core, layer)

                reports = remove_redundant_clips(
                    flagged, self.config.spec, self.config.removal, clip_factory
                )
            else:
                reports = flagged
            reports = [r.with_label(ClipLabel.HOTSPOT) for r in reports]
            span.set(
                candidates=len(candidates),
                flagged_before_feedback=before_feedback,
                flagged_after_feedback=after_feedback,
                reports=len(reports),
                quarantined=extraction.quarantined,
                feedback_degraded=feedback_degraded,
                backend=backend,
            )
        if extraction.quarantined:
            self._increment("quarantined_inputs_total", extraction.quarantined)
        if scan is not None:
            self._increment("worker_restarts_total", scan.stats.worker_restarts)
            self._increment("poison_tasks_total", scan.stats.poison_tasks)
            self._increment("shards_resumed", scan.shards_resumed)
            if scan.shards_reused:
                self._increment("shards_reused_total", scan.shards_reused)
        self._observe("detector_detect_seconds", time.perf_counter() - started)
        return DetectionReport(
            reports=reports,
            extraction=extraction,
            flagged_before_feedback=before_feedback,
            flagged_after_feedback=after_feedback,
            eval_seconds=time.perf_counter() - started,
            quarantined=extraction.quarantined,
            feedback_degraded=feedback_degraded,
            backend=backend,
            worker_restarts=scan.stats.worker_restarts if scan else 0,
            poison_tasks=scan.stats.poison_tasks if scan else 0,
            shards_total=scan.shards_total if scan else 0,
            shards_resumed=scan.shards_resumed if scan else 0,
            shards_reused=scan.shards_reused if scan else 0,
            compute=compute,
            cache_stats=self._cache_delta(cache_before),
        )

    def score(
        self,
        testing: TestingLayout,
        layer: int = 1,
        threshold: Optional[float] = None,
    ) -> DetectionReport:
        """Detect on a testing layout and grade against its ground truth."""
        report = self.detect(testing.layout, layer, threshold)
        report.score = score_reports(
            report.reports, testing.hotspot_cores(), testing.area_um2
        )
        return report
