"""Trained-model persistence: save/load a fitted detector without pickle.

A trained :class:`~repro.core.detector.HotspotDetector` is a bundle of
small numpy arrays (support vectors, dual coefficients, scaler state) and
plain metadata (schemas, gates, config).  It serialises to a single
``.npz`` archive whose ``meta`` entry is a JSON document and whose other
entries are the arrays — portable, diffable, and safe to load from
untrusted sources (no code execution on load, unlike pickle).
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.feedback import FeedbackKernel
from repro.core.training import MultiKernelModel, TrainedKernel
from repro.errors import ConfigError, NotFittedError
from repro.features.vector import FeatureConfig, FeatureExtractor, FeatureSchema
from repro.mtcg.rules import FeatureType
from repro.svm.model import SupportVectorClassifier
from repro.svm.scaling import MinMaxScaler, StandardScaler
from repro.topology.cluster import TopologicalClassifier

#: Format version; bump on breaking layout changes.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# component encoders
# ----------------------------------------------------------------------


def _encode_schema(schema: FeatureSchema) -> dict:
    return {ftype.value: count for ftype, count in schema.counts.items()}


def _decode_schema(payload: dict) -> FeatureSchema:
    return FeatureSchema({FeatureType(name): count for name, count in payload.items()})


def _encode_svc(model: SupportVectorClassifier, arrays: dict, prefix: str) -> dict:
    if model.support_vectors_ is None or model.dual_coef_ is None:
        raise NotFittedError("cannot persist an unfitted classifier")
    arrays[f"{prefix}_sv"] = model.support_vectors_
    arrays[f"{prefix}_coef"] = model.dual_coef_
    meta = {
        "C": model.C,
        "gamma": model.gamma,
        "kernel": model.kernel,
        "bias": model.bias_,
        "far_field_floor": model.far_field_floor,
        "scaler": None,
    }
    scaler = model.scaler_
    if isinstance(scaler, MinMaxScaler):
        arrays[f"{prefix}_smin"] = scaler.min_
        arrays[f"{prefix}_sspan"] = scaler.span_
        meta["scaler"] = "minmax"
    elif isinstance(scaler, StandardScaler):
        arrays[f"{prefix}_smin"] = scaler.mean_
        arrays[f"{prefix}_sspan"] = scaler.scale_
        meta["scaler"] = "standard"
    return meta


def _decode_svc(meta: dict, arrays, prefix: str) -> SupportVectorClassifier:
    model = SupportVectorClassifier(
        C=meta["C"],
        gamma=meta["gamma"],
        kernel=meta["kernel"],
        far_field_floor=meta["far_field_floor"],
        scale_features="none",
    )
    model.support_vectors_ = arrays[f"{prefix}_sv"]
    model.dual_coef_ = arrays[f"{prefix}_coef"]
    model.bias_ = meta["bias"]
    if meta["scaler"] == "minmax":
        scaler = MinMaxScaler()
        scaler.min_ = arrays[f"{prefix}_smin"]
        scaler.span_ = arrays[f"{prefix}_sspan"]
        model.scaler_ = scaler
    elif meta["scaler"] == "standard":
        scaler = StandardScaler()
        scaler.mean_ = arrays[f"{prefix}_smin"]
        scaler.scale_ = arrays[f"{prefix}_sspan"]
        model.scaler_ = scaler
    return model


def _encode_key_set(key_set: Optional[frozenset]) -> Optional[list]:
    if key_set is None:
        return None
    # A canonical key is a 4-tuple of int tuples; JSON-encode as lists.
    return sorted([list(side) for side in key] for key in key_set)


def _decode_key_set(payload: Optional[list]) -> Optional[frozenset]:
    if payload is None:
        return None
    return frozenset(tuple(tuple(side) for side in key) for key in payload)


def _encode_feature_config(config: FeatureConfig) -> dict:
    return {
        "region": config.region,
        "context_margin": config.context_margin,
        "diagonal_max_gap": config.diagonal_max_gap,
        "include_density_grid": config.include_density_grid,
        "density_resolution": config.density_resolution,
        "canonical_orientation": config.canonical_orientation,
        "compute": config.compute,
    }


def _decode_feature_config(payload: dict) -> FeatureConfig:
    return FeatureConfig(**payload)


def encode_trained_kernel(kernel: TrainedKernel, arrays: dict, prefix: str) -> dict:
    """Encode one kernel into ``arrays`` (mutated) plus a JSON-safe meta.

    Shared by full-detector archives and per-cluster training
    checkpoints (:mod:`repro.resilience.checkpoint`).
    """
    import dataclasses

    return {
        "cluster_index": kernel.cluster_index,
        "schema": _encode_schema(kernel.schema),
        "svc": _encode_svc(kernel.model, arrays, prefix),
        "key_set": _encode_key_set(kernel.key_set),
        "hotspot_count": kernel.hotspot_count,
        "nonhotspot_count": kernel.nonhotspot_count,
        "history": [dataclasses.asdict(round_) for round_ in kernel.history],
    }


def decode_trained_kernel(meta: dict, arrays, prefix: str) -> TrainedKernel:
    """Inverse of :func:`encode_trained_kernel`."""
    from repro.svm.grid_search import TrainingRound

    return TrainedKernel(
        cluster_index=meta["cluster_index"],
        schema=_decode_schema(meta["schema"]),
        model=_decode_svc(meta["svc"], arrays, prefix),
        key_set=_decode_key_set(meta["key_set"]),
        hotspot_count=meta["hotspot_count"],
        nonhotspot_count=meta["nonhotspot_count"],
        history=[TrainingRound(**round_) for round_ in meta.get("history") or []],
    )


# ----------------------------------------------------------------------
# save / load
# ----------------------------------------------------------------------


def save_detector(
    detector: HotspotDetector,
    path: Union[str, Path],
    name: Optional[str] = None,
) -> None:
    """Persist a fitted detector to a ``.npz`` archive.

    ``name`` labels the archive for model registries (``repro serve``);
    it is advisory metadata and does not affect loading.
    """
    model = detector.model_
    if model is None:
        raise NotFittedError("cannot save an unfitted detector")
    arrays: dict = {}
    kernels_meta = [
        encode_trained_kernel(kernel, arrays, f"k{index}")
        for index, kernel in enumerate(model.kernels)
    ]
    feedback_meta = None
    if detector.feedback_ is not None:
        feedback_meta = {
            "schema": _encode_schema(detector.feedback_.schema),
            "svc": _encode_svc(detector.feedback_.model, arrays, "fb"),
            "features": _encode_feature_config(detector.feedback_.extractor.config),
            "extras_used": detector.feedback_.extras_used,
            "hotspots_used": detector.feedback_.hotspots_used,
        }
    meta = {
        "format": FORMAT_VERSION,
        "decision_threshold": detector.config.decision_threshold,
        "spec": {
            "core_side": detector.config.spec.core_side,
            "clip_side": detector.config.spec.clip_side,
        },
        "features": _encode_feature_config(model.extractor.config),
        "kernels": kernels_meta,
        "feedback": feedback_meta,
        # Ablation switches travel with the model so a reloaded detector
        # evaluates exactly like the saved one (``use_removal`` changes
        # ``detect`` output; the others keep the config honest).
        "switches": {
            "use_topology": detector.config.use_topology,
            "use_feedback": detector.config.use_feedback,
            "use_removal": detector.config.use_removal,
        },
        # Advisory registry metadata (``repro serve``, ``info``).
        "registry": {
            "name": name,
            "created_unix": time.time(),
            "kernels": len(model.kernels),
            "feedback": feedback_meta is not None,
        },
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_detector(
    path: Union[str, Path], config: Optional[DetectorConfig] = None
) -> HotspotDetector:
    """Load a detector saved by :func:`save_detector`.

    ``config`` overrides runtime knobs (threshold, parallelism); the
    persisted feature configuration and kernels always win for anything
    affecting the model's numerical behaviour.
    """
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    try:
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
    except (KeyError, ValueError) as exc:
        raise ConfigError(f"not a detector archive: {exc}") from exc
    if meta.get("format") != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported detector archive format {meta.get('format')!r}"
        )

    from repro.layout.clip import ClipSpec

    spec = ClipSpec(**meta["spec"])
    features = _decode_feature_config(meta["features"])
    base = config or DetectorConfig()
    from dataclasses import replace

    switches = meta.get("switches") or {}
    detector_config = replace(
        base,
        spec=spec,
        features=features,
        decision_threshold=meta["decision_threshold"],
        use_topology=switches.get("use_topology", base.use_topology),
        use_feedback=switches.get("use_feedback", base.use_feedback),
        use_removal=switches.get("use_removal", base.use_removal),
    )

    kernels = [
        decode_trained_kernel(kernel_meta, arrays, f"k{index}")
        for index, kernel_meta in enumerate(meta["kernels"])
    ]
    model = MultiKernelModel(
        kernels=kernels,
        hotspot_clips=[],
        hotspot_clusters=[],
        nonhotspot_centroids=[],
        extractor=FeatureExtractor(features),
        classifier=TopologicalClassifier(detector_config.classifier),
    )
    feedback = None
    if meta["feedback"] is not None:
        fb = meta["feedback"]
        feedback = FeedbackKernel(
            schema=_decode_schema(fb["schema"]),
            model=_decode_svc(fb["svc"], arrays, "fb"),
            extractor=FeatureExtractor(_decode_feature_config(fb["features"])),
            extras_used=fb["extras_used"],
            hotspots_used=fb["hotspots_used"],
        )
    detector = HotspotDetector(detector_config)
    detector.model_ = model
    detector.feedback_ = feedback
    return detector


def read_archive_info(path: Union[str, Path]) -> dict:
    """Describe a detector archive without constructing the detector.

    Model registries and ``repro info`` use this to show what an archive
    holds (kernel count, spec, registry metadata) at ``stat`` cost rather
    than full model-load cost.
    """
    with np.load(path) as archive:
        try:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        except (KeyError, ValueError) as exc:
            raise ConfigError(f"not a detector archive: {exc}") from exc
    if meta.get("format") != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported detector archive format {meta.get('format')!r}"
        )
    return {
        "format": meta["format"],
        "spec": dict(meta["spec"]),
        "decision_threshold": meta["decision_threshold"],
        "kernels": len(meta["kernels"]),
        "feedback": meta["feedback"] is not None,
        "switches": meta.get("switches"),
        "registry": meta.get("registry"),
    }
