"""Population balancing (Section III-D3).

Two halves:

- **Upsampling** hotspots: each hotspot training pattern is shifted
  slightly upward, downward, leftward and rightward to create derivatives
  *before* topological classification.  This both multiplies the minority
  class and injects the "adequate fuzziness" that compensates for the
  clip-extraction anchoring error at evaluation time.
- **Downsampling** nonhotspots: after topological classification, only the
  centroid pattern of each nonhotspot cluster is kept, eliminating
  redundant patterns and the noise they contribute.
"""

from __future__ import annotations

from typing import Sequence

from repro.layout.clip import Clip
from repro.topology.cluster import Cluster


def shift_derivatives(clip: Clip, amount: int) -> list[Clip]:
    """The four shifted derivatives of a training pattern.

    Returns the original plus up/down/left/right shifts by ``amount`` DBU
    (the paper uses lc/10 = 120 nm).  ``amount == 0`` returns only the
    original.
    """
    if amount == 0:
        return [clip]
    return [
        clip,
        clip.shifted(0, amount),
        clip.shifted(0, -amount),
        clip.shifted(amount, 0),
        clip.shifted(-amount, 0),
    ]


def upsample_hotspots(hotspots: Sequence[Clip], amount: int) -> list[Clip]:
    """Shift-upsample every hotspot pattern (originals first)."""
    out: list[Clip] = []
    for clip in hotspots:
        out.extend(shift_derivatives(clip, amount))
    return out


def downsample_to_centroids(
    clips: Sequence[Clip], clusters: Sequence[Cluster]
) -> list[Clip]:
    """Keep only each cluster's centroid pattern.

    ``clusters`` must have been produced by classifying exactly ``clips``
    (member indices index into it).
    """
    return [clips[cluster.centroid_member()] for cluster in clusters]


def balancing_class_weights(
    hotspot_count: int, nonhotspot_count: int
) -> dict[int, float]:
    """Per-class C multipliers equalising total class penalty.

    Applied on top of resampling for clusters that remain imbalanced
    (e.g. a two-hotspot cluster against dozens of nonhotspot centroids).
    """
    if hotspot_count <= 0 or nonhotspot_count <= 0:
        return {}
    if hotspot_count >= nonhotspot_count:
        return {-1: hotspot_count / nonhotspot_count}
    return {1: nonhotspot_count / hotspot_count}
