"""Hit/extra scoring per the contest definitions (Section II).

- A reported hotspot is a **hit** when its clip fully covers the core of an
  actual hotspot and the two cores overlap (Fig. 2).
- **Accuracy** is hits over actual hotspots (each actual hotspot counts at
  most once however many reports hit it).
- An **extra** is a report that hits no actual hotspot; the **false
  alarm** is extras over testing-layout area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.geometry.rect import Rect
from repro.layout.clip import Clip


@dataclass(frozen=True)
class DetectionScore:
    """Scoring of one detection run against ground truth."""

    hits: int
    extras: int
    actual_hotspots: int
    layout_area_um2: float

    @property
    def accuracy(self) -> float:
        """Fraction of actual hotspots that were hit (Definition 2)."""
        if self.actual_hotspots == 0:
            return 1.0
        return self.hits / self.actual_hotspots

    @property
    def false_alarm_per_um2(self) -> float:
        """Extras per square micron of layout (Definition 3)."""
        if self.layout_area_um2 <= 0:
            return 0.0
        return self.extras / self.layout_area_um2

    @property
    def hit_extra_ratio(self) -> float:
        """Hits per extra — the secondary objective of Table II."""
        if self.extras == 0:
            return float("inf") if self.hits else 0.0
        return self.hits / self.extras

    def as_row(self) -> dict:
        """Table II-style result row."""
        return {
            "hit": self.hits,
            "extra": self.extras,
            "accuracy": round(self.accuracy, 4),
            "hit/extra": round(self.hit_extra_ratio, 4)
            if self.extras
            else float("inf"),
            "false_alarm_per_um2": round(self.false_alarm_per_um2, 6),
        }


def is_hit(report: Clip, actual_core: Rect) -> bool:
    """Whether one reported clip hits one actual hotspot core (Fig. 2)."""
    return report.window.contains_rect(actual_core) and report.core.overlaps(
        actual_core
    )


def score_reports(
    reports: Sequence[Clip],
    actual_cores: Sequence[Rect],
    layout_area_um2: float,
) -> DetectionScore:
    """Score a report list against ground-truth hotspot cores.

    Hits are counted over *actual hotspots* (one hit per actual hotspot at
    most); a report hitting several actual cores credits all of them, per
    the contest's scoring script semantics.
    """
    hit_actuals: set[int] = set()
    extras = 0
    for report in reports:
        matched = False
        for index, core in enumerate(actual_cores):
            if is_hit(report, core):
                hit_actuals.add(index)
                matched = True
        if not matched:
            extras += 1
    return DetectionScore(
        hits=len(hit_actuals),
        extras=extras,
        actual_hotspots=len(actual_cores),
        layout_area_um2=layout_area_um2,
    )
