"""Feedback-kernel learning (Section III-D4, Fig. 9(b)-(c)).

After the multiple kernels are trained, a self-evaluation pass runs the
nonhotspot centroids back through them.  Centroids still classified as
hotspots are *extras*: patterns whose core region looks like a hotspot and
can only be told apart by their ambit (Fig. 10).  The feedback kernel is
trained on full-clip (core + ambit) features:

- nonhotspot side: the extras, re-clustered *with ambit information*, and
  downsampled to sub-cluster centroids;
- hotspot side: the hotspots of every kernel that produced extras.

At evaluation, clips flagged by the multiple kernels are passed through
the feedback kernel, which may reclaim them as nonhotspots — reducing the
false alarm while the multiple kernels' hits stand.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.resample import balancing_class_weights
from repro.core.training import HOTSPOT, NON_HOTSPOT, MultiKernelModel
from repro.features.vector import FeatureConfig, FeatureExtractor, FeatureSchema
from repro.layout.clip import Clip
from repro.obs import trace
from repro.svm.grid_search import IterativeConfig, train_iterative
from repro.svm.model import SupportVectorClassifier
from repro.topology.cluster import ClassifierConfig, TopologicalClassifier


@dataclass
class FeedbackKernel:
    """The trained ambit-aware false-alarm filter."""

    schema: FeatureSchema
    model: SupportVectorClassifier
    extractor: FeatureExtractor
    extras_used: int = 0
    hotspots_used: int = 0

    def _fast(self) -> bool:
        return getattr(self.extractor.config, "compute", "exact") == "fast"

    def margins(self, clips: Sequence[Clip]) -> np.ndarray:
        if not clips:
            return np.zeros(0)
        matrix = np.vstack(
            [self.extractor.vectorize_clip(clip, self.schema) for clip in clips]
        )
        if self._fast():
            return self.model.decision_function_fast(matrix)
        return self.model.decision_function(matrix)

    def keep_mask(self, clips: Sequence[Clip], threshold: float = 0.0) -> np.ndarray:
        """True where a flagged clip should *stay* a hotspot report.

        The feedback kernel only reclaims clips it has evidence about:
        a clip far from every feedback support vector is kept — the
        primary kernels flagged it, and overruling them with no evidence
        would sacrifice hits (the paper's removal/feedback stages must not
        reduce accuracy).
        """
        if not clips:
            return np.zeros(0, dtype=bool)
        matrix = np.vstack(
            [self.extractor.vectorize_clip(clip, self.schema) for clip in clips]
        )
        if self._fast():
            margins, similarity = self.model.decision_and_similarity_fast(matrix)
        else:
            margins = self.model.decision_function(matrix)
            similarity = self.model.support_similarity(matrix)
        unknown = similarity < max(self.model.far_field_floor, 0.05)
        return (margins >= threshold) | unknown


def _ambit_extractor(config: DetectorConfig) -> FeatureExtractor:
    """Feature extractor over the core-plus-inner-ambit context window."""
    features = replace(config.features, region="context")
    return FeatureExtractor(features)


def _ambit_classifier(config: DetectorConfig) -> TopologicalClassifier:
    """Topological classifier that sees the ambit (Fig. 9(c))."""
    base = config.classifier
    ambit_config = ClassifierConfig(
        grid_resolution=base.grid_resolution,
        radius_threshold=base.radius_threshold,
        expected_cluster_count=base.expected_cluster_count,
        recompute_centroids=base.recompute_centroids,
        use_ambit=True,
        pairwise_sample_limit=base.pairwise_sample_limit,
    )
    return TopologicalClassifier(ambit_config)


def train_feedback_kernel(
    model: MultiKernelModel,
    config: DetectorConfig,
) -> Optional[FeedbackKernel]:
    """Self-evaluate and train the feedback kernel; ``None`` when clean.

    Returns ``None`` when self-evaluation produces no extras — then there
    is nothing for a feedback kernel to learn and evaluation skips the
    stage entirely.
    """
    with trace("train.feedback", centroids=len(model.nonhotspot_centroids)) as span:
        return _train_feedback_kernel(model, config, span)


def _train_feedback_kernel(
    model: MultiKernelModel,
    config: DetectorConfig,
    span,
) -> Optional[FeedbackKernel]:
    centroids = model.nonhotspot_centroids
    if not centroids:
        span.set(trained=False, reason="no centroids")
        return None
    per_kernel = model.kernel_margins(centroids)
    flagged_any = per_kernel.max(axis=1) >= 0.0 if per_kernel.size else np.zeros(0, bool)
    extras = [clip for clip, bad in zip(centroids, flagged_any) if bad]
    if not extras:
        span.set(trained=False, reason="no extras")
        return None

    # Hotspot side: hotspots of every kernel that contributed an extra.
    offending = {
        k
        for k in range(per_kernel.shape[1])
        if np.any(per_kernel[:, k] >= 0.0)
    }
    hotspot_clips: list[Clip] = []
    for kernel in model.kernels:
        if kernel.cluster_index in offending:
            cluster = model.hotspot_clusters[kernel.cluster_index]
            hotspot_clips.extend(model.hotspot_clips[i] for i in cluster.members)
    if not hotspot_clips:
        span.set(trained=False, reason="no hotspot clips")
        return None

    # Nonhotspot side: extras re-clustered with ambit, one centroid each.
    ambit_classifier = _ambit_classifier(config)
    sub_clusters = ambit_classifier.classify(extras)
    nonhotspot_clips = [extras[c.centroid_member()] for c in sub_clusters]

    extractor = _ambit_extractor(config)
    clips = hotspot_clips + nonhotspot_clips
    labels = np.array(
        [HOTSPOT] * len(hotspot_clips) + [NON_HOTSPOT] * len(nonhotspot_clips)
    )
    matrix, schema = extractor.build_matrix(clips)
    weights = balancing_class_weights(len(hotspot_clips), len(nonhotspot_clips))
    svm = config.svm
    result = train_iterative(
        matrix,
        labels,
        IterativeConfig(
            initial_c=svm.initial_c,
            initial_gamma=svm.initial_gamma,
            target_accuracy=svm.target_accuracy,
            max_rounds=svm.max_rounds,
            class_weight=weights or None,
            kernel=svm.kernel,
            far_field_floor=svm.far_field_floor,
            scale_features=svm.scale_features,
        ),
    )
    span.set(
        trained=True,
        extras=len(nonhotspot_clips),
        hotspots=len(hotspot_clips),
    )
    return FeedbackKernel(
        schema=schema,
        model=result.model,
        extractor=extractor,
        extras_used=len(nonhotspot_clips),
        hotspots_used=len(hotspot_clips),
    )
