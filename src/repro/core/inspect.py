"""Model introspection: why was this clip flagged (or not)?

Physical-verification engineers do not act on black-box flags; a report
needs to say which pattern class fired, how confidently, and on what
features.  :func:`explain_clip` assembles that story for one clip from a
fitted detector:

- the topological route (string key; which kernels' gates admit it),
- each admitting kernel's margin and its most similar training hotspot,
- the extracted critical features,
- the feedback kernel's verdict, when one is trained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.detector import HotspotDetector
from repro.core.training import GATED_OUT, core_string_key
from repro.errors import NotFittedError
from repro.features.nontopo import NonTopoFeatures
from repro.layout.clip import Clip
from repro.mtcg.rules import RuleRect


@dataclass
class KernelVerdict:
    """One kernel's view of the clip."""

    cluster_index: int
    admitted: bool
    margin: Optional[float] = None
    support_similarity: Optional[float] = None


@dataclass
class Explanation:
    """The full story of one clip's evaluation."""

    string_key: tuple
    kernels: list[KernelVerdict] = field(default_factory=list)
    rules: tuple[RuleRect, ...] = ()
    nontopo: Optional[NonTopoFeatures] = None
    best_margin: float = GATED_OUT
    flagged: bool = False
    feedback_margin: Optional[float] = None
    feedback_keeps: Optional[bool] = None

    @property
    def admitted_anywhere(self) -> bool:
        return any(verdict.admitted for verdict in self.kernels)

    @property
    def verdict(self) -> str:
        """One-line human-readable outcome."""
        if not self.admitted_anywhere:
            return "not a known hotspot topology (gated out by every kernel)"
        if not self.flagged:
            return (
                f"known topology, classified nonhotspot "
                f"(best margin {self.best_margin:+.3f})"
            )
        if self.feedback_keeps is False:
            return (
                f"flagged by the kernels (margin {self.best_margin:+.3f}) "
                f"but reclaimed by the feedback kernel "
                f"(ambit margin {self.feedback_margin:+.3f})"
            )
        return f"hotspot (margin {self.best_margin:+.3f})"

    def summary_lines(self) -> list[str]:
        """A printable multi-line report."""
        lines = [f"verdict : {self.verdict}"]
        admitted = [v for v in self.kernels if v.admitted]
        lines.append(
            f"gates   : admitted by {len(admitted)}/{len(self.kernels)} kernels"
        )
        for verdict in admitted:
            lines.append(
                f"  kernel #{verdict.cluster_index}: margin "
                f"{verdict.margin:+.3f}, support similarity "
                f"{verdict.support_similarity:.3f}"
            )
        if self.nontopo is not None:
            lines.append(
                "features: "
                f"{len(self.rules)} rule rects; corners="
                f"{self.nontopo.corner_count}, min width="
                f"{self.nontopo.min_internal}, min spacing="
                f"{self.nontopo.min_external}, density="
                f"{self.nontopo.density:.2%}"
            )
        if self.feedback_margin is not None:
            lines.append(f"feedback: margin {self.feedback_margin:+.3f}")
        return lines


def explain_clip(
    detector: HotspotDetector, clip: Clip, threshold: Optional[float] = None
) -> Explanation:
    """Explain a fitted detector's decision for one clip."""
    model = detector.model_
    if model is None:
        raise NotFittedError("explain_clip needs a fitted detector")
    threshold = (
        detector.config.decision_threshold if threshold is None else threshold
    )

    key = core_string_key(clip)
    extraction = model.extractor.extract(clip)
    explanation = Explanation(
        string_key=key, rules=extraction.rules, nontopo=extraction.nontopo
    )

    for kernel in model.kernels:
        admitted = kernel.key_set is None or key in kernel.key_set
        verdict = KernelVerdict(kernel.cluster_index, admitted)
        if admitted:
            vector = model.extractor.vectorize(extraction, kernel.schema)
            verdict.margin = float(kernel.model.decision_function(vector))
            verdict.support_similarity = float(
                kernel.model.support_similarity(vector)[0]
            )
            explanation.best_margin = max(explanation.best_margin, verdict.margin)
        explanation.kernels.append(verdict)

    explanation.flagged = (
        explanation.admitted_anywhere and explanation.best_margin >= threshold
    )
    if explanation.flagged and detector.feedback_ is not None:
        explanation.feedback_margin = float(
            detector.feedback_.margins([clip])[0]
        )
        explanation.feedback_keeps = bool(
            detector.feedback_.keep_mask([clip])[0]
        )
        if not explanation.feedback_keeps:
            explanation.flagged = False
    return explanation
