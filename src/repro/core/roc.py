"""Operating-curve utilities: threshold sweeps over a fitted detector.

Fig. 15's axis is the decision threshold.  :func:`sweep_thresholds`
computes candidate margins once and re-scores the flag set per threshold
(with the removal stage applied at each point, matching the deployed
pipeline), which makes dense sweeps cheap; :func:`area_under_curve` gives
a single-number summary for regression tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.detector import HotspotDetector
from repro.core.extraction import extract_for_detector
from repro.core.metrics import DetectionScore, score_reports
from repro.core.removal import remove_redundant_clips
from repro.data.synth import TestingLayout
from repro.errors import NotFittedError


@dataclass(frozen=True)
class CurvePoint:
    """One operating point of the sweep."""

    threshold: float
    score: DetectionScore

    @property
    def hit_rate(self) -> float:
        return self.score.accuracy

    @property
    def extras(self) -> int:
        return self.score.extras


def sweep_thresholds(
    detector: HotspotDetector,
    testing: TestingLayout,
    thresholds: Sequence[float] = tuple(np.linspace(-0.75, 1.0, 8)),
    layer: int = 1,
    apply_removal: bool = True,
) -> list[CurvePoint]:
    """Score the detector at each threshold; margins computed once."""
    if detector.model_ is None:
        raise NotFittedError("sweep_thresholds needs a fitted detector")
    extraction = extract_for_detector(testing.layout, detector.config, layer)
    margins = detector.margins(extraction.clips)
    truth = testing.hotspot_cores()

    def clip_factory(core):
        return testing.layout.cut_clip_at_core(detector.config.spec, core, layer)

    points = []
    for threshold in thresholds:
        flagged = [
            clip
            for clip, margin in zip(extraction.clips, margins)
            if margin >= threshold
        ]
        if apply_removal and flagged:
            reports = remove_redundant_clips(
                flagged, detector.config.spec, detector.config.removal, clip_factory
            )
        else:
            reports = flagged
        score = score_reports(reports, truth, testing.area_um2)
        points.append(CurvePoint(float(threshold), score))
    return points


def area_under_curve(points: Sequence[CurvePoint]) -> float:
    """Trapezoidal area under hit-rate vs normalised-extras.

    Extras are normalised by the sweep's maximum so the result lands in
    [0, 1]; 1.0 means full hit rate is reached before any extras appear.
    With a single distinct extra level the curve degenerates to its mean
    hit rate.
    """
    if not points:
        return 0.0
    max_extras = max(point.extras for point in points)
    if max_extras == 0:
        return max(point.hit_rate for point in points)
    pairs = sorted(
        {(point.extras / max_extras, point.hit_rate) for point in points}
    )
    xs = [x for x, _ in pairs]
    ys = [y for _, y in pairs]
    if len(xs) == 1:
        return ys[0]
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 2/1 compat
    return float(trapezoid(ys, xs) / (xs[-1] - xs[0]))


def knee_point(points: Sequence[CurvePoint], min_hit_rate: float = 0.8) -> Optional[CurvePoint]:
    """The cheapest operating point reaching ``min_hit_rate``.

    Returns the point with the fewest extras among those at or above the
    requested hit rate, or ``None`` when no point qualifies — the
    practical "acceptable hit rate" selection the paper discusses under
    Fig. 15.
    """
    qualifying = [p for p in points if p.hit_rate >= min_hit_rate]
    if not qualifying:
        return None
    return min(qualifying, key=lambda p: (p.extras, -p.threshold))
