"""Layout clip extraction (Section III-E).

Instead of scanning every window position of a testing layout, candidate
clips are derived from the polygon geometry itself:

1. every layout polygon is horizontally sliced into rectangles,
2. rectangles wider or taller than the hotspot core side are cut down,
3. a core window is anchored at the bottom-left corner of each rectangle,
   and the surrounding clip is extracted when the polygon distribution
   inside it meets the requirements (density bounds, polygon count, and
   geometry bounding-box proximity to the clip boundary).

The window-sliding baseline of Table V lives in
:mod:`repro.baselines.window_scan`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.core.config import DetectorConfig, ExtractionConfig
from repro.errors import ReproError
from repro.geometry.dissect import cut_to_max_size
from repro.geometry.rect import Rect, bounding_box
from repro.layout.clip import Clip, ClipSpec
from repro.layout.layout import Layout
from repro.obs import trace
from repro.resilience import faults


@dataclass
class ExtractionReport:
    """Candidate clips plus funnel statistics for diagnostics.

    The funnel counts are part of the determinism contract: the sharded
    scan journals them per shard and sums them on incremental reuse, and
    the differential harness (``tests/test_differential.py``) asserts
    they match the uncached single-pass scan exactly — so they must not
    depend on thread scheduling or work partitioning.
    """

    clips: list[Clip]
    anchor_count: int
    rejected_density: int = 0
    rejected_count: int = 0
    rejected_boundary: int = 0
    #: Anchors whose clip could not be cut/validated; skipped, not fatal.
    quarantined: int = 0

    @property
    def candidate_count(self) -> int:
        return len(self.clips)


def _meets_distribution(
    clip: Clip, config: ExtractionConfig
) -> tuple[bool, str]:
    """Check the Section III-E polygon-distribution requirements."""
    core_rects = clip.core_rects()
    if len(core_rects) < config.min_polygon_count:
        return False, "count"
    density = clip.core_density()
    if not config.min_core_density <= density <= config.max_core_density:
        return False, "density"
    box = bounding_box(clip.rects)
    if box is None:
        return False, "count"
    window = clip.window
    worst = max(
        box.x0 - window.x0,
        window.x1 - box.x1,
        box.y0 - window.y0,
        window.y1 - box.y1,
    )
    if worst > config.max_boundary_distance:
        return False, "boundary"
    return True, ""


def candidate_anchors(
    layout: Layout,
    spec: ClipSpec,
    layer: int = 1,
    region: Optional[Rect] = None,
    within: Optional[Rect] = None,
) -> list[tuple[int, int]]:
    """Deduplicated, sorted candidate anchor positions of a layer.

    ``region`` restricts which source rectangles are considered (any
    rectangle overlapping it); ``within`` additionally keeps only the
    anchors falling inside the **half-open** window
    ``[x0, x1) x [y0, y1)``.  Because rectangle cutting is per-rectangle
    deterministic, regions tiling a layout with half-open ``within``
    windows partition the global anchor set exactly — the property the
    sharded process scan (:mod:`repro.work`) relies on for bit-identical
    results.
    """
    rects = layout.layer(layer).rects
    if region is not None:
        rects = [r for r in rects if r.overlaps(region)]
    pieces = cut_to_max_size(rects, spec.core_side)
    anchors = sorted({(piece.x0, piece.y0) for piece in pieces})
    if within is not None:
        anchors = [
            (x, y)
            for x, y in anchors
            if within.x0 <= x < within.x1 and within.y0 <= y < within.y1
        ]
    return anchors


def extract_candidate_clips(
    layout: Layout,
    spec: ClipSpec,
    config: ExtractionConfig = ExtractionConfig(),
    layer: int = 1,
    region: Optional[Rect] = None,
    parallel_workers: int = 1,
    quarantine=None,
) -> ExtractionReport:
    """Extract every candidate clip of a layout layer.

    ``region`` restricts extraction to a window (used to chunk large
    layouts across workers, Section III-G).  Cores are deduplicated by
    anchor position, so overlapping source rectangles do not multiply
    candidates.

    ``quarantine`` is an optional
    :class:`~repro.resilience.quarantine.QuarantineReport`: an anchor
    whose clip raises a :class:`~repro.errors.ReproError` is recorded
    there and skipped instead of aborting the whole extraction.
    """
    with trace("detect.extract", layer=layer, workers=parallel_workers) as span:
        anchors = candidate_anchors(layout, spec, layer, region=region)
        span.set(anchors=len(anchors))

        if parallel_workers > 1 and len(anchors) > 64:
            chunk = (len(anchors) + parallel_workers - 1) // parallel_workers
            parts = [
                anchors[i : i + chunk] for i in range(0, len(anchors), chunk)
            ]
            with ThreadPoolExecutor(max_workers=parallel_workers) as pool:
                reports = list(
                    pool.map(
                        lambda part: extract_from_anchors(
                            layout, spec, config, layer, part, quarantine
                        ),
                        parts,
                    )
                )
            merged = ExtractionReport(clips=[], anchor_count=len(anchors))
            for report in reports:
                merged.clips.extend(report.clips)
                merged.rejected_density += report.rejected_density
                merged.rejected_count += report.rejected_count
                merged.rejected_boundary += report.rejected_boundary
                merged.quarantined += report.quarantined
            report = merged
        else:
            report = extract_from_anchors(
                layout, spec, config, layer, anchors, quarantine
            )
            report.anchor_count = len(anchors)
        span.set(
            candidates=len(report.clips),
            rejected_density=report.rejected_density,
            rejected_count=report.rejected_count,
            rejected_boundary=report.rejected_boundary,
            quarantined=report.quarantined,
        )
        return report


def extract_from_anchors(
    layout: Layout,
    spec: ClipSpec,
    config: ExtractionConfig,
    layer: int,
    anchors: list[tuple[int, int]],
    quarantine=None,
) -> ExtractionReport:
    """Cut and validate the clips of an explicit anchor list.

    The building block both the thread path (chunks of the global anchor
    list) and the :mod:`repro.work` process shards are assembled from.
    """
    report = ExtractionReport(clips=[], anchor_count=len(anchors))
    inject_per_anchor = faults.get() is not None
    for x, y in anchors:
        core = Rect(x, y, x + spec.core_side, y + spec.core_side)
        try:
            faults.inject("extract.clip", anchor=(x, y), layer=layer)
            if inject_per_anchor:
                # Anchor-addressed point (``extract.anchor.X_Y``): lets
                # chaos plans target one exact clip no matter which
                # worker or backend ends up processing it.
                faults.inject(f"extract.anchor.{x}_{y}", layer=layer)
            clip = layout.cut_clip_at_core(spec, core, layer)
            ok, reason = _meets_distribution(clip, config)
        except ReproError as exc:
            report.quarantined += 1
            if quarantine is not None:
                quarantine.add(
                    type(exc).__name__,
                    str(exc),
                    source="extract.clip",
                    anchor=[x, y],
                    layer=layer,
                )
            continue
        if ok:
            report.clips.append(clip)
        elif reason == "density":
            report.rejected_density += 1
        elif reason == "count":
            report.rejected_count += 1
        else:
            report.rejected_boundary += 1
    return report


def extract_for_detector(
    layout: Layout, config: DetectorConfig, layer: int = 1, quarantine=None
) -> ExtractionReport:
    """Candidate extraction using a detector's configuration."""
    workers = config.worker_count if config.parallel else 1
    return extract_candidate_clips(
        layout,
        config.spec,
        config.extraction,
        layer,
        parallel_workers=workers,
        quarantine=quarantine,
    )
