"""Redundant clip removal (Section III-F, Fig. 12).

SVM evaluation over density-extracted candidates reports many strongly
overlapping hotspot cores that all point at the same physical pattern.
The removal pipeline reduces them without losing coverage:

1. **Merge** reported cores into regions (cores overlapping by at least
   the configured fraction of core area join a region; a region's frame is
   the bounding box of its cores).
2. **Reframe** any region holding more than ``reframe_threshold`` cores:
   replace its cores by a grid of cores at separation ``ls < lc``, which
   guarantees every actual hotspot core inside the region still overlaps
   some reported core.
3. **Discard** a core when other cores already cover all of its polygons
   and each of its corners (the region-overlap redundancy rule).
4. **Shift** clips whose geometry sits far from the clip boundary toward
   the polygons' centre of gravity (axis-aligned recentring).
5. Merge and reframe once more.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.config import RemovalConfig
from repro.geometry.rect import Rect, bounding_box
from repro.layout.clip import Clip, ClipSpec
from repro.obs import trace

#: Builds a clip (window + in-window geometry) for an arbitrary core
#: window — backed by the testing layout during evaluation.
ClipFactory = Callable[[Rect], Clip]


def merge_into_regions(
    reports: Sequence[Clip], min_overlap: float
) -> list[list[int]]:
    """Group report indices into merging regions by core overlap.

    Two cores are merged when their intersection is at least
    ``min_overlap`` of a core's area.  Union-find keeps this near-linear
    in the number of overlapping pairs.
    """
    parent = list(range(len(reports)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    cores = [report.core for report in reports]
    for i in range(len(cores)):
        area_i = cores[i].area
        for j in range(i + 1, len(cores)):
            shared = cores[i].intersection_area(cores[j])
            if shared >= min_overlap * min(area_i, cores[j].area):
                union(i, j)

    groups: dict[int, list[int]] = {}
    for index in range(len(reports)):
        groups.setdefault(find(index), []).append(index)
    return list(groups.values())


def region_frame(reports: Sequence[Clip], members: Iterable[int]) -> Rect:
    """The merging region's frame: bbox of its member cores."""
    box = bounding_box(reports[index].core for index in members)
    assert box is not None  # regions are non-empty by construction
    return box


def reframe_region(
    frame: Rect, spec: ClipSpec, separation: int, clip_factory: ClipFactory
) -> list[Clip]:
    """Replace a region's cores with a grid at ``separation`` (Fig. 12(c)).

    Grid cores start at the frame's lower-left and advance by
    ``separation < core_side``; the last row/column is clamped so cores
    never leave the frame's neighbourhood.  Any actual core inside the
    frame must overlap one grid core because consecutive grid cores are
    closer than a core side.
    """
    lc = spec.core_side

    def positions(lo: int, hi: int) -> list[int]:
        span = hi - lo
        if span <= lc:
            return [lo]
        out = list(range(lo, hi - lc, separation))
        out.append(hi - lc)
        return out

    clips = []
    for x in positions(frame.x0, frame.x1):
        for y in positions(frame.y0, frame.y1):
            clips.append(clip_factory(Rect(x, y, x + lc, y + lc)))
    return clips


def _corners_covered(core: Rect, others: Sequence[Rect]) -> bool:
    """Whether every corner of ``core`` lies inside some other core."""
    return all(
        any(other.contains_point(corner) for other in others)
        for corner in core.corners()
    )


def _polygons_covered(clip: Clip, others: Sequence[Clip]) -> bool:
    """Whether all polygons in ``clip``'s core appear in other cores.

    Each core geometry piece must be fully contained in the union of the
    other cores' windows; containment per piece in a single other core is
    used (pieces are small relative to cores).
    """
    pieces = clip.core_rects()
    if not pieces:
        return True
    other_cores = [other.core for other in others]
    return all(
        any(core.contains_rect(piece) for core in other_cores) for piece in pieces
    )


def discard_redundant(reports: list[Clip]) -> list[Clip]:
    """Drop cores made redundant by their neighbours (Fig. 12(d)).

    A core is discarded when (1) all polygons within it are covered by
    the other *surviving* cores and (2) each of its corners overlaps a
    surviving core.  Drops are sequential against the live survivor set
    (most-overlapped candidates first), never against a snapshot: a
    snapshot test can cascade — a core dropped because of a neighbour
    that is itself dropped later — silently losing coverage (a failure
    mode pinned by ``tests/test_extraction_properties.py``).  Polygon
    coverage is transitive under sequential drops: a piece covered by a
    survivor that is later dropped was, at that drop, re-covered by the
    then-survivors.
    """
    survivors = list(reports)

    def overlap_degree(clip: Clip) -> int:
        return sum(1 for other in reports if other.core.overlaps(clip.core)) - 1

    for clip in sorted(reports, key=overlap_degree, reverse=True):
        if len(survivors) <= 1:
            break
        if clip not in survivors:
            continue
        others = [n for n in survivors if n is not clip and n.core.overlaps(clip.core)]
        if (
            others
            and _corners_covered(clip.core, [n.core for n in others])
            and _polygons_covered(clip, others)
        ):
            survivors.remove(clip)
    return survivors


def shift_to_gravity(
    clip: Clip, config: RemovalConfig, clip_factory: ClipFactory
) -> Clip:
    """Re-anchor a clip toward its polygons' centre of gravity (Fig. 12(e)).

    When the in-clip geometry bounding box sits further than
    ``max_boundary_distance`` from some clip edge, the clip centre moves
    along that axis to the geometry's area-weighted centre.
    """
    box = bounding_box(clip.rects)
    if box is None:
        return clip
    window = clip.window
    total = sum(r.area for r in clip.rects)
    cx = sum((r.x0 + r.x1) / 2 * r.area for r in clip.rects) / total
    cy = sum((r.y0 + r.y1) / 2 * r.area for r in clip.rects) / total

    shift_x = shift_y = 0
    if (
        box.x0 - window.x0 > config.max_boundary_distance
        or window.x1 - box.x1 > config.max_boundary_distance
    ):
        shift_x = int(cx) - window.center.x
    if (
        box.y0 - window.y0 > config.max_boundary_distance
        or window.y1 - box.y1 > config.max_boundary_distance
    ):
        shift_y = int(cy) - window.center.y
    if shift_x == 0 and shift_y == 0:
        return clip
    core = clip.core.translated(shift_x, shift_y)
    # Safety: re-centring must not abandon the geometry this report was
    # covering.  With spread-out geometry the centre of gravity can sit
    # away from every feature; in that case the original framing stands.
    original_core_rects = clip.core_rects()
    if original_core_rects and not all(
        core.overlaps(rect) for rect in original_core_rects
    ):
        return clip
    return clip_factory(core)


def remove_redundant_clips(
    reports: Sequence[Clip],
    spec: ClipSpec,
    config: RemovalConfig,
    clip_factory: ClipFactory,
) -> list[Clip]:
    """The full Section III-F pipeline over a report list."""
    if not reports:
        return []

    def merge_and_reframe(clips: Sequence[Clip]) -> list[Clip]:
        regions = merge_into_regions(clips, config.min_merge_overlap)
        out: list[Clip] = []
        for members in regions:
            if len(members) > config.reframe_threshold:
                frame = region_frame(clips, members)
                out.extend(
                    reframe_region(frame, spec, config.reframe_separation, clip_factory)
                )
            else:
                out.extend(clips[index] for index in members)
        return out

    with trace("detect.removal", reports=len(reports)) as span:
        stage1 = merge_and_reframe(list(reports))
        stage2 = discard_redundant(stage1)
        stage3 = [shift_to_gravity(clip, config, clip_factory) for clip in stage2]
        stage4 = merge_and_reframe(stage3)
        final = discard_redundant(stage4)
        span.set(kept=len(final))
        return final
