"""Detector configuration: every tunable of the paper in one place.

Defaults are the Section V experiment parameters:

- initial C = 1000, initial gamma = 0.01, self-training target 90 %,
- expected cluster count K = 10,
- data shifting = lc/10 = 120 nm,
- clip-extraction max boundary-to-bbox distance = 1440 nm,
- clip-merging minimum core overlap = 20 %,
- reframing core separation ls = 1150 nm (< lc = 1200 nm).

The ablation switches (``use_topology``, ``use_feedback``, ``use_removal``)
reproduce Table III's Basic / +Topology / +Removal / Ours rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.features.vector import FeatureConfig
from repro.layout.clip import ClipSpec
from repro.svm.grid_search import IterativeConfig
from repro.topology.cluster import ClassifierConfig


@dataclass(frozen=True)
class ExtractionConfig:
    """Layout clip extraction requirements (Section III-E).

    A candidate clip is kept when its window's polygon distribution meets
    every requirement: density within bounds, enough polygon rectangles,
    and the bounding box of in-clip geometry within
    ``max_boundary_distance`` of every clip edge.
    """

    min_core_density: float = 0.02
    max_core_density: float = 0.95
    min_polygon_count: int = 2
    max_boundary_distance: int = 1440

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_core_density <= self.max_core_density <= 1.0:
            raise ConfigError(
                "core density bounds must satisfy 0 <= min <= max <= 1, got "
                f"[{self.min_core_density}, {self.max_core_density}]"
            )
        if self.min_polygon_count < 0:
            raise ConfigError("min_polygon_count must be non-negative")
        if self.max_boundary_distance < 0:
            raise ConfigError("max_boundary_distance must be non-negative")


@dataclass(frozen=True)
class RemovalConfig:
    """Redundant clip removal parameters (Section III-F)."""

    min_merge_overlap: float = 0.20
    reframe_separation: int = 1150
    reframe_threshold: int = 4
    max_boundary_distance: int = 1440

    def __post_init__(self) -> None:
        if not 0.0 < self.min_merge_overlap <= 1.0:
            raise ConfigError(
                f"min_merge_overlap must be in (0, 1], got {self.min_merge_overlap}"
            )
        if self.reframe_separation <= 0:
            raise ConfigError("reframe_separation must be positive")
        if self.reframe_threshold < 1:
            raise ConfigError("reframe_threshold must be >= 1")


@dataclass(frozen=True)
class DetectorConfig:
    """Full configuration of the hotspot-detection framework."""

    spec: ClipSpec = field(default_factory=ClipSpec)
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    features: FeatureConfig = field(default_factory=FeatureConfig)
    #: Kernel training schedule.  The far-field floor makes "similar to no
    #: support vector" decide nonhotspot instead of the model bias — it
    #: substitutes for the dense nonhotspot population the real contest
    #: training archives provide.
    svm: IterativeConfig = field(
        default_factory=lambda: IterativeConfig(far_field_floor=0.10)
    )
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    removal: RemovalConfig = field(default_factory=RemovalConfig)

    #: Data-shifting distance for hotspot upsampling (lc/10 in the paper).
    shift_amount: int = 120
    #: Decision threshold on the SVM margin; higher = fewer reports
    #: ("ours_low"/"ours_med" operating points, Fig. 15 sweep).
    decision_threshold: float = 0.0

    # Ablation switches (Table III rows).
    use_topology: bool = True
    use_feedback: bool = True
    use_removal: bool = True
    #: Thread-parallel kernel training / clip evaluation (Section III-G).
    parallel: bool = False
    worker_count: int = 4
    #: Layout-scan execution backend: ``"thread"`` chunks candidates
    #: across a thread pool in-process; ``"process"`` runs the
    #: crash-isolated sharded scan on a :mod:`repro.work` supervised
    #: pool.  Both produce bit-identical hotspot sets.
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.shift_amount < 0:
            raise ConfigError("shift_amount must be non-negative")
        if self.worker_count < 1:
            raise ConfigError("worker_count must be >= 1")
        if self.backend not in ("thread", "process"):
            raise ConfigError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        if self.removal.reframe_separation >= self.spec.core_side:
            raise ConfigError(
                "reframe_separation must be smaller than the core side "
                f"({self.removal.reframe_separation} >= {self.spec.core_side})"
            )

    # ------------------------------------------------------------------
    # named operating points of Table II
    # ------------------------------------------------------------------
    def at_threshold(self, threshold: float) -> "DetectorConfig":
        """This configuration with a different decision threshold."""
        return replace(self, decision_threshold=threshold)

    @property
    def compute(self) -> str:
        """The margin/extraction compute mode ("exact" or "fast")."""
        return self.features.compute

    def with_compute(self, mode: str) -> "DetectorConfig":
        """This configuration under another compute mode (validated by
        :class:`~repro.features.vector.FeatureConfig`)."""
        return replace(self, features=replace(self.features, compute=mode))

    @staticmethod
    def ours() -> "DetectorConfig":
        """The full framework at the accuracy-first operating point."""
        return DetectorConfig()

    @staticmethod
    def ours_med() -> "DetectorConfig":
        """Medium hit rate, medium hit/extra ratio (Table II 'ours_med')."""
        return DetectorConfig(decision_threshold=0.30)

    @staticmethod
    def ours_low() -> "DetectorConfig":
        """Lower hit rate, high hit/extra ratio (Table II 'ours_low')."""
        return DetectorConfig(decision_threshold=0.75)

    @staticmethod
    def basic() -> "DetectorConfig":
        """Table III 'Basic': one huge kernel, no feedback, no removal.

        Data shifting is off too — the baseline is a plain SVM on the raw
        (imbalanced) training set, as the paper's Basic row is.
        """
        return DetectorConfig(
            use_topology=False,
            use_feedback=False,
            use_removal=False,
            shift_amount=0,
        )

    @staticmethod
    def with_topology() -> "DetectorConfig":
        """Table III '+Topology': clustering on, feedback/removal off."""
        return DetectorConfig(use_feedback=False, use_removal=False)

    @staticmethod
    def with_removal() -> "DetectorConfig":
        """Table III '+Removal': clustering + removal, feedback off."""
        return DetectorConfig(use_feedback=False)
