"""Multiple SVM-kernel training (Section III-D3, Fig. 9(a)).

One C-SVM kernel is trained per hotspot cluster, against the downsampled
nonhotspot centroid set.  Each kernel owns the feature schema of its
cluster, so it concentrates on the critical features specific to that
topology.  Kernels are independent, so training parallelises trivially
(Section III-G).
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.resample import (
    balancing_class_weights,
    downsample_to_centroids,
    shift_derivatives,
)
from repro.errors import SvmError
from repro.features.vector import FeatureExtractor, FeatureSchema
from repro.layout.clip import Clip, ClipSet
from repro.obs import trace
from repro.resilience import faults
from repro.svm.grid_search import IterativeConfig, TrainingRound, train_iterative
from repro.svm.model import SupportVectorClassifier
from repro.topology.cluster import Cluster, TopologicalClassifier
from repro.topology.strings import canonical_string_key

#: Margin assigned by a kernel to clips outside its topological gate.
GATED_OUT = -1e9


def core_string_key(clip: Clip) -> tuple:
    """D8-canonical directional-string key of a clip's core region."""
    return canonical_string_key(clip.core_rects(), clip.core)

#: Numeric labels used throughout: +1 hotspot, -1 nonhotspot.
HOTSPOT, NON_HOTSPOT = 1, -1


@dataclass
class TrainedKernel:
    """One per-cluster SVM kernel with its schema and telemetry.

    ``key_set`` is the kernel's topological gate: the canonical string
    keys of every hotspot pattern (including shifted derivatives) the
    kernel was trained on.  At evaluation the kernel judges only clips
    whose core topology appears in this set — vectorizing an
    alien-topology clip under this cluster's schema would be meaningless,
    and an RBF kernel's decision at such far-field points degenerates to
    its bias.  ``None`` disables gating (the 'Basic' single-kernel
    baseline).
    """

    cluster_index: int
    schema: FeatureSchema
    model: SupportVectorClassifier
    history: list[TrainingRound] = field(default_factory=list)
    hotspot_count: int = 0
    nonhotspot_count: int = 0
    key_set: Optional[frozenset] = None


@dataclass
class MultiKernelModel:
    """The trained multiple-kernel stage.

    Holds everything evaluation and feedback training need: the kernels,
    the upsampled hotspot population with its clusters, the nonhotspot
    centroids, and the shared core-region feature extractor.
    """

    kernels: list[TrainedKernel]
    hotspot_clips: list[Clip]
    hotspot_clusters: list[Cluster]
    nonhotspot_centroids: list[Clip]
    extractor: FeatureExtractor
    classifier: TopologicalClassifier
    #: Optional :class:`repro.cache.HotspotCache` memoizing margin rows by
    #: clip geometry.  Shared mutable state; dropped on pickling.
    cache: Optional[object] = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["cache"] = None
        state.pop("_margin_fingerprint", None)
        return state

    def _cache_fingerprint(self) -> str:
        """Margin-cache namespace: kernels + feature config, hashed once."""
        fingerprint = getattr(self, "_margin_fingerprint", None)
        if fingerprint is None:
            from repro.cache.keys import model_fingerprint

            fingerprint = model_fingerprint(self)
            self._margin_fingerprint = fingerprint
        return fingerprint

    def kernel_margins(self, clips: Sequence[Clip]) -> np.ndarray:
        """Margin matrix ``(len(clips), len(kernels))``.

        Clips are first routed through each kernel's topological gate;
        gated-out entries get :data:`GATED_OUT`.  Features are extracted
        once per clip that passes at least one gate (vectorization is
        per-kernel because schemas differ).

        With a :attr:`cache` attached, rows are memoized per clip
        geometry: a geometry seen before (this run or, with a disk tier,
        any run of this model) skips extraction and the SVM entirely.
        Rows are computed per clip and the decision function is
        row-independent, so cached and recomputed rows are bit-identical.
        """
        if not clips:
            return np.zeros((0, len(self.kernels)))
        if self.cache is None:
            return self._kernel_margins_uncached(clips)

        from repro.cache.keys import clip_content_key

        # Raw (translation-only) keys: sound for every config, and far
        # cheaper than the D8 canonicalization (see keys.cache_canonical).
        fingerprint = self._cache_fingerprint()
        keys = [clip_content_key(clip, canonical=False) for clip in clips]
        # With a batch-capable tier attached (the fleet's remote cache)
        # warm the whole clip batch in one RPC per node up front, so the
        # per-clip loop below hits memory instead of the network.
        prefetch = getattr(self.cache, "prefetch", None)
        if prefetch is not None:
            prefetch("margins", fingerprint, keys)
        margins = np.full((len(clips), len(self.kernels)), GATED_OUT)
        # Group cache misses by key: same geometry -> same row, so each
        # distinct geometry is evaluated once per call.
        missing: dict[str, list[int]] = {}
        for i, key in enumerate(keys):
            row = self.cache.get_margins(fingerprint, key)
            if row is not None and row.shape == (len(self.kernels),):
                margins[i] = row
            else:
                missing.setdefault(key, []).append(i)
        if missing:
            groups = list(missing.values())
            self._prefetch_features([clips[indices[0]] for indices in groups])
            computed = self._kernel_margins_uncached(
                [clips[indices[0]] for indices in groups]
            )
            for row, indices in zip(computed, groups):
                margins[indices] = row
                self.cache.put_margins(fingerprint, keys[indices[0]], row)
        flush = getattr(self.cache, "flush", None)
        if flush is not None:
            flush()
        return margins

    def _prefetch_features(self, clips: Sequence[Clip]) -> None:
        """Batch-warm the extractor's feature cache for margin misses."""
        cache = getattr(self.extractor, "cache", None)
        prefetch = getattr(cache, "prefetch", None)
        if prefetch is None or not clips:
            return
        from repro.cache.keys import clip_content_key

        fingerprint, canonical = self.extractor._cache_identity()
        prefetch(
            "features",
            fingerprint,
            [clip_content_key(clip, canonical=canonical) for clip in clips],
        )

    def _kernel_margins_uncached(self, clips: Sequence[Clip]) -> np.ndarray:
        margins = np.full((len(clips), len(self.kernels)), GATED_OUT)

        gated = any(kernel.key_set is not None for kernel in self.kernels)
        keys = [core_string_key(clip) for clip in clips] if gated else None

        # Which clips does each kernel accept?
        accept: list[list[int]] = []
        needed: set[int] = set()
        for kernel in self.kernels:
            if kernel.key_set is None:
                wanted = list(range(len(clips)))
            else:
                assert keys is not None
                wanted = [i for i, key in enumerate(keys) if key in kernel.key_set]
            accept.append(wanted)
            needed.update(wanted)

        extractions = {
            i: self.extractor.extract(clips[i]) for i in sorted(needed)
        }
        fast_states = None
        if getattr(self.extractor.config, "compute", "exact") == "fast":
            from repro.svm.fastpath import fast_states as _fast_states

            fast_states = _fast_states(self)
        for k, kernel in enumerate(self.kernels):
            wanted = accept[k]
            if not wanted:
                continue
            matrix = np.vstack(
                [
                    self.extractor.vectorize(extractions[i], kernel.schema)
                    for i in wanted
                ]
            )
            if fast_states is not None:
                margins[wanted, k] = fast_states[k].decision_function(matrix)
            else:
                margins[wanted, k] = kernel.model.decision_function(matrix)
        return margins

    def margins(self, clips: Sequence[Clip]) -> np.ndarray:
        """Best (max over kernels) margin per clip.

        A clip is flagged hotspot when any kernel classifies it as one, so
        the effective score is the kernel maximum.
        """
        per_kernel = self.kernel_margins(clips)
        if per_kernel.size == 0:
            return np.zeros(len(clips))
        return per_kernel.max(axis=1)

    def predict(self, clips: Sequence[Clip], threshold: float = 0.0) -> np.ndarray:
        """Boolean hotspot flags at a decision threshold."""
        return self.margins(clips) >= threshold


def _single_cluster(clips: Sequence[Clip]) -> Cluster:
    """A degenerate cluster holding everything (the 'Basic' baseline)."""
    cluster = Cluster(string_key=("basic",))
    for index, _clip in enumerate(clips):
        cluster.members.append(index)
    return cluster


def _train_one_kernel(
    cluster_index: int,
    cluster_hotspots: list[Clip],
    nonhotspot_centroids: list[Clip],
    extractor: FeatureExtractor,
    svm_config: IterativeConfig,
    gate: bool,
) -> TrainedKernel:
    faults.inject("train.kernel", cluster=cluster_index)
    # The kernel trains against the nonhotspot centroids that pass its
    # gate, plus every nonhotspot sharing no key (kept out by gating
    # anyway); restricting to gate-compatible centroids would starve small
    # kernels of negatives, so all centroids participate.
    clips = cluster_hotspots + nonhotspot_centroids
    labels = np.array(
        [HOTSPOT] * len(cluster_hotspots) + [NON_HOTSPOT] * len(nonhotspot_centroids)
    )
    matrix, schema = extractor.build_matrix(clips)
    # Population balancing (Section III-D3): the residual imbalance after
    # resampling is absorbed by per-class C weights, biased toward the
    # hotspot class — accuracy is the primary objective, extras secondary.
    weights = svm_config.class_weight or balancing_class_weights(
        len(cluster_hotspots), len(nonhotspot_centroids)
    )
    config = IterativeConfig(
        initial_c=svm_config.initial_c,
        initial_gamma=svm_config.initial_gamma,
        target_accuracy=svm_config.target_accuracy,
        max_rounds=svm_config.max_rounds,
        class_weight=weights or None,
        kernel=svm_config.kernel,
        far_field_floor=svm_config.far_field_floor,
        scale_features=svm_config.scale_features,
    )
    with trace(
        "train.kernel",
        cluster=cluster_index,
        hotspots=len(cluster_hotspots),
        nonhotspots=len(nonhotspot_centroids),
    ) as span:
        result = train_iterative(matrix, labels, config)
        span.set(rounds=len(result.history))
        if result.history:
            span.set(
                c=result.history[-1].c_value,
                gamma=result.history[-1].gamma,
                accuracy=result.history[-1].train_accuracy,
            )
    key_set = (
        frozenset(core_string_key(clip) for clip in cluster_hotspots)
        if gate
        else None
    )
    return TrainedKernel(
        cluster_index=cluster_index,
        schema=schema,
        model=result.model,
        history=result.history,
        hotspot_count=len(cluster_hotspots),
        nonhotspot_count=len(nonhotspot_centroids),
        key_set=key_set,
    )


def train_multi_kernel(
    training: ClipSet,
    config: DetectorConfig,
    classifier: Optional[TopologicalClassifier] = None,
    checkpoint=None,
    deadline=None,
    resume: bool = True,
) -> MultiKernelModel:
    """Run the full training phase of Fig. 9(a).

    1. Upsample hotspots by data shifting.
    2. Topologically classify hotspots and nonhotspots (unless the
       'Basic' ablation disabled clustering).
    3. Downsample nonhotspots to cluster centroids.
    4. Train one kernel per hotspot cluster.

    ``checkpoint`` (a :class:`repro.resilience.checkpoint.
    CheckpointStore`) persists each kernel as it converges; with
    ``resume`` the kernels already on disk for this dataset + config are
    reused instead of retrained, so a run killed mid-kernel (SIGTERM,
    OOM, injected fault) loses at most one kernel's work.  ``deadline``
    (a :class:`repro.resilience.retry.Deadline`) is checked between
    kernels and raises :class:`~repro.errors.StageTimeout` — after the
    completed kernels have checkpointed, so the timeout itself is
    resumable.  Stages 1-3 are cheap and deterministic; they re-run on
    every resume.
    """
    hotspots, nonhotspots = training.split()
    if not hotspots or not nonhotspots:
        raise SvmError(
            "training set needs both hotspot and nonhotspot patterns, got "
            f"{len(hotspots)} / {len(nonhotspots)}"
        )
    classifier = classifier or TopologicalClassifier(config.classifier)
    extractor = FeatureExtractor(config.features)

    # Upsample each hotspot; remember which derivatives belong to which
    # original so derivatives join their parent's cluster (the shifting is
    # meant to add fuzziness *inside* a cluster, not to spawn new ones).
    with trace("train.shift", hotspots=len(hotspots)) as span:
        upsampled: list[Clip] = []
        derivative_groups: list[list[int]] = []
        for clip in hotspots:
            derivatives = shift_derivatives(clip, config.shift_amount)
            indices = list(range(len(upsampled), len(upsampled) + len(derivatives)))
            upsampled.extend(derivatives)
            derivative_groups.append(indices)
        span.set(upsampled=len(upsampled))

    with trace("train.cluster", use_topology=config.use_topology) as span:
        if config.use_topology:
            original_clusters = classifier.classify(hotspots)
            hotspot_clusters = []
            for original in original_clusters:
                expanded = Cluster(
                    string_key=original.string_key, radius=original.radius
                )
                expanded.centroid_grid = original.centroid_grid
                for original_index in original.members:
                    expanded.members.extend(derivative_groups[original_index])
                hotspot_clusters.append(expanded)
            nonhotspot_clusters = classifier.classify(nonhotspots)
            centroids = downsample_to_centroids(nonhotspots, nonhotspot_clusters)
        else:
            hotspot_clusters = [_single_cluster(upsampled)]
            centroids = list(nonhotspots)
        span.set(
            hotspot_clusters=len(hotspot_clusters),
            nonhotspot_centroids=len(centroids),
        )

    jobs = [
        (index, [upsampled[i] for i in cluster.members])
        for index, cluster in enumerate(hotspot_clusters)
    ]

    done: dict[int, TrainedKernel] = {}
    if checkpoint is not None:
        from repro.resilience.checkpoint import training_fingerprint

        fingerprint = training_fingerprint(training, config)
        done = checkpoint.begin(fingerprint, len(jobs), resume=resume)
    pending = [(index, members) for index, members in jobs if index not in done]

    save_lock = threading.Lock()

    def _finish(index: int, kernel: TrainedKernel) -> None:
        done[index] = kernel
        if checkpoint is not None:
            with save_lock:
                checkpoint.save_kernel(index, kernel)

    with trace(
        "train.kernels",
        kernels=len(jobs),
        resumed=len(done),
        parallel=config.parallel,
    ):
        if config.parallel and len(pending) > 1:
            with ThreadPoolExecutor(max_workers=config.worker_count) as pool:
                futures = {
                    pool.submit(
                        _train_one_kernel,
                        index,
                        members,
                        centroids,
                        extractor,
                        config.svm,
                        config.use_topology,
                    ): index
                    for index, members in pending
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    # Checkpoint every converged kernel before surfacing
                    # any failure, so the failure itself is resumable.
                    errors = []
                    for future in finished:
                        try:
                            kernel = future.result()
                        except Exception as exc:  # noqa: BLE001 — re-raised below
                            errors.append(exc)
                        else:
                            _finish(futures[future], kernel)
                    if errors:
                        for future in remaining:
                            future.cancel()
                        raise errors[0]
                    if deadline is not None and remaining and deadline.expired():
                        for future in remaining:
                            future.cancel()
                        deadline.check("train.kernels")
        else:
            for index, members in pending:
                if deadline is not None:
                    deadline.check("train.kernels")
                kernel = _train_one_kernel(
                    index, members, centroids, extractor, config.svm, config.use_topology
                )
                _finish(index, kernel)
    kernels = [done[index] for index, _ in jobs]
    return MultiKernelModel(
        kernels=kernels,
        hotspot_clips=upsampled,
        hotspot_clusters=hotspot_clusters,
        nonhotspot_centroids=centroids,
        extractor=extractor,
        classifier=classifier,
    )
