"""Window-sliding clip enumeration — the Table V baseline.

The paper compares its density-driven clip extraction against the naive
approach: slide a core-sized window across the layout with 50 % overlap
between adjacent positions and evaluate every position.  Table V counts
the clips each method produces; the window count is simply the position
grid size (the contest scorers evaluated every window, occupied or not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import LayoutError
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipSpec
from repro.layout.layout import Layout


@dataclass(frozen=True)
class WindowScanConfig:
    """Scan parameters: window side and fractional overlap (paper: 50 %)."""

    overlap: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.overlap < 1.0:
            raise LayoutError(f"overlap must be in [0, 1), got {self.overlap}")

    def stride(self, window_side: int) -> int:
        """Distance between adjacent window anchors."""
        step = int(window_side * (1.0 - self.overlap))
        return max(1, step)


def window_positions(
    region: Rect, window_side: int, config: WindowScanConfig = WindowScanConfig()
) -> Iterator[tuple[int, int]]:
    """Anchor positions of a sliding window over ``region``.

    The grid starts at the region's lower-left; the last row/column is
    clamped so the window never leaves the region (matching how scan
    tools tile a die).
    """
    stride = config.stride(window_side)

    def axis_positions(lo: int, hi: int) -> list[int]:
        span = hi - lo
        if span <= window_side:
            return [lo]
        out = list(range(lo, hi - window_side, stride))
        out.append(hi - window_side)
        return out

    for x in axis_positions(region.x0, region.x1):
        for y in axis_positions(region.y0, region.y1):
            yield (x, y)


def count_window_clips(
    region: Rect, window_side: int, config: WindowScanConfig = WindowScanConfig()
) -> int:
    """The Table V window-based clip count for a layout region."""
    stride = config.stride(window_side)

    def axis_count(span: int) -> int:
        if span <= window_side:
            return 1
        return (span - window_side - 1) // stride + 2

    return axis_count(region.width) * axis_count(region.height)


def scan_clips(
    layout: Layout,
    spec: ClipSpec,
    region: Optional[Rect] = None,
    layer: int = 1,
    config: WindowScanConfig = WindowScanConfig(),
    skip_empty: bool = False,
) -> list[Clip]:
    """Materialise the sliding-window clips of a layout region.

    ``skip_empty`` drops windows whose core holds no geometry — an obvious
    optimisation real scanners apply, kept off by default to match the
    paper's raw counts.
    """
    if region is None:
        if layer not in layout.layer_numbers():
            return []
        region = layout.bbox(layer)
        if region is None:
            return []
    clips = []
    for x, y in window_positions(region, spec.core_side, config):
        core = Rect(x, y, x + spec.core_side, y + spec.core_side)
        clip = layout.cut_clip_at_core(spec, core, layer)
        if skip_empty and not clip.core_rects():
            continue
        clips.append(clip)
    return clips
