"""The "Basic" single-huge-kernel SVM baseline (Table III row 1).

A convenience wrapper: one soft-margin C-SVM over the entire training set,
no topological classification, no data shifting, no feedback kernel, no
redundant clip removal.  Everything else (features, extraction, scoring)
is shared with the full framework so the comparison isolates exactly the
paper's contributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DetectorConfig
from repro.core.detector import DetectionReport, HotspotDetector, TrainingReport
from repro.data.synth import TestingLayout
from repro.layout.clip import ClipSet
from repro.layout.layout import Layout


@dataclass
class SingleSvmBaseline:
    """The paper's 'Basic' baseline behind the same facade as the framework."""

    config: DetectorConfig = field(default_factory=DetectorConfig.basic)

    def __post_init__(self) -> None:
        self._detector = HotspotDetector(self.config)

    def fit(self, training: ClipSet) -> TrainingReport:
        return self._detector.fit(training)

    def detect(self, layout: Layout, layer: int = 1) -> DetectionReport:
        return self._detector.detect(layout, layer)

    def score(self, testing: TestingLayout, layer: int = 1) -> DetectionReport:
        return self._detector.score(testing, layer)

    @property
    def kernel_count(self) -> int:
        model = self._detector.model_
        return len(model.kernels) if model else 0
