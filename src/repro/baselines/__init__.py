"""Baselines: fuzzy pattern matching, window scanning, single-kernel SVM."""

from repro.baselines.pattern_match import (
    PatternEntry,
    PatternMatchConfig,
    PatternMatcher,
    PatternMatchReport,
)
from repro.baselines.hybrid import HybridDetector, HybridReport
from repro.baselines.single_svm import SingleSvmBaseline
from repro.baselines.window_scan import (
    WindowScanConfig,
    count_window_clips,
    scan_clips,
    window_positions,
)

__all__ = [
    "PatternMatcher",
    "PatternMatchConfig",
    "PatternMatchReport",
    "PatternEntry",
    "SingleSvmBaseline",
    "HybridDetector",
    "HybridReport",
    "WindowScanConfig",
    "window_positions",
    "count_window_clips",
    "scan_clips",
]
