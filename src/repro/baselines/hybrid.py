"""Hybrid pattern-matching + machine-learning detection (category 4).

The paper's related work ([10]-[12], e.g. EPIC) unites pattern matching
and machine learning "to enhance accuracy and reduce false alarm but may
consume longer runtimes".  This baseline implements the two classic
combination rules over this repository's engines:

- ``union``: flag when either engine flags — maximises hits (EPIC-style
  meta-classification with an OR vote), pays in extras and runtime;
- ``intersection``: flag only when both agree — minimises extras, pays
  in hits.

Redundant clip removal runs on the combined report list either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.baselines.pattern_match import PatternMatchConfig, PatternMatcher
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.extraction import extract_for_detector
from repro.core.metrics import DetectionScore, score_reports
from repro.core.removal import remove_redundant_clips
from repro.data.synth import TestingLayout
from repro.errors import ConfigError
from repro.layout.clip import Clip, ClipLabel, ClipSet
from repro.layout.layout import Layout


@dataclass
class HybridReport:
    """Evaluation outcome with per-engine attribution."""

    reports: list[Clip]
    candidate_count: int
    pm_flags: int
    ml_flags: int
    eval_seconds: float
    score: Optional[DetectionScore] = None


@dataclass
class HybridDetector:
    """PM + ML combination detector.

    ``mode`` is ``"union"`` or ``"intersection"``.  Both engines are
    trained on the same clip set; at evaluation each candidate is judged
    by both and the votes are combined.
    """

    mode: str = "union"
    ml_config: DetectorConfig = field(default_factory=DetectorConfig.ours)
    pm_config: PatternMatchConfig = field(default_factory=PatternMatchConfig)

    def __post_init__(self) -> None:
        if self.mode not in ("union", "intersection"):
            raise ConfigError(f"mode must be 'union' or 'intersection', got {self.mode!r}")
        self._ml = HotspotDetector(self.ml_config)
        self._pm = PatternMatcher(self.pm_config)

    def fit(self, training: ClipSet) -> None:
        self._ml.fit(training)
        self._pm.fit(training)

    def detect(self, layout: Layout, layer: int = 1) -> HybridReport:
        started = time.perf_counter()
        extraction = extract_for_detector(layout, self.ml_config, layer)
        candidates = extraction.clips

        ml_flags = self._ml.predict_clips(candidates)
        pm_flags = np.array([self._pm.matches(clip) for clip in candidates])
        if self.mode == "union":
            combined = ml_flags | pm_flags
        else:
            combined = ml_flags & pm_flags
        flagged = [clip for clip, keep in zip(candidates, combined) if keep]

        if self.ml_config.use_removal and flagged:
            def clip_factory(core):
                return layout.cut_clip_at_core(self.ml_config.spec, core, layer)

            reports = remove_redundant_clips(
                flagged, self.ml_config.spec, self.ml_config.removal, clip_factory
            )
        else:
            reports = flagged
        return HybridReport(
            reports=[r.with_label(ClipLabel.HOTSPOT) for r in reports],
            candidate_count=len(candidates),
            pm_flags=int(pm_flags.sum()),
            ml_flags=int(ml_flags.sum()),
            eval_seconds=time.perf_counter() - started,
        )

    def score(self, testing: TestingLayout, layer: int = 1) -> HybridReport:
        report = self.detect(testing.layout, layer)
        report.score = score_reports(
            report.reports, testing.hotspot_cores(), testing.area_um2
        )
        return report
