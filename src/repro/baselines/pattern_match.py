"""Fuzzy pattern-matching hotspot detector (contest-winner stand-in).

The ICCAD-2012 first-place entry (by the paper's own group) was a fuzzy
*pattern-matching* engine: known hotspot patterns are stored in a library
and layout sites are flagged when they match a stored pattern within a
tolerance.  This module implements that approach over the same substrate
the ML detector uses:

- a pattern is stored as its D8-canonical directional-string key plus its
  core density grid;
- a candidate clip matches when its string key equals a library entry's
  and the Eq. 1 density distance is within ``tolerance``.

The characteristic behaviour the paper reports for pattern matching falls
out naturally: precharacterised hotspots are found with near-perfect
recall and the evaluation is fast, but the matcher has no notion of the
*critical dimension boundary* — safe patterns sharing a hotspot's topology
at slightly larger spacings also match, which is why the contest winner's
extra counts dwarf the ML framework's (Table II).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.extraction import extract_candidate_clips
from repro.core.metrics import DetectionScore, score_reports
from repro.core.config import ExtractionConfig
from repro.core.resample import shift_derivatives
from repro.data.synth import TestingLayout
from repro.errors import NotFittedError
from repro.layout.clip import Clip, ClipLabel, ClipSet, ClipSpec
from repro.layout.layout import Layout
from repro.topology.strings import canonical_string_key


@dataclass
class PatternEntry:
    """One library pattern: topology key plus density signature."""

    key: tuple
    grid: np.ndarray


@dataclass
class PatternMatchConfig:
    """Matcher knobs.

    ``tolerance`` is the maximum Eq. 1 density distance for a fuzzy match
    (in summed-density units over the grid).  ``shift_amount`` mirrors the
    ML pipeline's data shifting, widening each stored pattern into a small
    neighbourhood of anchors.
    """

    grid_resolution: int = 12
    tolerance: float = 9.0
    shift_amount: int = 120
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)


@dataclass
class PatternMatchReport:
    """Evaluation result of the matcher on one layout."""

    reports: list[Clip]
    candidate_count: int
    eval_seconds: float
    score: Optional[DetectionScore] = None


class PatternMatcher:
    """Fuzzy pattern-matching detector over hotspot training clips."""

    def __init__(self, config: PatternMatchConfig = PatternMatchConfig()):
        self.config = config
        self._library: Optional[dict[tuple, list[PatternEntry]]] = None
        self._spec: Optional[ClipSpec] = None

    # ------------------------------------------------------------------
    def fit(self, training: ClipSet) -> int:
        """Build the pattern library from the hotspot training clips.

        Returns the number of stored entries.  Nonhotspot clips are not
        used — a pattern matcher only knows what a hotspot looks like,
        which is precisely its structural weakness vs. the ML framework.
        """
        library: dict[tuple, list[PatternEntry]] = {}
        for clip in training.hotspots():
            for derivative in shift_derivatives(clip, self.config.shift_amount):
                key = canonical_string_key(
                    derivative.core_rects(), derivative.core
                )
                grid = derivative.core_density_grid(self.config.grid_resolution)
                library.setdefault(key, []).append(PatternEntry(key, grid))
        self._library = library
        self._spec = training.spec
        return sum(len(entries) for entries in library.values())

    def _require_library(self) -> dict[tuple, list[PatternEntry]]:
        if self._library is None:
            raise NotFittedError("PatternMatcher used before fit()")
        return self._library

    # ------------------------------------------------------------------
    def matches(self, clip: Clip) -> bool:
        """Whether one clip fuzzily matches any stored hotspot pattern."""
        library = self._require_library()
        key = canonical_string_key(clip.core_rects(), clip.core)
        entries = library.get(key)
        if not entries:
            return False
        from repro.topology.density import density_distance

        grid = clip.core_density_grid(self.config.grid_resolution)
        return any(
            density_distance(entry.grid, grid) <= self.config.tolerance
            for entry in entries
        )

    def detect(self, layout: Layout, layer: int = 1) -> PatternMatchReport:
        """Scan a layout: extract candidates, match each against the library."""
        spec = self._spec
        if spec is None:
            raise NotFittedError("PatternMatcher used before fit()")
        started = time.perf_counter()
        extraction = extract_candidate_clips(
            layout, spec, self.config.extraction, layer
        )
        reports = [
            clip.with_label(ClipLabel.HOTSPOT)
            for clip in extraction.clips
            if self.matches(clip)
        ]
        return PatternMatchReport(
            reports=reports,
            candidate_count=len(extraction.clips),
            eval_seconds=time.perf_counter() - started,
        )

    def score(self, testing: TestingLayout, layer: int = 1) -> PatternMatchReport:
        """Detect on a testing layout and grade against its ground truth."""
        report = self.detect(testing.layout, layer)
        report.score = score_reports(
            report.reports, testing.hotspot_cores(), testing.area_um2
        )
        return report
