"""repro — machine-learning lithography hotspot detection.

A full reproduction of Yu, Lin, Jiang & Chiang, "Machine-Learning-Based
Hotspot Detection Using Topological Classification and Critical Feature
Extraction" (DAC 2013; extended in IEEE TCAD 34(3), 2015), built from
scratch in Python: GDSII substrate, Manhattan geometry engine, two-level
topological classification, MTCG critical-feature extraction, an SMO-based
C-SVM, the multiple-kernel + feedback-kernel learner, density-driven clip
extraction and redundant clip removal — plus baselines, synthetic
ICCAD-2012-like benchmarks, and the paper's experiment harness.

Quickstart::

    from repro import DetectorConfig, HotspotDetector, generate_benchmark

    bench = generate_benchmark("benchmark1", scale=0.3)
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(bench.training)
    result = detector.score(bench.testing)
    print(f"accuracy={result.score.accuracy:.1%} extras={result.score.extras}")
"""

from repro.core import (
    DetectionReport,
    DetectionScore,
    DetectorConfig,
    ExtractionConfig,
    HotspotDetector,
    RemovalConfig,
    TrainingReport,
    explain_clip,
    load_detector,
    save_detector,
    score_reports,
    sweep_thresholds,
)
from repro.data import (
    BENCHMARKS,
    ICCAD_SPEC,
    Benchmark,
    generate_all,
    generate_benchmark,
)
from repro.layout import Clip, ClipLabel, ClipSet, ClipSpec, Layout

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "HotspotDetector",
    "DetectorConfig",
    "ExtractionConfig",
    "RemovalConfig",
    "DetectionReport",
    "DetectionScore",
    "TrainingReport",
    "score_reports",
    "explain_clip",
    "save_detector",
    "load_detector",
    "sweep_thresholds",
    "Clip",
    "ClipLabel",
    "ClipSet",
    "ClipSpec",
    "Layout",
    "Benchmark",
    "BENCHMARKS",
    "ICCAD_SPEC",
    "generate_benchmark",
    "generate_all",
]
