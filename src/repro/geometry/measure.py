"""Spacing and width measurements over rectilinear geometry.

Two of the paper's five nontopological features are distances between
*internally facing* and *externally facing* polygon-edge pairs
(Fig. 7(e)).  In DRC terms these are the classic ``width`` and ``space``
checks.  A third feature, the number of *touched points*, counts locations
where polygons meet only at a point or edge endpoint.

Measurements are taken from directed polygon edges: vertices are stored
counter-clockwise, so the polygon interior lies to the *left* of every
directed edge.  Two parallel edges "face" each other when their projections
overlap and their interior sides point at one another (internal) or away
from one another (external).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class DirectedEdge:
    """An axis-parallel edge annotated with where the polygon interior is.

    ``axis`` is ``"v"`` for vertical edges (constant x) or ``"h"`` for
    horizontal edges (constant y).  ``position`` is that constant
    coordinate, ``lo``/``hi`` the spanning interval on the other axis, and
    ``interior_positive`` records whether the interior lies toward the
    positive direction of the constant axis.
    """

    axis: str
    position: int
    lo: int
    hi: int
    interior_positive: bool
    polygon_index: int


def directed_edges(polygons: Iterable[Polygon]) -> list[DirectedEdge]:
    """Annotated edges of every polygon, tagged with the polygon index."""
    out: list[DirectedEdge] = []
    for index, polygon in enumerate(polygons):
        for edge in polygon.edges():
            a, b = edge.start, edge.end
            if a.x == b.x:
                # Vertical edge; CCW interior is on the left of travel:
                # travelling up (+y) puts interior toward -x.
                going_up = b.y > a.y
                out.append(
                    DirectedEdge(
                        axis="v",
                        position=a.x,
                        lo=min(a.y, b.y),
                        hi=max(a.y, b.y),
                        interior_positive=not going_up,
                        polygon_index=index,
                    )
                )
            else:
                # Horizontal edge; travelling right (+x) puts interior
                # toward +y.
                going_right = b.x > a.x
                out.append(
                    DirectedEdge(
                        axis="h",
                        position=a.y,
                        lo=min(a.x, b.x),
                        hi=max(a.x, b.x),
                        interior_positive=going_right,
                        polygon_index=index,
                    )
                )
    return out


def _facing_distance(
    first: DirectedEdge, second: DirectedEdge, *, internal: bool
) -> Optional[int]:
    """Distance between two facing parallel edges, or ``None``.

    ``internal=True`` selects pairs whose interiors point toward each other
    through solid material (width checks); ``internal=False`` selects pairs
    whose interiors point away, i.e. the gap between them is empty space
    (spacing checks).
    """
    if first.axis != second.axis:
        return None
    if first.position == second.position:
        return None
    lower, upper = (
        (first, second) if first.position < second.position else (second, first)
    )
    # Projection overlap on the running axis is required for facing.
    if min(lower.hi, upper.hi) <= max(lower.lo, upper.lo):
        return None
    if internal:
        faces = lower.interior_positive and not upper.interior_positive
    else:
        faces = (not lower.interior_positive) and upper.interior_positive
    if not faces:
        return None
    return upper.position - lower.position


def min_internal_distance(polygons: list[Polygon]) -> Optional[int]:
    """Minimum width of any polygon: closest internally facing edge pair.

    Only same-polygon pairs are considered — interior material belongs to
    one polygon.  Returns ``None`` when no facing pair exists (impossible
    for valid polygons, but guarded for empty input).
    """
    edges = directed_edges(polygons)
    best: Optional[int] = None
    for i, first in enumerate(edges):
        for second in edges[i + 1 :]:
            if first.polygon_index != second.polygon_index:
                continue
            d = _facing_distance(first, second, internal=True)
            if d is not None and (best is None or d < best):
                best = d
    return best


def min_external_distance(polygons: list[Polygon]) -> Optional[int]:
    """Minimum spacing between externally facing edge pairs.

    Pairs from the same polygon are included: a "U" shape faces itself
    across its notch, and that notch spacing is lithographically meaningful.
    Returns ``None`` when nothing faces anything (e.g. a single rectangle).
    """
    edges = directed_edges(polygons)
    best: Optional[int] = None
    for i, first in enumerate(edges):
        for second in edges[i + 1 :]:
            d = _facing_distance(first, second, internal=False)
            if d is not None and (best is None or d < best):
                best = d
    return best


def touch_point_count(polygons: list[Polygon]) -> int:
    """Number of vertex locations shared by two or more distinct polygons.

    A "touched point" in Fig. 7(e) is a place where polygons abut at a
    corner.  We count lattice points that appear as vertices of more than
    one polygon.
    """
    seen: dict[tuple[int, int], set[int]] = {}
    for index, polygon in enumerate(polygons):
        for vertex in polygon.vertices:
            seen.setdefault((vertex.x, vertex.y), set()).add(index)
    return sum(1 for owners in seen.values() if len(owners) > 1)


def corner_count(polygons: list[Polygon]) -> int:
    """Total corner count (convex plus concave) across all polygons."""
    return sum(len(polygon.corners()) for polygon in polygons)


def min_rect_spacing(rects: list[Rect]) -> Optional[int]:
    """Minimum face-to-face gap between axis-aligned rectangles.

    A cheap rectangle-level surrogate for :func:`min_external_distance`
    used on dissected geometry where polygon identity is unavailable.  Only
    pairs with overlapping projections (true facing) count; diagonal
    neighbours do not.
    """
    best: Optional[int] = None
    for i, first in enumerate(rects):
        for second in rects[i + 1 :]:
            if first.overlaps(second):
                continue
            x_overlap = min(first.x1, second.x1) > max(first.x0, second.x0)
            y_overlap = min(first.y1, second.y1) > max(first.y0, second.y0)
            if y_overlap and not x_overlap:
                gap = first.gap_x(second)
            elif x_overlap and not y_overlap:
                gap = first.gap_y(second)
            else:
                continue
            if gap > 0 and (best is None or gap < best):
                best = gap
    return best
