"""Integer-lattice Manhattan geometry substrate.

Everything downstream — GDSII shapes, clips, tilings, directional strings,
density grids — is built from the primitives exported here.
"""

from repro.geometry.point import ORIGIN, Point
from repro.geometry.polygon import Corner, CornerKind, Edge, Polygon
from repro.geometry.rect import Rect, bounding_box, total_area, union_area
from repro.geometry.transform import (
    ALL_ORIENTATIONS,
    Orientation,
    canonical_form,
    compose,
    transform_point_in_window,
    transform_rect_in_window,
    transform_rects_in_window,
)
from repro.geometry.dissect import (
    cut_to_max_size,
    disjoint_cover,
    subtract_rect,
    dissect_all,
    dissect_polygon,
    horizontal_slices,
    merge_vertical,
    rects_cover_polygon,
)
from repro.geometry.grid import (
    all_orientation_grids,
    density_grid,
    orient_grid,
    window_density,
)
from repro.geometry.measure import (
    corner_count,
    min_external_distance,
    min_internal_distance,
    min_rect_spacing,
    touch_point_count,
)

__all__ = [
    "ORIGIN",
    "Point",
    "Rect",
    "Polygon",
    "Edge",
    "Corner",
    "CornerKind",
    "Orientation",
    "ALL_ORIENTATIONS",
    "bounding_box",
    "total_area",
    "union_area",
    "canonical_form",
    "compose",
    "transform_point_in_window",
    "transform_rect_in_window",
    "transform_rects_in_window",
    "horizontal_slices",
    "merge_vertical",
    "cut_to_max_size",
    "dissect_polygon",
    "dissect_all",
    "rects_cover_polygon",
    "disjoint_cover",
    "subtract_rect",
    "density_grid",
    "window_density",
    "orient_grid",
    "all_orientation_grids",
    "corner_count",
    "touch_point_count",
    "min_internal_distance",
    "min_external_distance",
    "min_rect_spacing",
]
