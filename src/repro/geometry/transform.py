"""The dihedral group D8 of layout orientations, plus GDSII-style transforms.

The paper matches patterns under "eight possible orientations ... four
rotations (0, 90, 180, 270 degrees) and two mirrors" (footnote 1).  These
eight symmetries form the dihedral group of the square, implemented here as
an enum whose members act on points, rectangles and rectangle sets within a
square window.

Orientation of *content inside a window* is what both the directional-string
matcher and the density distance (Eq. 1) need: the window stays put and its
contents are rotated/mirrored about the window centre.  All transforms keep
coordinates integral provided the window has even side length — and every
window in this library does, because clip sides come from even nm counts.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterable

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class Orientation(Enum):
    """One of the eight symmetries of the square (the dihedral group D8).

    Naming: ``R<deg>`` is a counter-clockwise rotation; ``M`` prefixed
    members first mirror about the vertical axis (x -> -x) then rotate.
    """

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"  # mirror about the horizontal axis (y -> -y)
    MY = "MY"  # mirror about the vertical axis (x -> -x)
    MXR90 = "MXR90"  # mirror about horizontal axis, then rotate 90 ccw
    MYR90 = "MYR90"  # mirror about vertical axis, then rotate 90 ccw

    def apply_to_unit(self, x: int, y: int) -> tuple[int, int]:
        """Act on a coordinate pair about the origin."""
        if self is Orientation.R0:
            return x, y
        if self is Orientation.R90:
            return -y, x
        if self is Orientation.R180:
            return -x, -y
        if self is Orientation.R270:
            return y, -x
        if self is Orientation.MX:
            return x, -y
        if self is Orientation.MY:
            return -x, y
        if self is Orientation.MXR90:
            return y, x
        if self is Orientation.MYR90:
            return -y, -x
        raise GeometryError(f"unknown orientation {self!r}")

    @property
    def swaps_axes(self) -> bool:
        """Whether width and height exchange under this orientation."""
        return self in (
            Orientation.R90,
            Orientation.R270,
            Orientation.MXR90,
            Orientation.MYR90,
        )

    def inverse(self) -> "Orientation":
        """The orientation that undoes this one."""
        inverses = {
            Orientation.R0: Orientation.R0,
            Orientation.R90: Orientation.R270,
            Orientation.R180: Orientation.R180,
            Orientation.R270: Orientation.R90,
            Orientation.MX: Orientation.MX,
            Orientation.MY: Orientation.MY,
            Orientation.MXR90: Orientation.MXR90,
            Orientation.MYR90: Orientation.MYR90,
        }
        return inverses[self]


ALL_ORIENTATIONS: tuple[Orientation, ...] = tuple(Orientation)


def transform_point_in_window(p: Point, window: Rect, orientation: Orientation) -> Point:
    """Act on a point with the window held fixed.

    The point is expressed relative to the window centre (doubled to stay
    integral for odd-centre windows), transformed, and re-anchored.  For
    axis-swapping orientations the window must be square, otherwise the
    image would fall outside the window.
    """
    if orientation.swaps_axes and window.width != window.height:
        raise GeometryError(
            "axis-swapping orientation requires a square window, got "
            f"{window.width}x{window.height}"
        )
    # Work in doubled coordinates so the centre (possibly at a half-integer)
    # stays on the lattice.
    cx2 = window.x0 + window.x1
    cy2 = window.y0 + window.y1
    rel_x = 2 * p.x - cx2
    rel_y = 2 * p.y - cy2
    tx, ty = orientation.apply_to_unit(rel_x, rel_y)
    return Point((tx + cx2) // 2, (ty + cy2) // 2)


def transform_rect_in_window(rect: Rect, window: Rect, orientation: Orientation) -> Rect:
    """Act on a rectangle with the window held fixed."""
    a = transform_point_in_window(rect.lower_left, window, orientation)
    b = transform_point_in_window(rect.upper_right, window, orientation)
    return Rect.from_corners(a, b)


def transform_rects_in_window(
    rects: Iterable[Rect], window: Rect, orientation: Orientation
) -> list[Rect]:
    """Act on every rectangle of a set, preserving set semantics.

    The result is sorted so that two rectangle sets that are equal as sets
    compare equal as lists — required by the string/density matchers which
    canonicalise over orientations.
    """
    return sorted(transform_rect_in_window(r, window, orientation) for r in rects)


def compose(first: Orientation, then: Orientation) -> Orientation:
    """Group composition: apply ``first``, then ``then``.

    Computed by probing the action on two points that distinguish all eight
    group elements.
    """
    probes = [(1, 0), (0, 2)]

    def image(orientation_pair: tuple[Orientation, Orientation]) -> tuple:
        a, b = orientation_pair
        out = []
        for x, y in probes:
            mx, my = a.apply_to_unit(x, y)
            out.append(b.apply_to_unit(mx, my))
        return tuple(out)

    target = image((first, then))
    for candidate in ALL_ORIENTATIONS:
        if image((candidate, Orientation.R0)) == target:
            return candidate
    raise GeometryError("orientation composition did not close the group")


def canonical_form(
    rects: list[Rect],
    window: Rect,
    key: Callable[[list[Rect]], object] = tuple,
) -> tuple[Orientation, list[Rect]]:
    """Canonical representative of a rectangle set under D8.

    Returns the orientation giving the lexicographically smallest
    transformed set together with that set.  Two patterns are congruent
    under D8 iff their canonical forms are equal, which gives the clustering
    code an exact, hashable congruence key.
    """
    best: tuple[Orientation, list[Rect]] | None = None
    for orientation in ALL_ORIENTATIONS:
        candidate = transform_rects_in_window(rects, window, orientation)
        if best is None or key(candidate) < key(best[1]):
            best = (orientation, candidate)
    assert best is not None  # ALL_ORIENTATIONS is non-empty
    return best
