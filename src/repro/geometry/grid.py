"""Pixel-density grids over layout windows.

Density-based classification (Section III-B2) pixelates a core pattern and
compares per-pixel polygon densities (Eq. 1).  Clip extraction (Section
III-E) and the nontopological feature set both need window polygon density
too.  This module renders rectangle sets into small numpy density grids.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GeometryError
from repro.geometry.rect import Rect


def density_grid(
    rects: Iterable[Rect],
    window: Rect,
    resolution: int,
) -> np.ndarray:
    """Render rectangles into a ``resolution x resolution`` density grid.

    Each grid cell holds the fraction of its area covered by the (assumed
    non-overlapping) rectangles, in ``[0, 1]``.  The grid is indexed
    ``[row, col]`` with row 0 at the *bottom* of the window so that grid
    coordinates match layout coordinates.

    Rendering is exact: rectangle/cell overlap areas are accumulated with
    integer arithmetic and divided once at the end, so equal patterns give
    bit-identical grids — a property the clustering cache relies on.
    """
    if resolution <= 0:
        raise GeometryError(f"resolution must be positive, got {resolution}")
    if window.width % resolution or window.height % resolution:
        # Non-divisible windows would make cells ragged; the callers always
        # choose resolutions dividing the clip size, so treat this as a bug.
        raise GeometryError(
            f"window {window.width}x{window.height} not divisible by resolution {resolution}"
        )
    cell_w = window.width // resolution
    cell_h = window.height // resolution
    cell_area = cell_w * cell_h
    accum = np.zeros((resolution, resolution), dtype=np.int64)
    for rect in rects:
        clipped = rect.intersection(window)
        if clipped is None:
            continue
        col_lo = (clipped.x0 - window.x0) // cell_w
        col_hi = (clipped.x1 - window.x0 - 1) // cell_w
        row_lo = (clipped.y0 - window.y0) // cell_h
        row_hi = (clipped.y1 - window.y0 - 1) // cell_h
        for row in range(row_lo, row_hi + 1):
            cell_y0 = window.y0 + row * cell_h
            overlap_h = min(clipped.y1, cell_y0 + cell_h) - max(clipped.y0, cell_y0)
            for col in range(col_lo, col_hi + 1):
                cell_x0 = window.x0 + col * cell_w
                overlap_w = min(clipped.x1, cell_x0 + cell_w) - max(clipped.x0, cell_x0)
                accum[row, col] += overlap_w * overlap_h
    return accum.astype(np.float64) / float(cell_area)


def density_grid_fast(
    rects: Iterable[Rect],
    window: Rect,
    resolution: int,
) -> np.ndarray:
    """Vectorized :func:`density_grid`: bit-identical, one matmul.

    Per-rectangle row/column overlap lengths are built by broadcasting
    and combined with an int64 matrix product — integer addition is
    associative, so the different accumulation order still yields the
    exact integer cell areas the scalar double loop produces, and the
    single final division matches bit for bit.
    """
    if resolution <= 0:
        raise GeometryError(f"resolution must be positive, got {resolution}")
    if window.width % resolution or window.height % resolution:
        raise GeometryError(
            f"window {window.width}x{window.height} not divisible by resolution {resolution}"
        )
    cell_w = window.width // resolution
    cell_h = window.height // resolution
    cell_area = cell_w * cell_h
    clipped = [r for r in (rect.intersection(window) for rect in rects) if r]
    if not clipped:
        return np.zeros((resolution, resolution), dtype=np.float64)
    arr = np.array(
        [(r.x0, r.y0, r.x1, r.y1) for r in clipped], dtype=np.int64
    )
    col_starts = window.x0 + np.arange(resolution, dtype=np.int64) * cell_w
    row_starts = window.y0 + np.arange(resolution, dtype=np.int64) * cell_h
    overlap_w = np.minimum(arr[:, 2, None], col_starts[None, :] + cell_w) - np.maximum(
        arr[:, 0, None], col_starts[None, :]
    )
    overlap_h = np.minimum(arr[:, 3, None], row_starts[None, :] + cell_h) - np.maximum(
        arr[:, 1, None], row_starts[None, :]
    )
    np.maximum(overlap_w, 0, out=overlap_w)
    np.maximum(overlap_h, 0, out=overlap_h)
    accum = overlap_h.T @ overlap_w  # (rows, rects) @ (rects, cols)
    return accum.astype(np.float64) / float(cell_area)


def window_density(rects: Iterable[Rect], window: Rect) -> float:
    """Fraction of ``window`` covered by non-overlapping rectangles."""
    covered = sum(rect.intersection_area(window) for rect in rects)
    return covered / window.area


def orient_grid(grid: np.ndarray, orientation_name: str) -> np.ndarray:
    """Apply a D8 orientation to a square density grid.

    Grid rows grow with layout y (row 0 is the window *bottom*), while
    ``np.rot90`` rotates in array-display terms — so the geometric
    counter-clockwise rotation R90 is ``np.rot90`` with ``k=3``.  Each
    action matches :class:`repro.geometry.transform.Orientation` exactly;
    the test suite cross-checks every orientation against the geometric
    rectangle transform.
    """
    if grid.shape[0] != grid.shape[1]:
        raise GeometryError(f"orientation needs a square grid, got {grid.shape}")
    actions = {
        "R0": lambda g: g,
        "R90": lambda g: np.rot90(g, 3),
        "R180": lambda g: np.rot90(g, 2),
        "R270": lambda g: np.rot90(g, 1),
        "MX": lambda g: np.flipud(g),
        "MY": lambda g: np.fliplr(g),
        "MXR90": lambda g: g.T,
        "MYR90": lambda g: g[::-1, ::-1].T,
    }
    try:
        action = actions[orientation_name]
    except KeyError:
        raise GeometryError(f"unknown orientation {orientation_name!r}") from None
    return action(grid)


def all_orientation_grids(grid: np.ndarray) -> dict[str, np.ndarray]:
    """All eight oriented copies of a square grid, keyed by orientation name."""
    return {
        name: orient_grid(grid, name)
        for name in ("R0", "R90", "R180", "R270", "MX", "MY", "MXR90", "MYR90")
    }
