"""Axis-aligned integer rectangles.

Rectangles are half-open in neither direction: a :class:`Rect` stores its
inclusive lower-left corner ``(x0, y0)`` and exclusive upper-right corner
``(x1, y1)`` in the sense that ``width = x1 - x0`` and two rectangles that
share only an edge have zero overlap *area* but are still considered
*touching*.  This matches how layout polygons are dissected into
non-overlapping rectangle covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import GeometryError
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True, order=True)
class Rect:
    """An axis-aligned rectangle ``[x0, x1] x [y0, y1]`` with ``x0 <= x1``.

    Degenerate (zero-width or zero-height) rectangles are rejected at
    construction; use :meth:`Rect.maybe` for guarded construction when a
    clipped result might be empty.
    """

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x0 >= self.x1 or self.y0 >= self.y1:
            raise GeometryError(
                f"degenerate rectangle ({self.x0},{self.y0})-({self.x1},{self.y1})"
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def maybe(x0: int, y0: int, x1: int, y1: int) -> Optional["Rect"]:
        """Return a rectangle, or ``None`` if the extent is empty."""
        if x0 >= x1 or y0 >= y1:
            return None
        return Rect(x0, y0, x1, y1)

    @staticmethod
    def from_corners(a: Point, b: Point) -> "Rect":
        """Build the bounding rectangle of two opposite corners."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def from_center(cx: int, cy: int, width: int, height: int) -> "Rect":
        """Build a ``width`` x ``height`` rectangle centred on ``(cx, cy)``.

        Odd dimensions are biased toward the lower-left, which keeps
        repeated centre/extent round trips stable.
        """
        half_w, half_h = width // 2, height // 2
        return Rect(cx - half_w, cy - half_h, cx - half_w + width, cy - half_h + height)

    # ------------------------------------------------------------------
    # basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) // 2, (self.y0 + self.y1) // 2)

    @property
    def lower_left(self) -> Point:
        return Point(self.x0, self.y0)

    @property
    def upper_right(self) -> Point:
        return Point(self.x1, self.y1)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners in counter-clockwise order from the lower-left."""
        return (
            Point(self.x0, self.y0),
            Point(self.x1, self.y0),
            Point(self.x1, self.y1),
            Point(self.x0, self.y1),
        )

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point, *, strict: bool = False) -> bool:
        """Whether ``p`` lies inside (or, unless ``strict``, on) this rect."""
        if strict:
            return self.x0 < p.x < self.x1 and self.y0 < p.y < self.y1
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely within this rectangle."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def overlaps(self, other: "Rect") -> bool:
        """Whether the two rectangles share positive area."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def touches(self, other: "Rect") -> bool:
        """Whether the rectangles share at least an edge or corner point."""
        return (
            self.x0 <= other.x1
            and other.x0 <= self.x1
            and self.y0 <= other.y1
            and other.y0 <= self.y1
        )

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` when there is no area."""
        return Rect.maybe(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def intersection_area(self, other: "Rect") -> int:
        """Area of overlap with ``other`` (0 when disjoint or touching)."""
        w = min(self.x1, other.x1) - max(self.x0, other.x0)
        h = min(self.y1, other.y1) - max(self.y0, other.y0)
        if w <= 0 or h <= 0:
            return 0
        return w * h

    def union_bbox(self, other: "Rect") -> "Rect":
        """Minimum bounding box covering both rectangles."""
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def expanded(self, margin: int) -> "Rect":
        """Grow (or, for negative ``margin``, shrink) by ``margin`` per side."""
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return this rectangle moved by ``(dx, dy)``."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def clipped(self, window: "Rect") -> Optional["Rect"]:
        """Alias of :meth:`intersection`, named for window-clipping call sites."""
        return self.intersection(window)

    # ------------------------------------------------------------------
    # gaps (used by external-feature and clip-distribution measurements)
    # ------------------------------------------------------------------
    def gap_x(self, other: "Rect") -> int:
        """Horizontal free distance to ``other`` (0 when x-spans overlap)."""
        return max(0, max(self.x0, other.x0) - min(self.x1, other.x1))

    def gap_y(self, other: "Rect") -> int:
        """Vertical free distance to ``other`` (0 when y-spans overlap)."""
        return max(0, max(self.y0, other.y0) - min(self.y1, other.y1))

    def separation(self, other: "Rect") -> int:
        """Euclidean-free separation rounded down, 0 when touching/overlapping."""
        gx, gy = self.gap_x(other), self.gap_y(other)
        if gx == 0:
            return gy
        if gy == 0:
            return gx
        return int((gx * gx + gy * gy) ** 0.5)


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """Minimum bounding box of a collection of rectangles.

    Returns ``None`` for an empty collection; callers that require geometry
    should treat that as "no polygons in window".
    """
    box: Optional[Rect] = None
    for rect in rects:
        box = rect if box is None else box.union_bbox(rect)
    return box


def total_area(rects: Iterable[Rect]) -> int:
    """Total area of *non-overlapping* rectangles.

    The dissection routines in :mod:`repro.geometry.dissect` guarantee
    non-overlap, so a plain sum is exact there.  For possibly-overlapping
    input use :func:`union_area`.
    """
    return sum(rect.area for rect in rects)


def union_area(rects: list[Rect]) -> int:
    """Exact area of the union of possibly-overlapping rectangles.

    Implemented by coordinate compression: the plane is cut along every
    distinct x and y coordinate, and each elementary cell is counted once if
    any rectangle covers it.  O(n^2) cells for n rectangles, which is ample
    for per-clip workloads (tens of rectangles).
    """
    if not rects:
        return 0
    xs = sorted({r.x0 for r in rects} | {r.x1 for r in rects})
    ys = sorted({r.y0 for r in rects} | {r.y1 for r in rects})
    area = 0
    for xi in range(len(xs) - 1):
        cx0, cx1 = xs[xi], xs[xi + 1]
        for yi in range(len(ys) - 1):
            cy0, cy1 = ys[yi], ys[yi + 1]
            for rect in rects:
                if rect.x0 <= cx0 and cx1 <= rect.x1 and rect.y0 <= cy0 and cy1 <= rect.y1:
                    area += (cx1 - cx0) * (cy1 - cy0)
                    break
    return area


def iter_pairs(rects: list[Rect]) -> Iterator[tuple[Rect, Rect]]:
    """All unordered pairs of rectangles, for spacing scans."""
    for i, first in enumerate(rects):
        for second in rects[i + 1 :]:
            yield first, second
