"""Rectilinear (Manhattan) polygons.

Layout shapes on metal layers are rectilinear polygons.  The GDSII reader
produces these, and the dissection code in :mod:`repro.geometry.dissect`
slices them into non-overlapping rectangles, which is the representation the
rest of the pipeline (tiling, features, density) operates on.

A polygon is a closed vertex loop with axis-parallel edges.  Vertices are
stored counter-clockwise without the repeated closing vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Edge:
    """A directed axis-parallel polygon edge from ``start`` to ``end``."""

    start: Point
    end: Point

    @property
    def is_horizontal(self) -> bool:
        return self.start.y == self.end.y

    @property
    def is_vertical(self) -> bool:
        return self.start.x == self.end.x

    @property
    def length(self) -> int:
        return self.start.manhattan_distance(self.end)

    def bbox(self) -> tuple[int, int, int, int]:
        """Degenerate bounding extent ``(x0, y0, x1, y1)`` of the segment."""
        return (
            min(self.start.x, self.end.x),
            min(self.start.y, self.end.y),
            max(self.start.x, self.end.x),
            max(self.start.y, self.end.y),
        )


class CornerKind:
    """Labels for polygon corners.

    ``CONVEX`` corners point outward (interior angle 90 degrees) and
    ``CONCAVE`` corners point inward (interior angle 270 degrees).  Corner
    counts are one of the paper's five nontopological features.
    """

    CONVEX = "convex"
    CONCAVE = "concave"


@dataclass(frozen=True)
class Corner:
    """A polygon corner with its kind and location."""

    point: Point
    kind: str


@dataclass
class Polygon:
    """A simple rectilinear polygon.

    Parameters
    ----------
    vertices:
        The boundary loop, counter-clockwise, axis-parallel consecutive
        edges, no repeated closing vertex.  Clockwise input is accepted and
        silently reversed; collinear runs are merged.
    """

    vertices: list[Point] = field(default_factory=list)

    def __init__(self, vertices: Sequence[Point | tuple[int, int]]):
        points = [p if isinstance(p, Point) else Point(*p) for p in vertices]
        points = _drop_collinear(points)
        if len(points) < 4:
            raise GeometryError(f"rectilinear polygon needs >= 4 vertices, got {len(points)}")
        _check_rectilinear(points)
        if _signed_area2(points) < 0:
            points = list(reversed(points))
        if _signed_area2(points) == 0:
            raise GeometryError("polygon has zero area")
        self.vertices = points

    # ------------------------------------------------------------------
    @staticmethod
    def from_rect(rect: Rect) -> "Polygon":
        """The four-vertex polygon of a rectangle."""
        return Polygon(rect.corners())

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def area(self) -> int:
        """Enclosed area (always positive; vertices are stored CCW)."""
        return _signed_area2(self.vertices) // 2

    def bbox(self) -> Rect:
        xs = [p.x for p in self.vertices]
        ys = [p.y for p in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def edges(self) -> Iterator[Edge]:
        """The boundary edges in loop order."""
        n = len(self.vertices)
        for i in range(n):
            yield Edge(self.vertices[i], self.vertices[(i + 1) % n])

    def corners(self) -> list[Corner]:
        """Classify every vertex as convex or concave.

        For a CCW loop a left turn at a vertex is convex, a right turn is
        concave.  Rectilinear simple polygons have ``convex = concave + 4``.
        """
        out: list[Corner] = []
        n = len(self.vertices)
        for i in range(n):
            prev_pt = self.vertices[(i - 1) % n]
            here = self.vertices[i]
            next_pt = self.vertices[(i + 1) % n]
            cross = (here.x - prev_pt.x) * (next_pt.y - here.y) - (
                here.y - prev_pt.y
            ) * (next_pt.x - here.x)
            kind = CornerKind.CONVEX if cross > 0 else CornerKind.CONCAVE
            out.append(Corner(here, kind))
        return out

    def convex_corner_count(self) -> int:
        return sum(1 for c in self.corners() if c.kind == CornerKind.CONVEX)

    def concave_corner_count(self) -> int:
        return sum(1 for c in self.corners() if c.kind == CornerKind.CONCAVE)

    def contains_point(self, p: Point) -> bool:
        """Point-in-polygon via crossing count (boundary counts as inside)."""
        for edge in self.edges():
            x0, y0, x1, y1 = edge.bbox()
            if x0 <= p.x <= x1 and y0 <= p.y <= y1:
                return True
        inside = False
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if (a.y > p.y) != (b.y > p.y):
                # Vertical edges only (rectilinear), so x is constant on the
                # crossing edge.
                if a.x > p.x:
                    inside = not inside
        return inside

    def translated(self, dx: int, dy: int) -> "Polygon":
        return Polygon([v.translated(dx, dy) for v in self.vertices])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return _canonical_loop(self.vertices) == _canonical_loop(other.vertices)

    def __hash__(self) -> int:
        return hash(_canonical_loop(self.vertices))

    def __repr__(self) -> str:
        return f"Polygon({[(v.x, v.y) for v in self.vertices]})"


# ----------------------------------------------------------------------
# module-private helpers
# ----------------------------------------------------------------------


def _drop_collinear(points: list[Point]) -> list[Point]:
    """Remove repeated and collinear-run vertices from a loop."""
    # Remove exact consecutive duplicates first.
    deduped: list[Point] = []
    for p in points:
        if not deduped or deduped[-1] != p:
            deduped.append(p)
    if len(deduped) > 1 and deduped[0] == deduped[-1]:
        deduped.pop()
    if len(deduped) < 3:
        return deduped
    out: list[Point] = []
    n = len(deduped)
    for i in range(n):
        prev_pt = deduped[(i - 1) % n]
        here = deduped[i]
        next_pt = deduped[(i + 1) % n]
        cross = (here.x - prev_pt.x) * (next_pt.y - here.y) - (here.y - prev_pt.y) * (
            next_pt.x - here.x
        )
        if cross != 0:
            out.append(here)
    return out


def _check_rectilinear(points: list[Point]) -> None:
    n = len(points)
    for i in range(n):
        a, b = points[i], points[(i + 1) % n]
        if a.x != b.x and a.y != b.y:
            raise GeometryError(f"non-axis-parallel edge {a} -> {b}")


def _signed_area2(points: list[Point]) -> int:
    """Twice the signed area (positive for CCW loops)."""
    total = 0
    n = len(points)
    for i in range(n):
        a, b = points[i], points[(i + 1) % n]
        total += a.x * b.y - b.x * a.y
    return total


def _canonical_loop(points: list[Point]) -> tuple[tuple[int, int], ...]:
    """Rotation-invariant canonical tuple of a vertex loop."""
    tuples = [(p.x, p.y) for p in points]
    start = tuples.index(min(tuples))
    rotated = tuples[start:] + tuples[:start]
    return tuple(rotated)
