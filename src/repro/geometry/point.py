"""Integer lattice points and vectors.

All geometry in this library lives on an integer lattice whose unit is the
database unit (DBU) of the layout, conventionally 1 nm for the 32/28 nm
benchmarks the paper evaluates on.  Using integers everywhere keeps every
comparison exact: slicing coordinates, tile boundaries and directional-string
codes never suffer floating-point drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """A point on the integer layout lattice.

    Points are ordered lexicographically ``(x, y)`` which matches the order
    used by sweep-line algorithms over vertical slice boundaries.
    """

    x: int
    y: int

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y

    def translated(self, dx: int, dy: int) -> "Point":
        """Return this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> int:
        """L1 distance to ``other`` — the natural metric on a routing grid."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def chebyshev_distance(self, other: "Point") -> int:
        """L-infinity distance to ``other``."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)


ORIGIN = Point(0, 0)
