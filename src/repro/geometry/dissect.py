"""Polygon dissection into rectangle covers.

Section III-E of the paper starts layout-clip extraction by slicing every
layout polygon *horizontally* into rectangles and then cutting rectangles
whose width or height exceeds the hotspot core side length.  This module
implements both steps, plus the inverse check used by tests (the dissection
must tile the polygon exactly: disjoint rectangles whose total area equals
the polygon area).
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


def horizontal_slices(polygon: Polygon) -> list[Rect]:
    """Slice a rectilinear polygon into horizontal rectangles.

    The polygon interior is cut along every distinct vertex ``y``
    coordinate, producing horizontal slabs.  Within a slab, the covered x
    intervals are found by intersecting the slab midline with the polygon's
    vertical edges (even-odd rule).  Adjacent aligned rectangles in
    consecutive slabs are *not* merged — matching Fig. 11(a), where each
    slab contributes its own rectangle.
    """
    ys = sorted({v.y for v in polygon.vertices})
    vertical_edges = [e for e in polygon.edges() if e.is_vertical]
    out: list[Rect] = []
    for y_low, y_high in zip(ys, ys[1:]):
        # Every vertical edge either fully spans this slab or misses it.
        crossings = sorted(
            e.start.x
            for e in vertical_edges
            if min(e.start.y, e.end.y) <= y_low and y_high <= max(e.start.y, e.end.y)
        )
        # Even-odd pairing of crossings gives covered intervals.
        for i in range(0, len(crossings) - 1, 2):
            x0, x1 = crossings[i], crossings[i + 1]
            if x0 < x1:
                out.append(Rect(x0, y_low, x1, y_high))
    return out


def merge_vertical(rects: list[Rect]) -> list[Rect]:
    """Merge vertically-stacked rectangles with identical x spans.

    Horizontal slicing cuts a plain rectangle with a notch next to it into
    several stacked slabs; merging them back keeps downstream tile counts
    small without changing covered area.
    """
    by_span: dict[tuple[int, int], list[Rect]] = {}
    for rect in rects:
        by_span.setdefault((rect.x0, rect.x1), []).append(rect)
    merged: list[Rect] = []
    for (x0, x1), group in by_span.items():
        group.sort(key=lambda r: r.y0)
        current = group[0]
        for rect in group[1:]:
            if rect.y0 == current.y1:
                current = Rect(x0, current.y0, x1, rect.y1)
            else:
                merged.append(current)
                current = rect
        merged.append(current)
    return sorted(merged)


def cut_to_max_size(rects: Iterable[Rect], max_side: int) -> list[Rect]:
    """Cut rectangles so no side exceeds ``max_side``.

    This is the second dissection step of Section III-E: rectangles wider or
    taller than the hotspot core side length are chopped into a grid of
    pieces, guaranteeing that anchoring a clip at each piece's lower-left
    corner visits every potential hotspot site.
    """
    out: list[Rect] = []
    for rect in rects:
        x_cuts = _cut_points(rect.x0, rect.x1, max_side)
        y_cuts = _cut_points(rect.y0, rect.y1, max_side)
        for xa, xb in zip(x_cuts, x_cuts[1:]):
            for ya, yb in zip(y_cuts, y_cuts[1:]):
                out.append(Rect(xa, ya, xb, yb))
    return out


def dissect_polygon(polygon: Polygon, max_side: int | None = None) -> list[Rect]:
    """Full dissection: horizontal slicing, merge, then optional size cut."""
    rects = merge_vertical(horizontal_slices(polygon))
    if max_side is not None:
        rects = cut_to_max_size(rects, max_side)
    return rects


def dissect_all(polygons: Iterable[Polygon], max_side: int | None = None) -> list[Rect]:
    """Dissect a polygon collection into one flat rectangle list."""
    out: list[Rect] = []
    for polygon in polygons:
        out.extend(dissect_polygon(polygon, max_side))
    return out


def subtract_rect(rect: Rect, cutter: Rect) -> list[Rect]:
    """``rect`` minus ``cutter`` as up to four disjoint rectangles."""
    overlap = rect.intersection(cutter)
    if overlap is None:
        return [rect]
    pieces = [
        Rect.maybe(rect.x0, rect.y0, rect.x1, overlap.y0),  # below
        Rect.maybe(rect.x0, overlap.y1, rect.x1, rect.y1),  # above
        Rect.maybe(rect.x0, overlap.y0, overlap.x0, overlap.y1),  # left
        Rect.maybe(overlap.x1, overlap.y0, rect.x1, overlap.y1),  # right
    ]
    return [p for p in pieces if p is not None]


def disjoint_cover(rects: Iterable[Rect]) -> list[Rect]:
    """A disjoint rectangle cover of the union of possibly-overlapping rects.

    Later rectangles are trimmed against everything already accepted, so
    the output covers exactly the union with pairwise-disjoint pieces.
    Layout data legitimately contains overlapping shapes (abutting and
    overlapping wires are drawn union-semantics in GDSII); the tiling and
    density code require disjoint input.
    """
    accepted: list[Rect] = []
    for rect in rects:
        pending = [rect]
        for kept in accepted:
            if not pending:
                break
            next_pending: list[Rect] = []
            for piece in pending:
                next_pending.extend(subtract_rect(piece, kept))
            pending = next_pending
        accepted.extend(pending)
    return accepted


def rects_cover_polygon(polygon: Polygon, rects: list[Rect]) -> bool:
    """Check that ``rects`` exactly tile ``polygon``.

    Used by property tests: the rectangles must be pairwise disjoint, lie
    inside the polygon's bounding box, and their total area must equal the
    polygon area.  For rectilinear polygons produced by the slicer these
    conditions are equivalent to an exact cover.
    """
    total = 0
    box = polygon.bbox()
    for i, rect in enumerate(rects):
        if not box.contains_rect(rect):
            return False
        total += rect.area
        for other in rects[i + 1 :]:
            if rect.overlaps(other):
                return False
    return total == polygon.area


def _cut_points(lo: int, hi: int, max_side: int) -> list[int]:
    """Cut positions dividing ``[lo, hi]`` into pieces of at most ``max_side``."""
    if max_side <= 0:
        raise ValueError(f"max_side must be positive, got {max_side}")
    points = list(range(lo, hi, max_side))
    points.append(hi)
    return points
