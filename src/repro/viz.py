"""SVG rendering of layouts, clips and detection results.

Dependency-free visual inspection: layouts render to SVG files any
browser opens, with optional overlays for ground-truth hotspot cores
(green), reported cores (red), and candidate clip windows (dashed).
Coordinates are flipped so layout +y points up, as layout viewers draw.

Typical use::

    from repro.viz import render_detection_svg
    render_detection_svg(bench.testing, result.reports, "run.svg")
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.data.synth import TestingLayout
from repro.geometry.rect import Rect
from repro.layout.clip import Clip
from repro.layout.layout import Layout

#: Default fill for drawn metal.
METAL_STYLE = 'fill="#4a7db5" fill-opacity="0.85" stroke="none"'
TRUTH_STYLE = 'fill="none" stroke="#1f9d3a" stroke-width="{w}"'
REPORT_STYLE = 'fill="#d43a3a" fill-opacity="0.25" stroke="#d43a3a" stroke-width="{w}"'
WINDOW_STYLE = 'fill="none" stroke="#888888" stroke-width="{w}" stroke-dasharray="{d},{d}"'


class SvgCanvas:
    """Minimal SVG document builder over a layout window."""

    def __init__(self, window: Rect, width_px: int = 1000):
        self.window = window
        self.scale = width_px / window.width
        self.width_px = width_px
        self.height_px = int(window.height * self.scale)
        self._elements: list[str] = []

    # ------------------------------------------------------------------
    def _x(self, x: int) -> float:
        return (x - self.window.x0) * self.scale

    def _y(self, y: int) -> float:
        # SVG y grows downward; layouts grow upward.
        return (self.window.y1 - y) * self.scale

    @property
    def hairline(self) -> float:
        """A stroke width that stays visible at this scale."""
        return max(0.5, self.scale * 40)

    def add_rect(self, rect: Rect, style: str) -> None:
        x = self._x(rect.x0)
        y = self._y(rect.y1)
        w = rect.width * self.scale
        h = rect.height * self.scale
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" {style}/>'
        )

    def add_label(self, x: int, y: int, text: str, size_px: int = 12) -> None:
        self._elements.append(
            f'<text x="{self._x(x):.2f}" y="{self._y(y):.2f}" '
            f'font-size="{size_px}" font-family="monospace">{text}</text>'
        )

    def render(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px}" height="{self.height_px}" '
            f'viewBox="0 0 {self.width_px} {self.height_px}">\n'
            f'<rect width="100%" height="100%" fill="#ffffff"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.render())


def render_layout_svg(
    layout: Layout,
    path: Union[str, Path],
    layer: int = 1,
    region: Optional[Rect] = None,
    width_px: int = 1000,
) -> SvgCanvas:
    """Render one layout layer to an SVG file; returns the canvas."""
    from repro.errors import LayoutError

    if region is not None:
        window = region
    else:
        window = layout.bbox(layer) if layer in layout.layer_numbers() else None
        if window is None:
            raise LayoutError("layout has no geometry to render")
    canvas = SvgCanvas(window, width_px)
    for rect in layout.rects_in_window(layer, window):
        clipped = rect.intersection(window)
        if clipped:
            canvas.add_rect(clipped, METAL_STYLE)
    canvas.save(path)
    return canvas


def render_clip_svg(clip: Clip, path: Union[str, Path], width_px: int = 600) -> SvgCanvas:
    """Render a single clip: geometry plus its core window outline."""
    canvas = SvgCanvas(clip.window, width_px)
    for rect in clip.rects:
        canvas.add_rect(rect, METAL_STYLE)
    canvas.add_rect(clip.core, WINDOW_STYLE.format(w=canvas.hairline, d=canvas.hairline * 3))
    canvas.save(path)
    return canvas


def render_detection_svg(
    testing: TestingLayout,
    reports: Sequence[Clip],
    path: Union[str, Path],
    candidates: Iterable[Clip] = (),
    layer: int = 1,
    width_px: int = 1400,
) -> SvgCanvas:
    """Render a detection run: layout + truth cores + reported cores.

    Ground-truth hotspot cores outline in green, reported cores fill red
    (overlap of the two reads as a hit at a glance); candidate windows,
    when given, draw as dashed grey outlines.
    """
    canvas = SvgCanvas(testing.window, width_px)
    for rect in testing.layout.rects_in_window(layer, testing.window):
        clipped = rect.intersection(testing.window)
        if clipped:
            canvas.add_rect(clipped, METAL_STYLE)
    dash = canvas.hairline * 3
    for candidate in candidates:
        canvas.add_rect(
            candidate.window, WINDOW_STYLE.format(w=canvas.hairline / 2, d=dash)
        )
    for core in testing.hotspot_cores():
        canvas.add_rect(core, TRUTH_STYLE.format(w=canvas.hairline * 1.5))
    for report in reports:
        canvas.add_rect(report.core, REPORT_STYLE.format(w=canvas.hairline))
    canvas.save(path)
    return canvas
