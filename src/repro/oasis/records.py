"""OASIS (P39) primitive codecs: varints, strings, reals.

OASIS — the contest's other distribution format, and the second format
the paper's Anuvad library handled — encodes everything over two
primitives:

- **unsigned-integer**: little-endian base-128 varint (7 data bits per
  byte, high bit = continuation);
- **signed-integer**: the same varint with the sign in the *lowest* bit
  of the first byte (not zig-zag at the integer level: magnitude is
  shifted left once, bit 0 carries the sign).

Strings are length-prefixed byte arrays; reals carry a type byte (this
subset emits type 0/1 positive/negative integers and type 7 IEEE
doubles, and reads types 0-7).
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import GdsiiError


class OasisError(GdsiiError):
    """Malformed OASIS data (kept under the stream-format error family)."""


# ----------------------------------------------------------------------
# unsigned / signed integers
# ----------------------------------------------------------------------


def encode_unsigned(value: int) -> bytes:
    """Encode an unsigned integer as an OASIS varint."""
    if value < 0:
        raise OasisError(f"unsigned integer cannot be negative: {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_unsigned(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, next offset)."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise OasisError("truncated unsigned integer")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise OasisError("unsigned integer too long")


def encode_signed(value: int) -> bytes:
    """Encode a signed integer (sign in bit 0 of the low byte)."""
    if value < 0:
        return encode_unsigned(((-value) << 1) | 1)
    return encode_unsigned(value << 1)


def decode_signed(data: bytes, offset: int) -> Tuple[int, int]:
    raw, offset = decode_unsigned(data, offset)
    magnitude = raw >> 1
    return (-magnitude if raw & 1 else magnitude), offset


# ----------------------------------------------------------------------
# strings
# ----------------------------------------------------------------------


def encode_string(text: str) -> bytes:
    raw = text.encode("ascii")
    return encode_unsigned(len(raw)) + raw


def decode_string(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = decode_unsigned(data, offset)
    end = offset + length
    if end > len(data):
        raise OasisError("truncated string")
    try:
        return data[offset:end].decode("ascii"), end
    except UnicodeDecodeError as exc:
        raise OasisError(f"non-ascii string at offset {offset}: {exc}") from exc


# ----------------------------------------------------------------------
# reals
# ----------------------------------------------------------------------


def encode_real(value: float) -> bytes:
    """Encode a real: integer-valued reals as type 0/1, else IEEE double."""
    if float(value).is_integer() and abs(value) < 2**63:
        integer = int(value)
        if integer >= 0:
            return encode_unsigned(0) + encode_unsigned(integer)
        return encode_unsigned(1) + encode_unsigned(-integer)
    return encode_unsigned(7) + struct.pack("<d", value)


def decode_real(data: bytes, offset: int) -> Tuple[float, int]:
    kind, offset = decode_unsigned(data, offset)
    if kind == 0:
        value, offset = decode_unsigned(data, offset)
        return float(value), offset
    if kind == 1:
        value, offset = decode_unsigned(data, offset)
        return -float(value), offset
    if kind in (2, 3):  # reciprocal of a positive/negative integer
        value, offset = decode_unsigned(data, offset)
        if value == 0:
            raise OasisError("zero denominator in reciprocal real")
        return (1.0 if kind == 2 else -1.0) / value, offset
    if kind in (4, 5):  # positive/negative ratio
        numerator, offset = decode_unsigned(data, offset)
        denominator, offset = decode_unsigned(data, offset)
        if denominator == 0:
            raise OasisError("zero denominator in ratio real")
        sign = 1.0 if kind == 4 else -1.0
        return sign * numerator / denominator, offset
    if kind == 6:  # IEEE single
        if offset + 4 > len(data):
            raise OasisError("truncated float32 real")
        return struct.unpack_from("<f", data, offset)[0], offset + 4
    if kind == 7:  # IEEE double
        if offset + 8 > len(data):
            raise OasisError("truncated float64 real")
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    raise OasisError(f"unknown real type {kind}")


#: Record ids used by this subset (OASIS standard, Table 3).
START_RECORD = 1
END_RECORD = 2
CELLNAME_RECORD = 3  # (implicit reference numbers)
CELL_REF_RECORD = 13  # CELL by reference number
CELL_NAME_RECORD = 14  # CELL by name string
RECTANGLE_RECORD = 20
POLYGON_RECORD = 21

#: The mandatory magic at the top of every OASIS file.
MAGIC = b"%SEMI-OASIS\r\n"

#: END record fixed length per the standard (record id + padding + scheme).
END_LENGTH = 256
