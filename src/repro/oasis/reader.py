"""OASIS reader for the subset the writer emits (plus modal basics).

Parses START/END, CELL (by name), RECTANGLE and POLYGON records into a
:class:`~repro.layout.layout.Layout`.  Modal variables are honoured for
the fields this subset can omit (layer, datatype, width, height, x, y),
so streams with light modal reuse also load; exotic records (CBLOCK,
repetitions, placements, trapezoids) raise with a clear message rather
than mis-parsing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import GdsiiError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.layout.layout import Layout
from repro.oasis.records import (
    CELL_NAME_RECORD,
    CELL_REF_RECORD,
    CELLNAME_RECORD,
    END_RECORD,
    MAGIC,
    POLYGON_RECORD,
    RECTANGLE_RECORD,
    START_RECORD,
    OasisError,
    decode_real,
    decode_signed,
    decode_string,
    decode_unsigned,
)


@dataclass
class _Modal:
    """Modal variable state (reset at each CELL, per the standard)."""

    layer: Optional[int] = None
    datatype: Optional[int] = None
    geometry_w: Optional[int] = None
    geometry_h: Optional[int] = None
    geometry_x: int = 0
    geometry_y: int = 0

    def require(self, value: Optional[int], name: str) -> int:
        if value is None:
            raise OasisError(f"modal variable {name} used before being set")
        return value


@dataclass
class OasisDocument:
    """Parse result: layout plus file metadata."""

    layout: Layout
    version: str
    grid_per_micron: float
    cell_names: list[str] = field(default_factory=list)


def read_oasis(data: bytes) -> OasisDocument:
    """Parse an OASIS byte stream."""
    if not data.startswith(MAGIC):
        raise OasisError("missing %SEMI-OASIS magic")
    offset = len(MAGIC)

    record, offset = decode_unsigned(data, offset)
    if record != START_RECORD:
        raise OasisError(f"expected START, got record {record}")
    version, offset = decode_string(data, offset)
    grid, offset = decode_real(data, offset)
    offset_flag, offset = decode_unsigned(data, offset)
    if offset_flag == 0:
        for _ in range(12):
            _, offset = decode_unsigned(data, offset)

    layout = Layout()
    cell_names: list[str] = []
    name_table: list[str] = []
    modal = _Modal()

    while offset < len(data):
        record_offset = offset
        try:
            record, offset = decode_unsigned(data, offset)
        except OasisError as exc:
            raise OasisError(
                f"malformed record header at offset {record_offset}: {exc}"
            ) from exc
        if record == END_RECORD:
            break
        if record == 0:  # PAD
            continue
        try:
            if record == CELLNAME_RECORD:
                name, offset = decode_string(data, offset)
                name_table.append(name)
            elif record == CELL_NAME_RECORD:
                name, offset = decode_string(data, offset)
                cell_names.append(name)
                modal = _Modal()
            elif record == CELL_REF_RECORD:
                ref, offset = decode_unsigned(data, offset)
                if ref >= len(name_table):
                    raise OasisError(f"CELL reference {ref} has no CELLNAME")
                cell_names.append(name_table[ref])
                modal = _Modal()
            elif record == RECTANGLE_RECORD:
                offset = _read_rectangle(data, offset, layout, modal)
            elif record == POLYGON_RECORD:
                offset = _read_polygon(data, offset, layout, modal)
            else:
                raise OasisError(
                    f"record {record} is outside the supported OASIS subset"
                )
        except (IndexError, struct.error, UnicodeDecodeError) as exc:
            # Decoder slips on torn bytes surface as typed input errors
            # carrying the record's file offset, never raw IndexError.
            raise OasisError(
                f"malformed record {record} at offset {record_offset}: {exc}"
            ) from exc
        except OasisError as exc:
            if "offset" in str(exc):
                raise
            raise OasisError(
                f"malformed record {record} at offset {record_offset}: {exc}"
            ) from exc
    else:
        raise OasisError(f"stream ended at offset {offset} without END record")
    return OasisDocument(layout, version, grid, cell_names)


def read_oasis_file(path: Union[str, Path]) -> OasisDocument:
    return read_oasis(Path(path).read_bytes())


def _info_byte(data: bytes, offset: int) -> int:
    if offset >= len(data):
        raise OasisError(f"truncated geometry record at offset {offset}")
    return data[offset]


def _read_rectangle(data: bytes, offset: int, layout: Layout, modal: _Modal) -> int:
    info = _info_byte(data, offset)
    offset += 1
    square = bool(info & 0x80)
    if info & 0x01:  # L
        modal.layer, offset = decode_unsigned(data, offset)
    if info & 0x02:  # D
        modal.datatype, offset = decode_unsigned(data, offset)
    if info & 0x40:  # W
        modal.geometry_w, offset = decode_unsigned(data, offset)
    if info & 0x20:  # H
        modal.geometry_h, offset = decode_unsigned(data, offset)
    elif square:
        modal.geometry_h = modal.geometry_w
    if info & 0x10:  # X
        modal.geometry_x, offset = decode_signed(data, offset)
    if info & 0x08:  # Y
        modal.geometry_y, offset = decode_signed(data, offset)
    if info & 0x04:  # R: repetition
        raise OasisError("RECTANGLE repetitions are outside the subset")
    layer = modal.require(modal.layer, "layer")
    width = modal.require(modal.geometry_w, "geometry-w")
    height = modal.require(modal.geometry_h, "geometry-h")
    from repro.geometry.rect import Rect

    layout.add_rect(
        layer,
        Rect(
            modal.geometry_x,
            modal.geometry_y,
            modal.geometry_x + width,
            modal.geometry_y + height,
        ),
    )
    return offset


def _read_polygon(data: bytes, offset: int, layout: Layout, modal: _Modal) -> int:
    info = _info_byte(data, offset)
    offset += 1
    if info & 0x01:  # L
        modal.layer, offset = decode_unsigned(data, offset)
    if info & 0x02:  # D
        modal.datatype, offset = decode_unsigned(data, offset)
    if info & 0x20:  # P: point list present
        kind, offset = decode_unsigned(data, offset)
        count, offset = decode_unsigned(data, offset)
        deltas = []
        if kind in (0, 1):
            for _ in range(count):
                delta, offset = decode_signed(data, offset)
                deltas.append(delta)
        else:
            raise OasisError(f"point-list type {kind} is outside the subset")
    else:
        raise OasisError("modal point-list reuse is outside the subset")
    if info & 0x10:  # X
        modal.geometry_x, offset = decode_signed(data, offset)
    if info & 0x08:  # Y
        modal.geometry_y, offset = decode_signed(data, offset)
    if info & 0x04:  # R
        raise OasisError("POLYGON repetitions are outside the subset")

    layer = modal.require(modal.layer, "layer")
    # Rebuild the loop: type 0 starts vertical, type 1 starts horizontal.
    horizontal = kind == 1
    x, y = modal.geometry_x, modal.geometry_y
    vertices = [Point(x, y)]
    for delta in deltas:
        if horizontal:
            x += delta
        else:
            y += delta
        vertices.append(Point(x, y))
        horizontal = not horizontal
    layout.add_polygon(layer, Polygon(vertices))
    return offset
