"""From-scratch OASIS (P39) substrate — the contest's other format.

A conservative subset: explicit RECTANGLE/POLYGON records, CELL by name,
modal-variable support on read for the omittable fields.  Anuvad (the
paper's stream library) handled GDSII and OASIS; this package completes
that parity for the reproduction.
"""

from repro.oasis.records import (
    OasisError,
    decode_real,
    decode_signed,
    decode_string,
    decode_unsigned,
    encode_real,
    encode_signed,
    encode_string,
    encode_unsigned,
)
from repro.oasis.reader import OasisDocument, read_oasis, read_oasis_file
from repro.oasis.writer import write_oasis, write_oasis_file

__all__ = [
    "OasisError",
    "encode_unsigned",
    "decode_unsigned",
    "encode_signed",
    "decode_signed",
    "encode_string",
    "decode_string",
    "encode_real",
    "decode_real",
    "write_oasis",
    "write_oasis_file",
    "read_oasis",
    "read_oasis_file",
    "OasisDocument",
]
