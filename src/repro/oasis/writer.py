"""OASIS writer: layouts to OASIS streams (strict explicit encoding).

The writer emits a conservative subset every OASIS consumer accepts:

- START with unit = grids per micron and offset-flag 0 (no name tables);
- one CELL record (by name string) per cell;
- one RECTANGLE record per rectangle, with *every* info-byte field
  explicit (no modal-variable reuse) — larger than a modal encoding but
  unambiguous and simple to verify;
- POLYGON records with a type-0/1-free point list (1-delta Manhattan),
  used for non-rectangular shapes;
- END padded to the standard's fixed 256 bytes, validation scheme 0.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.geometry.polygon import Polygon
from repro.layout.layout import Layout
from repro.oasis.records import (
    CELL_NAME_RECORD,
    END_LENGTH,
    END_RECORD,
    MAGIC,
    POLYGON_RECORD,
    RECTANGLE_RECORD,
    START_RECORD,
    OasisError,
    encode_real,
    encode_signed,
    encode_string,
    encode_unsigned,
)

#: RECTANGLE info-byte with all fields explicit, not square:
#: S=0, W=1, H=1, X=1, Y=1, R=0, D=1, L=1  ->  0b01111011
_RECT_INFO = 0b01111011
#: POLYGON info-byte: P=1, X=1, Y=1, R=0, D=1, L=1  -> 0b00111011
_POLYGON_INFO = 0b00111011


def _encode_rectangle(layer: int, datatype: int, x: int, y: int, w: int, h: int) -> bytes:
    return b"".join(
        (
            encode_unsigned(RECTANGLE_RECORD),
            bytes([_RECT_INFO]),
            encode_unsigned(layer),
            encode_unsigned(datatype),
            encode_unsigned(w),
            encode_unsigned(h),
            encode_signed(x),
            encode_signed(y),
        )
    )


def _encode_point_list(polygon: Polygon) -> bytes:
    """Type-1 point list: Manhattan 1-deltas, alternating implicit axes not
    used — type 1 carries explicit horizontal-first deltas.

    OASIS type 1 lists alternate horizontal/vertical deltas starting
    horizontal, with the final (closing) edge implicit.  A rectilinear
    polygon whose loop starts with a horizontal edge satisfies this
    directly; loops starting vertically are rotated by one vertex first.
    """
    vertices = list(polygon.vertices)
    if vertices[0].x == vertices[1].x:  # first edge vertical: rotate
        vertices = vertices[1:] + vertices[:1]
    deltas = []
    expect_horizontal = True
    n = len(vertices)
    for i in range(n - 1):
        a, b = vertices[i], vertices[i + 1]
        horizontal = a.y == b.y
        if horizontal != expect_horizontal:
            raise OasisError(
                "polygon edges do not strictly alternate; cannot encode as "
                "a type-1 point list"
            )
        deltas.append(b.x - a.x if horizontal else b.y - a.y)
        expect_horizontal = not expect_horizontal
    out = [encode_unsigned(1), encode_unsigned(len(deltas))]
    out.extend(encode_signed(d) for d in deltas)
    return b"".join(out)


def _encode_polygon(layer: int, datatype: int, polygon: Polygon) -> bytes:
    anchor = polygon.vertices[0]
    shifted = polygon
    if anchor.x == polygon.vertices[1].x:
        # anchor moves with the rotation applied in the point list
        anchor = polygon.vertices[1]
    return b"".join(
        (
            encode_unsigned(POLYGON_RECORD),
            bytes([_POLYGON_INFO]),
            encode_unsigned(layer),
            encode_unsigned(datatype),
            _encode_point_list(shifted),
            encode_signed(anchor.x),
            encode_signed(anchor.y),
        )
    )


def write_oasis(layout: Layout, cell_name: str = "TOP", grid_per_micron: float = 1000.0) -> bytes:
    """Serialise a layout to OASIS bytes (one cell, explicit records)."""
    chunks = [MAGIC]
    chunks.append(
        encode_unsigned(START_RECORD)
        + encode_string("1.0")
        + encode_real(grid_per_micron)
        + encode_unsigned(0)  # offset-flag: table offsets in END (all zero)
        + b"".join(encode_unsigned(0) for _ in range(12))
    )
    chunks.append(encode_unsigned(CELL_NAME_RECORD) + encode_string(cell_name))
    for layer in layout.layer_numbers():
        for polygon in layout.layer(layer).polygons:
            box = polygon.bbox()
            if polygon.num_vertices == 4 and polygon.area == box.area:
                chunks.append(
                    _encode_rectangle(
                        layer, 0, box.x0, box.y0, box.width, box.height
                    )
                )
            else:
                chunks.append(_encode_polygon(layer, 0, polygon))
    end = encode_unsigned(END_RECORD)
    padding = END_LENGTH - len(end) - 1  # 1 byte for validation scheme 0
    chunks.append(end + b"\x00" * padding + encode_unsigned(0))
    return b"".join(chunks)


def write_oasis_file(layout: Layout, path: Union[str, Path], cell_name: str = "TOP") -> None:
    Path(path).write_bytes(write_oasis(layout, cell_name))
