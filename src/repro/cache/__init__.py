"""repro.cache — content-addressed feature/margin caching.

Scans over near-identical layouts (ECO iterations) recompute MTCG
features and SVM margins for clips whose geometry did not change.  This
package keys both by geometry content so they are computed once:

- :mod:`repro.cache.keys` — translation/D8-invariant clip keys plus
  config and model fingerprints.
- :mod:`repro.cache.store` — :class:`HotspotCache`, the in-process LRU
  layered over pluggable :class:`CacheStore` blob backends (disk,
  memory, or the fleet's HTTP remote tier), all sha256-integrity
  checked via the RPCB1 envelope.

Wiring lives with the consumers: ``FeatureExtractor.cache``,
``MultiKernelModel`` margin rows, ``HotspotDetector.attach_cache`` and
the ``--cache-dir/--no-cache/--incremental`` scan flags.  See
``docs/CACHING.md``.
"""

from .keys import (
    CACHE_KEY_VERSION,
    cache_canonical,
    clip_content_key,
    feature_fingerprint,
    model_fingerprint,
)
from .store import (
    BLOB_MAGIC,
    DEFAULT_MAX_ENTRIES,
    CacheStats,
    CacheStore,
    DiskCacheStore,
    HotspotCache,
    MemoryCacheStore,
    open_blob,
    wrap_blob,
)

__all__ = [
    "BLOB_MAGIC",
    "CACHE_KEY_VERSION",
    "DEFAULT_MAX_ENTRIES",
    "CacheStats",
    "CacheStore",
    "DiskCacheStore",
    "HotspotCache",
    "MemoryCacheStore",
    "open_blob",
    "wrap_blob",
    "cache_canonical",
    "clip_content_key",
    "feature_fingerprint",
    "model_fingerprint",
]
