"""repro.cache — content-addressed feature/margin caching.

Scans over near-identical layouts (ECO iterations) recompute MTCG
features and SVM margins for clips whose geometry did not change.  This
package keys both by geometry content so they are computed once:

- :mod:`repro.cache.keys` — translation/D8-invariant clip keys plus
  config and model fingerprints.
- :mod:`repro.cache.store` — :class:`HotspotCache`, the in-process LRU
  with an optional sha256-integrity-checked on-disk tier.

Wiring lives with the consumers: ``FeatureExtractor.cache``,
``MultiKernelModel`` margin rows, ``HotspotDetector.attach_cache`` and
the ``--cache-dir/--no-cache/--incremental`` scan flags.  See
``docs/CACHING.md``.
"""

from .keys import (
    CACHE_KEY_VERSION,
    cache_canonical,
    clip_content_key,
    feature_fingerprint,
    model_fingerprint,
)
from .store import BLOB_MAGIC, DEFAULT_MAX_ENTRIES, CacheStats, HotspotCache

__all__ = [
    "BLOB_MAGIC",
    "CACHE_KEY_VERSION",
    "DEFAULT_MAX_ENTRIES",
    "CacheStats",
    "HotspotCache",
    "cache_canonical",
    "clip_content_key",
    "feature_fingerprint",
    "model_fingerprint",
]
