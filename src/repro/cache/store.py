"""The hotspot cache: in-process LRU + pluggable content-addressed blob tiers.

Two artifact kinds are cached, both keyed by content (see
:mod:`repro.cache.keys`):

- **features** — one :class:`~repro.features.vector.ExtractedFeatures`
  per (feature-config fingerprint, clip geometry key).  Saves the MTCG
  maximal-tiling sweep, the dominant per-clip cost in the paper's
  Table 5 runtime breakdown.
- **margins** — one per-kernel margin row (``float64``, ``GATED_OUT``
  included) per (model fingerprint, clip geometry key).  Saves both the
  extraction *and* the SVM decision function on a warm rescan.

The memory tier holds decoded objects in one shared LRU, so a memory hit
returns the very object the uncached path would have produced.  Behind
it sits an ordered list of :class:`CacheStore` blob tiers — normally a
:class:`DiskCacheStore`, optionally followed by a remote tier
(:class:`repro.fleet.remote_cache.RemoteCacheStore`) shared by a whole
fleet.  Every tier stores the same RPCB1 envelope: an npz payload
prefixed with the sha256 of the payload.  A blob whose digest does not
match — truncated, bit-flipped, torn write — is counted per tier and
treated as a miss, never decoded.  All number-bearing values round-trip
through npz as fixed-width ints/float64, so a blob hit is bit-identical
to a recomputation.  A hit in a later tier back-fills the earlier tiers,
so a remote hit warms the local disk.

Writes are atomic (temp file + ``os.replace``) and best-effort: an
unwritable cache directory (or an unreachable remote tier) degrades to
the remaining tiers rather than failing the scan.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from hashlib import sha256
from io import BytesIO
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro import obs

#: Envelope header of every blob (all tiers); bump with the blob layout.
BLOB_MAGIC = b"RPCB1\n"

#: Default in-process LRU capacity (entries across both namespaces).
DEFAULT_MAX_ENTRIES = 65536

#: Buffered writes per batch-capable store before an automatic flush.
WRITE_BEHIND_MAX = 256


# ----------------------------------------------------------------------
# the sha256 blob envelope (shared by every tier and the fleet wire)
# ----------------------------------------------------------------------
def wrap_blob(payload: bytes) -> bytes:
    """Wrap a payload in the RPCB1 envelope: magic + hex digest + payload."""
    digest = sha256(payload).hexdigest().encode("ascii")
    return BLOB_MAGIC + digest + b"\n" + payload


def open_blob(raw: bytes) -> Optional[bytes]:
    """Verify an RPCB1 envelope; return the payload, or ``None`` if corrupt.

    Every byte of the envelope is covered: the magic, the separator and
    the digest itself (any flip there breaks the digest comparison).
    """
    header = len(BLOB_MAGIC) + 64 + 1
    if len(raw) < header or not raw.startswith(BLOB_MAGIC):
        return None
    if raw[header - 1 : header] != b"\n":
        return None
    digest = raw[len(BLOB_MAGIC) : len(BLOB_MAGIC) + 64]
    payload = raw[header:]
    if sha256(payload).hexdigest().encode("ascii") != digest:
        return None
    return payload


# ----------------------------------------------------------------------
# blob-tier backends
# ----------------------------------------------------------------------
class CacheStore:
    """Abstract blob tier: enveloped bytes keyed by (kind, fingerprint, key).

    Implementations deal only in raw RPCB1-enveloped bytes — encoding,
    digest verification and decoding belong to :class:`HotspotCache`
    (the remote tier additionally verifies digests on its own wire, so
    a corrupt blob never crosses the network undetected).  A tier must
    *degrade*, not raise: ``get`` returns ``None`` and ``put`` becomes a
    no-op on any backend failure, flipping :meth:`healthy` so callers
    can skip a dead tier cheaply.
    """

    #: Stats bucket this tier's hits/corruptions are counted under.
    name = "store"

    def get(self, kind: str, fingerprint: str, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def put(self, kind: str, fingerprint: str, key: str, blob: bytes) -> None:
        raise NotImplementedError

    def healthy(self) -> bool:
        return True


class MemoryCacheStore(CacheStore):
    """In-process blob tier: a bounded LRU of enveloped bytes.

    Mostly useful as the backing store of a fleet cache server in tests
    (the server speaks blobs, whatever holds them), or to bound-check
    tier plumbing without touching disk.
    """

    name = "memory"

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = max(1, int(max_entries))
        self._lock = threading.Lock()
        self._blobs: OrderedDict[tuple, bytes] = OrderedDict()

    def get(self, kind: str, fingerprint: str, key: str) -> Optional[bytes]:
        with self._lock:
            blob = self._blobs.get((kind, fingerprint, key))
            if blob is not None:
                self._blobs.move_to_end((kind, fingerprint, key))
            return blob

    def put(self, kind: str, fingerprint: str, key: str, blob: bytes) -> None:
        with self._lock:
            self._blobs[(kind, fingerprint, key)] = blob
            self._blobs.move_to_end((kind, fingerprint, key))
            while len(self._blobs) > self.max_entries:
                self._blobs.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)


class DiskCacheStore(CacheStore):
    """On-disk blob tier under ``<dir>/<kind>/<fingerprint>/<key[:2]>/``.

    Writes are atomic (temp file + ``os.replace``); a read-only, full or
    vanished directory flips the tier unhealthy instead of failing the
    scan.
    """

    name = "disk"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._ok = True

    def healthy(self) -> bool:
        return self._ok

    def _blob_path(self, kind: str, fingerprint: str, key: str) -> Path:
        return self.directory / kind / fingerprint / key[:2] / f"{key}.blob"

    def get(self, kind: str, fingerprint: str, key: str) -> Optional[bytes]:
        if not self._ok:
            return None
        try:
            return self._blob_path(kind, fingerprint, key).read_bytes()
        except OSError:
            return None

    def put(self, kind: str, fingerprint: str, key: str, blob: bytes) -> None:
        if not self._ok:
            return
        path = self._blob_path(kind, fingerprint, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self._ok = False


@dataclass
class CacheStats:
    """Counter snapshot surfaced to manifests, ``/metrics`` and reports."""

    feature_hits: int = 0
    feature_misses: int = 0
    margin_hits: int = 0
    margin_misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    disk_corrupt: int = 0
    remote_hits: int = 0
    remote_writes: int = 0
    remote_corrupt: int = 0

    def as_dict(self) -> dict:
        return {
            "feature_hits": self.feature_hits,
            "feature_misses": self.feature_misses,
            "margin_hits": self.margin_hits,
            "margin_misses": self.margin_misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "disk_corrupt": self.disk_corrupt,
            "remote_hits": self.remote_hits,
            "remote_writes": self.remote_writes,
            "remote_corrupt": self.remote_corrupt,
        }


# ----------------------------------------------------------------------
# codecs: cached objects <-> npz array dicts
# ----------------------------------------------------------------------
# Feature-type indices are pinned here (not enum iteration order) so the
# on-disk encoding cannot drift if the enum grows.
_TYPE_CODES = ("internal", "external", "diagonal", "segment")


def _encode_features(features) -> dict:
    arrays: dict = {
        "rule_types": np.array(
            [_TYPE_CODES.index(rule.feature_type.value) for rule in features.rules],
            dtype=np.int64,
        ),
        "rule_vals": np.array(
            [rule.as_tuple() for rule in features.rules], dtype=np.int64
        ).reshape(len(features.rules), 5),
        "nontopo_i": np.array(
            [
                features.nontopo.corner_count,
                features.nontopo.touch_count,
                features.nontopo.min_internal,
                features.nontopo.min_external,
            ],
            dtype=np.int64,
        ),
        "nontopo_d": np.array([features.nontopo.density], dtype=np.float64),
    }
    if features.grid is not None:
        arrays["grid"] = np.asarray(features.grid, dtype=np.float64)
    return arrays


def _decode_features(arrays: dict):
    from repro.features.nontopo import NonTopoFeatures
    from repro.features.vector import ExtractedFeatures
    from repro.mtcg.rules import FeatureType, RuleRect

    types = arrays["rule_types"]
    vals = arrays["rule_vals"]
    rules = tuple(
        RuleRect(
            feature_type=FeatureType(_TYPE_CODES[int(types[i])]),
            dx=int(vals[i, 0]),
            dy=int(vals[i, 1]),
            width=int(vals[i, 2]),
            height=int(vals[i, 3]),
            boundary_mark=bool(vals[i, 4]),
        )
        for i in range(len(types))
    )
    ints = arrays["nontopo_i"]
    nontopo = NonTopoFeatures(
        corner_count=int(ints[0]),
        touch_count=int(ints[1]),
        min_internal=int(ints[2]),
        min_external=int(ints[3]),
        density=float(arrays["nontopo_d"][0]),
    )
    grid = arrays.get("grid")
    return ExtractedFeatures(rules, nontopo, grid)


def _encode_margins(row: np.ndarray) -> dict:
    return {"row": np.asarray(row, dtype=np.float64)}


def _decode_margins(arrays: dict) -> np.ndarray:
    return np.asarray(arrays["row"], dtype=np.float64)


_CODECS = {
    "features": (_encode_features, _decode_features),
    "margins": (_encode_margins, _decode_margins),
}


class HotspotCache:
    """Shared, thread-safe feature/margin cache over pluggable blob tiers.

    One instance may back several extractors, models and detectors at
    once (the serving registry shares one across loaded models); entries
    never collide because every lookup is namespaced by the fingerprint
    of the config or model that produced it.

    ``directory`` keeps the classic one-liner working: it prepends a
    :class:`DiskCacheStore` to whatever extra ``stores`` (e.g. a fleet's
    :class:`~repro.fleet.remote_cache.RemoteCacheStore`) are passed.
    Lookup order is memory, then each store in order; a hit back-fills
    every earlier tier.

    The cache deliberately holds a :class:`threading.Lock`, so it must
    not travel into spawned scan workers — holders drop it in their
    ``__getstate__`` (workers run cold; the parent re-checks the cache
    when merging journal shards).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        directory: Optional[Union[str, Path]] = None,
        metrics_sink: Any = None,
        stores: Optional[Sequence[CacheStore]] = None,
        write_behind: bool = False,
    ):
        self.max_entries = max(1, int(max_entries))
        self.directory = Path(directory) if directory is not None else None
        self.metrics_sink = metrics_sink
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.stores: list[CacheStore] = list(stores or [])
        if self.directory is not None:
            self.stores.insert(0, DiskCacheStore(self.directory))
        # Batch plumbing for stores exposing get_many/put_many (the
        # remote tier): buffered write-behind puts (opt-in — callers
        # that enable it own calling flush()), and the keys the last
        # prefetch definitively missed (so the per-key path does not
        # pay one RPC per known-absent key).
        self.write_behind = bool(write_behind)
        self._write_behind: dict[int, tuple[CacheStore, list]] = {}
        self._prefetched_absent: set = set()

    # ------------------------------------------------------------------
    def _increment(self, name: str, amount: int = 1) -> None:
        sink = self.metrics_sink
        if sink is not None and hasattr(sink, "increment"):
            try:
                sink.increment(name, float(amount))
            except Exception:  # noqa: BLE001 — metrics must never break a scan
                pass

    def _count(self, kind: str, hit: bool) -> None:
        with self._lock:
            if kind == "features":
                if hit:
                    self.stats.feature_hits += 1
                else:
                    self.stats.feature_misses += 1
            else:
                if hit:
                    self.stats.margin_hits += 1
                else:
                    self.stats.margin_misses += 1
        suffix = "hits" if hit else "misses"
        name = "feature" if kind == "features" else "margin"
        self._increment(f"cache_{name}_{suffix}_total")

    # ------------------------------------------------------------------
    # memory tier
    # ------------------------------------------------------------------
    def _memory_get(self, full_key: tuple) -> Any:
        with self._lock:
            value = self._entries.get(full_key)
            if value is not None:
                self._entries.move_to_end(full_key)
            return value

    def _memory_put(self, full_key: tuple, value: Any) -> None:
        with self._lock:
            self._entries[full_key] = value
            self._entries.move_to_end(full_key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.stats.evictions += evicted
        if evicted:
            self._increment("cache_evictions_total", evicted)

    # ------------------------------------------------------------------
    # blob tiers
    # ------------------------------------------------------------------
    def _tier(self, store: CacheStore) -> str:
        """Stats bucket for one store ("remote" or the classic "disk")."""
        return "remote" if store.name == "remote" else "disk"

    @property
    def _disk_ok(self) -> bool:
        """Back-compat health flag: every local blob tier still writable."""
        return all(
            store.healthy() for store in self.stores if self._tier(store) == "disk"
        )

    def _count_tier(self, store: CacheStore, event: str) -> None:
        tier = self._tier(store)
        with self._lock:
            attr = f"{tier}_{event}"
            setattr(self.stats, attr, getattr(self.stats, attr) + 1)
        self._increment(f"cache_{tier}_{event}_total")

    def _disk_get(self, kind: str, fingerprint: str, key: str) -> Any:
        for index, store in enumerate(self.stores):
            if not store.healthy():
                continue
            if (
                hasattr(store, "get_many")
                and (kind, fingerprint, key) in self._prefetched_absent
            ):
                # The last batched prefetch already asked this store and
                # got a definitive miss: don't pay one more RPC for it.
                continue
            started = time.perf_counter()
            raw = store.get(kind, fingerprint, key)
            if raw is None:
                continue
            value = self._decode_blob(kind, raw)
            if value is None:
                self._count_tier(store, "corrupt")
                continue
            self._count_tier(store, "hits")
            if obs.enabled():
                obs.tally(
                    f"cache.{store.name}.read", time.perf_counter() - started
                )
            # A deep hit warms every earlier tier (e.g. remote -> disk),
            # so the next lookup on this node stays local.
            for earlier in self.stores[:index]:
                if earlier.healthy():
                    earlier.put(kind, fingerprint, key, raw)
            return value
        return None

    def _disk_put(self, kind: str, fingerprint: str, key: str, value: Any) -> None:
        if not self.stores:
            return
        with self._lock:
            self._prefetched_absent.discard((kind, fingerprint, key))
        blob: Optional[bytes] = None
        for store in self.stores:
            if not store.healthy():
                continue
            if blob is None:
                blob = self._encode_blob(kind, value)
            if self.write_behind and hasattr(store, "put_many"):
                # Write-behind: batch-capable tiers get their puts in one
                # RPC per flush instead of one per clip.
                self._buffer_put(store, (kind, fingerprint, key, blob))
                self._count_tier(store, "writes")
                continue
            started = time.perf_counter()
            store.put(kind, fingerprint, key, blob)
            if not store.healthy():
                # Read-only / full / vanished tier: keep running on the
                # remaining tiers instead of failing the scan.
                continue
            self._count_tier(store, "writes")
            if obs.enabled():
                obs.tally(
                    f"cache.{store.name}.write", time.perf_counter() - started
                )

    def _buffer_put(self, store: CacheStore, entry: tuple) -> None:
        flush_now: Optional[list] = None
        with self._lock:
            _, queue = self._write_behind.setdefault(id(store), (store, []))
            queue.append(entry)
            if len(queue) >= WRITE_BEHIND_MAX:
                flush_now = list(queue)
                queue.clear()
        if flush_now:
            try:
                store.put_many(flush_now)
            except Exception:  # noqa: BLE001 — tiers degrade, never raise
                pass

    def flush(self) -> None:
        """Drain buffered write-behind puts to batch-capable stores."""
        with self._lock:
            drained = [
                (store, list(queue))
                for store, queue in self._write_behind.values()
                if queue
            ]
            for _, queue in self._write_behind.values():
                queue.clear()
        for store, entries in drained:
            try:
                store.put_many(entries)
            except Exception:  # noqa: BLE001 — tiers degrade, never raise
                pass

    def prefetch(self, kind: str, fingerprint: str, keys: Sequence[str]) -> int:
        """Batch-warm the memory tier from batch-capable stores.

        One RPC per node fetches every key the memory tier is missing;
        hits are decoded into the LRU (and back-fill earlier plain
        tiers), definitive misses are remembered so the per-key lookup
        path skips the remote round trip.  Returns the number of keys
        warmed.
        """
        batch_stores = [
            store
            for store in self.stores
            if hasattr(store, "get_many") and store.healthy()
        ]
        if not batch_stores:
            return 0
        remaining: list[tuple] = []
        seen: set = set()
        for key in keys:
            full_key = (kind, fingerprint, key)
            if full_key in seen:
                continue
            seen.add(full_key)
            if self._memory_get(full_key) is None:
                remaining.append(full_key)
        if not remaining:
            return 0
        warmed = 0
        for store in batch_stores:
            if not remaining:
                break
            try:
                found = store.get_many(remaining)
            except Exception:  # noqa: BLE001 — tiers degrade, never raise
                found = {}
            index = self.stores.index(store)
            still: list[tuple] = []
            for full_key in remaining:
                raw = found.get(full_key)
                if raw is None:
                    still.append(full_key)
                    continue
                value = self._decode_blob(kind, raw)
                if value is None:
                    self._count_tier(store, "corrupt")
                    still.append(full_key)
                    continue
                self._count_tier(store, "hits")
                self._memory_put(full_key, value)
                for earlier in self.stores[:index]:
                    if earlier.healthy() and not hasattr(earlier, "get_many"):
                        earlier.put(*full_key, raw)
                warmed += 1
            remaining = still
        with self._lock:
            self._prefetched_absent = set(remaining)
        return warmed

    def _encode_blob(self, kind: str, value: Any) -> bytes:
        encode, _ = _CODECS[kind]
        buffer = BytesIO()
        np.savez(buffer, **encode(value))
        return wrap_blob(buffer.getvalue())

    def _decode_blob(self, kind: str, raw: bytes):
        """Decode an enveloped blob; any integrity failure returns ``None``."""
        payload = open_blob(raw)
        if payload is None:
            return None
        _, decode = _CODECS[kind]
        try:
            with np.load(BytesIO(payload)) as archive:
                return decode({name: archive[name] for name in archive.files})
        except Exception:  # noqa: BLE001 — any malformed payload is a miss
            return None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def get_features(self, fingerprint: str, key: str):
        """Cached :class:`ExtractedFeatures`, or ``None`` on miss."""
        full_key = ("features", fingerprint, key)
        value = self._memory_get(full_key)
        if value is None:
            value = self._disk_get("features", fingerprint, key)
            if value is not None:
                self._memory_put(full_key, value)
        self._count("features", hit=value is not None)
        return value

    def put_features(self, fingerprint: str, key: str, features) -> None:
        self._memory_put(("features", fingerprint, key), features)
        self._disk_put("features", fingerprint, key, features)

    def get_margins(self, fingerprint: str, key: str) -> Optional[np.ndarray]:
        """Cached per-kernel margin row, or ``None`` on miss.

        Returns a copy: callers scatter rows into result matrices and
        must not alias the cached array.
        """
        full_key = ("margins", fingerprint, key)
        value = self._memory_get(full_key)
        if value is None:
            value = self._disk_get("margins", fingerprint, key)
            if value is not None:
                self._memory_put(full_key, value)
        self._count("margins", hit=value is not None)
        return None if value is None else np.array(value, dtype=np.float64)

    def put_margins(self, fingerprint: str, key: str, row: np.ndarray) -> None:
        value = np.array(row, dtype=np.float64)
        self._memory_put(("margins", fingerprint, key), value)
        self._disk_put("margins", fingerprint, key, value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier survives)."""
        with self._lock:
            self._entries.clear()

    def stats_dict(self) -> dict:
        with self._lock:
            out = self.stats.as_dict()
        for store in self.stores:
            tier_stats = getattr(store, "tier_stats", None)
            if tier_stats is None:
                continue
            try:
                out.update(tier_stats())
            except Exception:  # noqa: BLE001 — stats must never break a scan
                pass
        return out
