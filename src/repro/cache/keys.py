"""Content-addressed cache keys for clips, configs and models.

Every cached artifact is addressed by *what it was computed from*, never
by where it came from:

- :func:`clip_content_key` hashes a clip's geometry after translating it
  to the origin, so the same pattern cut from two layout locations — or
  from two runs over the same layout — shares one key.  When
  ``canonical`` is set the geometry is first reduced to its D8 canonical
  form, so the eight orientations of a pattern share one key too.  That
  flag must mirror the computation being cached: feature extraction under
  ``canonical_orientation`` (the paper's Theorem 1 setting) is
  orientation-blind and may share, while a density-grid extraction sees
  orientation and must not.
- :func:`feature_fingerprint` hashes a :class:`~repro.features.vector.
  FeatureConfig`, versioning every cached feature blob by the extraction
  configuration that produced it.
- :func:`model_fingerprint` hashes a trained
  :class:`~repro.core.training.MultiKernelModel`'s kernels (weights,
  support vectors, schemas, gates) — the only state per-kernel margins
  depend on.

Labels, layer numbers and file paths are deliberately excluded: none of
them influence features or margins, and including them would split the
cache for no gain.
"""

from __future__ import annotations

import dataclasses
import json
from hashlib import sha256

import numpy as np

#: Bump to invalidate every existing cache entry on a format change.
CACHE_KEY_VERSION = 1


def cache_canonical(config) -> bool:
    """Whether D8-canonical cache keys are *sound* for this config.

    True exactly when the feature pipeline is orientation-blind: rule
    rectangles are extracted from the canonical form (Theorem 1), but a
    pixel density grid is sampled from the raw orientation, so enabling
    it pins each orientation to its own key.

    This is a soundness predicate, not a routing decision: the hot paths
    always use raw (translation-only) keys, which are sound for every
    config and ~50x cheaper to compute — canonicalizing a full clip
    costs more than the margin row it would deduplicate.  Callers that
    want cross-orientation sharing may opt into ``canonical=True`` keys
    when this predicate holds.
    """
    return bool(
        getattr(config, "canonical_orientation", False)
        and not getattr(config, "include_density_grid", False)
    )


def clip_content_key(clip, canonical: bool = True) -> str:
    """Translation-invariant (optionally D8-invariant) geometry hash."""
    normal = clip.normalized()
    rects = list(normal.rects)
    if canonical and rects:
        from repro.geometry.transform import canonical_form

        _, rects = canonical_form(rects, normal.window)
    digest = sha256()
    digest.update(
        f"v{CACHE_KEY_VERSION};{normal.window.width}x{normal.window.height};"
        f"core={clip.spec.core_side};ambit={clip.spec.ambit_margin};"
        f"{'d8' if canonical else 'raw'};".encode()
    )
    for rect in rects:
        digest.update(f"{rect.x0},{rect.y0},{rect.x1},{rect.y1};".encode())
    return digest.hexdigest()


def feature_fingerprint(config) -> str:
    """Hash of a feature-extraction configuration (cache version tag).

    The ``compute`` mode is deliberately *excluded*: extraction is
    integer geometry and the fast sweeps are bit-identical to the scalar
    ones (pinned by ``tests/test_fast_compute.py``), so exact and fast
    runs share one feature-blob namespace.  Margins do drift between
    modes, so :func:`model_fingerprint` *includes* the mode — the two
    fingerprints split exactly where the bits split.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        summary = dataclasses.asdict(config)
        summary.pop("compute", None)
    else:
        summary = {"repr": repr(config)}
    blob = json.dumps(
        {"version": CACHE_KEY_VERSION, "features": summary},
        sort_keys=True,
        default=str,
    )
    return sha256(blob.encode("utf-8")).hexdigest()


def model_fingerprint(model) -> str:
    """Hash of the state per-kernel margins depend on.

    Covers the trained kernels (weights, support vectors, schemas,
    gates) and the extractor configuration — the same clip extracted
    under a different :class:`FeatureConfig` yields different vectors,
    so the config is part of the margin identity.  The ``compute`` mode
    is part of it too: fast margins drift from exact ones within the
    documented ulp bound, so a warm exact-mode margin cache must never
    be served to a fast-mode scan (or vice versa) — embedding the mode
    here splits the margin namespace, the scan journals and the fleet
    handshake per mode automatically.
    """
    from repro.core.persist import encode_trained_kernel

    arrays: dict = {}
    metas = [
        encode_trained_kernel(kernel, arrays, f"k{index}")
        for index, kernel in enumerate(model.kernels)
    ]
    payload = {
        "kernels": metas,
        "features": feature_fingerprint(model.extractor.config),
        "compute": getattr(model.extractor.config, "compute", "exact"),
    }
    digest = sha256(json.dumps(payload, sort_keys=True, default=str).encode("utf-8"))
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()
