"""The transport-independent serving facade.

:class:`ServeService` owns the model registry, the micro-batcher and the
metrics registry, and implements the four operations the HTTP layer (or
an embedding application) exposes: ``predict``, ``scan``, ``health`` and
``metrics_text``.  The HTTP front end in :mod:`repro.serve.httpd` is a
thin shell over this class, so tests and benchmarks can drive the
service in-process, with or without sockets.

Batched evaluation semantics match
:meth:`~repro.core.detector.HotspotDetector.predict_clips` exactly: the
margins of every clip in the batch come from one
:meth:`MultiKernelModel.margins` call, per-request thresholds are
applied to the shared margins, and the feedback kernel filters the
flagged survivors of the whole batch in one pass.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

import numpy as np

from repro.errors import (
    QueueFullError,
    ReproError,
    RequestTimeoutError,
    ServeError,
    ServerClosedError,
)
from repro.layout.clip import Clip
from repro.obs import get_logger
from repro.resilience import BreakerConfig, CircuitBreaker, QuarantineReport, faults
from repro.serve.batching import BatchingConfig, MicroBatcher
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import (
    decode_predict_request,
    decode_scan_request,
    encode_predict_response,
    encode_scan_response,
    request_model_name,
)
from repro.serve.registry import ModelRegistry


class ServeService:
    """Registry + batcher + metrics behind a payload-level API."""

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        batching: Optional[BatchingConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        breaker: Optional[BreakerConfig] = None,
        cache: Optional[object] = None,
        cache_dir=None,
        compute: Optional[str] = None,
    ) -> None:
        self.metrics = metrics or MetricsRegistry()
        if cache is None and cache_dir is not None:
            from repro.cache import HotspotCache

            cache = HotspotCache(directory=cache_dir, metrics_sink=self.metrics)
        elif cache is not None and getattr(cache, "metrics_sink", None) is None:
            cache.metrics_sink = self.metrics
        #: Shared across every loaded model version: a clip geometry seen
        #: by any request warms features/margins for all later requests.
        self.cache = cache
        self.registry = registry or ModelRegistry(
            metrics=self.metrics, cache=cache, compute=compute
        )
        if self.registry.metrics is None:
            self.registry.metrics = self.metrics
        if self.registry.cache is None and cache is not None:
            self.registry.cache = cache
        if self.registry.compute is None and compute is not None:
            self.registry.compute = compute
        self.batcher = MicroBatcher(
            self._evaluate_batch, batching or BatchingConfig(), metrics=self.metrics
        )
        self.started_unix = time.time()
        self._requests = self.metrics.counter(
            "serve_requests_total",
            "Requests by endpoint and outcome.",
            labels=("endpoint", "status"),
        )
        self._latency = self.metrics.histogram(
            "serve_request_seconds",
            "End-to-end request latency by endpoint.",
            labels=("endpoint",),
        )
        self._breaker_rejected = self.metrics.counter(
            "serve_breaker_rejected_total",
            "Requests shed by an open per-model circuit breaker.",
            labels=("model",),
        )
        self._breaker_config = breaker or BreakerConfig()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._log = get_logger("serve")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeService":
        self.batcher.start()
        return self

    def close(self, drain: bool = True) -> None:
        self.batcher.close(drain=drain)

    def load_model(self, path, name: Optional[str] = None):
        return self.registry.load(path, name)

    # ------------------------------------------------------------------
    # request accounting (shared with the HTTP layer)
    # ------------------------------------------------------------------
    def record_request(
        self,
        endpoint: str,
        status: int,
        seconds: float,
        request_id: Optional[str] = None,
    ) -> None:
        self._requests.labels(endpoint, status).inc()
        self._latency.labels(endpoint).observe(seconds)
        self._log.info(
            "request",
            endpoint=endpoint,
            status=status,
            seconds=round(seconds, 6),
            request_id=request_id,
        )

    # ------------------------------------------------------------------
    # load shedding
    # ------------------------------------------------------------------
    def breaker_for(self, model: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one model."""
        with self._breakers_lock:
            breaker = self._breakers.get(model)
            if breaker is None:
                breaker = CircuitBreaker(model, self._breaker_config)
                self._breakers[model] = breaker
            return breaker

    def _guarded(self, model: str):
        """Admit a call through the model's breaker (counting rejections)."""
        breaker = self.breaker_for(model)
        try:
            breaker.before_call()
        except ReproError:
            self._breaker_rejected.labels(model).inc()
            raise
        return breaker

    def _record_outcome(self, breaker: CircuitBreaker, exc: Optional[BaseException]) -> None:
        # Backpressure and client deadline misses are load signals, not
        # evidence the model itself is broken — they must not trip the
        # circuit and turn a busy server into an unavailable one.
        if exc is None:
            breaker.record_success()
        elif not isinstance(
            exc, (QueueFullError, RequestTimeoutError, ServerClosedError)
        ):
            breaker.record_failure()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def predict_payload(
        self,
        document: object,
        timeout: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> dict:
        """Handle a ``/v1/predict`` body; returns the response document."""
        entry = self.registry.get(request_model_name(document))
        clips, threshold, _ = decode_predict_request(document, entry.spec)
        flags, margins, resolved = self.predict_clips(
            clips,
            model=entry.name,
            threshold=threshold,
            timeout=timeout,
            request_id=request_id,
        )
        return encode_predict_response(
            entry.name, resolved, flags, margins, request_id=request_id
        )

    def predict_clips(
        self,
        clips: Sequence[Clip],
        model: Optional[str] = None,
        threshold: Optional[float] = None,
        timeout: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Batched clip prediction: (flags, margins, resolved threshold)."""
        entry = self.registry.get(model)
        if threshold is None:
            threshold = entry.detector.config.decision_threshold
        breaker = self._guarded(entry.name)
        try:
            result = self.batcher.submit(
                entry.name,
                list(clips),
                context=float(threshold),
                timeout=timeout,
                request_id=request_id,
            )
        except (KeyboardInterrupt, SystemExit):
            raise  # process shutdown, not a model failure
        except Exception as exc:
            self._record_outcome(breaker, exc)
            self._log.error(
                "predict_failed",
                model=entry.name,
                error_type=type(exc).__name__,
                error=str(exc),
                request_id=request_id,
            )
            raise
        self._record_outcome(breaker, None)
        flags = np.array([flag for flag, _ in result], dtype=bool)
        margins = np.array([margin for _, margin in result], dtype=float)
        return flags, margins, float(threshold)

    def scan_payload(self, document: object, request_id: Optional[str] = None) -> dict:
        """Handle a ``/v1/scan`` body; full-layout detection, unbatched.

        Malformed clip regions are quarantined (skipped and counted on
        the response and ``/metrics``) rather than failing the scan.
        """
        entry = self.registry.get(request_model_name(document))
        layout, layer, threshold, _ = decode_scan_request(document)
        breaker = self._guarded(entry.name)
        quarantine = QuarantineReport()
        try:
            report = entry.detector.detect(
                layout, layer=layer, threshold=threshold, quarantine=quarantine
            )
        except (KeyboardInterrupt, SystemExit):
            raise  # process shutdown, not a model failure
        except Exception as exc:
            self._record_outcome(breaker, exc)
            self._log.error(
                "scan_failed",
                model=entry.name,
                error_type=type(exc).__name__,
                error=str(exc),
                request_id=request_id,
            )
            raise
        self._record_outcome(breaker, None)
        if quarantine:
            self._log.warning(
                "scan_quarantined",
                model=entry.name,
                quarantined=quarantine.total,
                by_kind=quarantine.counts_by_kind(),
                request_id=request_id,
            )
        return encode_scan_response(entry.name, report, request_id=request_id)

    def health(self) -> tuple[bool, dict]:
        """(healthy?, document) — healthy iff a model is loaded and the
        batcher accepts work."""
        models = self.registry.names()
        healthy = bool(models) and not self.batcher.closing
        document = {
            "status": "ok" if healthy else "unavailable",
            "models": models,
            "registry_version": self.registry.signature(),
            "queue_depth": self.batcher.queue_depth(),
            "uptime_seconds": time.time() - self.started_unix,
            "draining": self.batcher.closing,
        }
        return healthy, document

    def models_document(self) -> dict:
        return {"models": self.registry.describe()}

    def metrics_text(self) -> str:
        return self.metrics.render()

    # ------------------------------------------------------------------
    # batched evaluation (runs on batcher worker threads)
    # ------------------------------------------------------------------
    def _evaluate_batch(
        self, group: str, requests: list[tuple[Sequence[Clip], object]]
    ) -> list[list[tuple[bool, float]]]:
        faults.inject("serve.evaluate", group=group)
        entry = self.registry.get(group)
        detector = entry.detector
        model = detector.model_
        if model is None:
            raise ServeError(f"model {group!r} has no trained kernels")

        all_clips: list[Clip] = []
        spans: list[tuple[int, int, float]] = []
        for clips, threshold in requests:
            start = len(all_clips)
            all_clips.extend(clips)
            spans.append((start, len(all_clips), float(threshold)))

        margins = model.margins(all_clips)
        flags = np.zeros(len(all_clips), dtype=bool)
        for start, stop, threshold in spans:
            flags[start:stop] = margins[start:stop] >= threshold

        # One feedback pass over every flagged clip in the batch — the
        # filter is per-clip, so batching cannot change any verdict.  An
        # erroring feedback kernel degrades to the primary verdicts
        # (logged + counted) instead of failing the whole batch.
        if detector.feedback_ is not None and np.any(flags):
            flagged_indices = np.flatnonzero(flags)
            keep = detector._feedback_keep([all_clips[i] for i in flagged_indices])
            if keep is not None:
                flags[flagged_indices[~keep]] = False

        return [
            list(zip(flags[start:stop].tolist(), margins[start:stop].tolist()))
            for start, stop, _ in spans
        ]
