"""Stdlib-only HTTP front end for the serving facade.

:class:`HotspotServer` wraps a :class:`~repro.serve.service.ServeService`
in a ``ThreadingHTTPServer``.  Endpoints:

- ``POST /v1/predict`` — batched clip prediction;
- ``POST /v1/scan``    — full-layout detection;
- ``GET  /v1/models``  — loaded model versions;
- ``GET  /healthz``    — liveness/readiness (``503`` when no model);
- ``GET  /metrics``    — Prometheus text metrics.

Error mapping: malformed payload -> ``400``; unknown model -> ``404``;
queue full (backpressure) -> ``429``; open circuit breaker or draining
-> ``503``; request timeout -> ``504``.  ``429``/``503`` responses carry
a ``Retry-After`` header so well-behaved clients back off.  Every error
body is the structured JSON envelope ``{"error": {"code", "message"}}``.

Shutdown is graceful: ``stop()`` (also installed as the SIGTERM/SIGINT
handler by the CLI) stops accepting connections, then drains the
batching queue so every in-flight request gets its response.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import (
    CircuitOpenError,
    InputError,
    ModelNotFoundError,
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    ServerClosedError,
)
from repro.obs import get_logger, new_request_id
from repro.serve.protocol import ProtocolError, encode_error
from repro.serve.service import ServeService

#: Request bodies above this size are rejected up front (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ReuseAddrHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server that rebinds cleanly and reports its port.

    ``SO_REUSEADDR`` lets tests (and the fleet's many localhost servers)
    rebind an address still in ``TIME_WAIT`` without races; binding port
    ``0`` picks an ephemeral port whose real value is reflected back into
    ``server_address`` by the stdlib after ``server_bind``.  Handler
    threads are daemonic so a hung connection never blocks interpreter
    exit.  Fleet servers (:mod:`repro.fleet.protocol`) reuse this class
    for the same bind semantics as the serve front end.

    Open connections are tracked so :meth:`close_connections` can sever
    live HTTP/1.1 keep-alive peers: ``server_close()`` only closes the
    *listening* socket, and a "stopped" server whose handler threads
    keep answering persistent connections is a zombie — the exact
    split-brain failure the fleet's leader-epoch fence exists for.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._open_connections: set = set()
        self._connections_lock = threading.Lock()

    def process_request(self, request, client_address):
        with self._connections_lock:
            self._open_connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request):
        with self._connections_lock:
            self._open_connections.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        """Sever every live keep-alive connection (called on stop)."""
        with self._connections_lock:
            connections = list(self._open_connections)
            self._open_connections.clear()
        for request in connections:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already closing on its own


@dataclass(frozen=True)
class ServerConfig:
    """Network knobs of the HTTP front end."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (tests); read ``server.port`` after
    #: ``start()``.
    port: int = 0


#: Retry-After (seconds) advertised with backpressure rejections.
QUEUE_FULL_RETRY_AFTER_S = 1.0
DRAINING_RETRY_AFTER_S = 2.0


def _error_status(exc: BaseException) -> tuple[int, str, Optional[float]]:
    """Map an exception to (HTTP status, error code, Retry-After seconds)."""
    if isinstance(exc, ProtocolError):
        return 400, "bad_request", None
    if isinstance(exc, ModelNotFoundError):
        return 404, "model_not_found", None
    if isinstance(exc, QueueFullError):
        return 429, "queue_full", QUEUE_FULL_RETRY_AFTER_S
    if isinstance(exc, CircuitOpenError):
        return 503, "circuit_open", exc.retry_after_s
    if isinstance(exc, ServerClosedError):
        return 503, "shutting_down", DRAINING_RETRY_AFTER_S
    if isinstance(exc, RequestTimeoutError):
        return 504, "timeout", None
    if isinstance(exc, InputError):
        return 400, "bad_geometry", None
    if isinstance(exc, ServeError):
        return 500, "serve_error", None
    return 500, "internal_error", None


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the owning server's service object."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    #: Correlation id of the in-flight request (header or generated);
    #: echoed on every response and threaded into the batcher.
    _request_id: Optional[str] = None

    # Populated by HotspotServer via the server instance.
    @property
    def service(self) -> ServeService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _send_json(
        self,
        status: int,
        document: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Integral seconds per RFC 9110; never advertise zero.
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> object:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ProtocolError("request requires a JSON body")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    def _handle(self, endpoint: str, fn) -> None:
        started = time.perf_counter()
        status = 500
        self._request_id = (
            self.headers.get("X-Request-Id", "").strip() or new_request_id()
        )
        try:
            status, payload, content_type = fn()
            if content_type == "application/json":
                self._send_json(status, payload)
            else:
                self._send_text(status, payload, content_type)
        except Exception as exc:  # mapped to HTTP codes
            status, code, retry_after = _error_status(exc)
            if status >= 500:
                get_logger("serve.httpd").error(
                    "request_failed",
                    endpoint=endpoint,
                    code=code,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    request_id=self._request_id,
                )
            try:
                self._send_json(
                    status,
                    encode_error(code, str(exc), request_id=self._request_id),
                    retry_after=retry_after,
                )
            except (BrokenPipeError, ConnectionResetError):
                pass
        finally:
            self.service.record_request(
                endpoint,
                status,
                time.perf_counter() - started,
                request_id=self._request_id,
            )

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            def health():
                healthy, document = self.service.health()
                return (200 if healthy else 503), document, "application/json"

            self._handle("/healthz", health)
        elif path == "/metrics":
            self._handle(
                "/metrics",
                lambda: (
                    200,
                    self.service.metrics_text(),
                    "text/plain; version=0.0.4",
                ),
            )
        elif path == "/v1/models":
            self._handle(
                "/v1/models",
                lambda: (200, self.service.models_document(), "application/json"),
            )
        else:
            self._send_json(404, encode_error("not_found", f"no route {path!r}"))

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/v1/predict":
            self._handle(
                "/v1/predict",
                lambda: (
                    200,
                    self.service.predict_payload(
                        self._read_json_body(), request_id=self._request_id
                    ),
                    "application/json",
                ),
            )
        elif path == "/v1/scan":
            self._handle(
                "/v1/scan",
                lambda: (
                    200,
                    self.service.scan_payload(
                        self._read_json_body(), request_id=self._request_id
                    ),
                    "application/json",
                ),
            )
        else:
            self._send_json(404, encode_error("not_found", f"no route {path!r}"))


class HotspotServer:
    """A running (or startable) HTTP inference server."""

    def __init__(
        self,
        service: ServeService,
        config: Optional[ServerConfig] = None,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self.verbose = verbose
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            raise ServeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "HotspotServer":
        """Bind the socket and serve on a background thread."""
        if self._httpd is not None:
            return self
        self.service.start()
        self._httpd = ReuseAddrHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._httpd.verbose = self.verbose  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        self._stopped.clear()
        return self

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: close the listener, drain the queue."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.service.close(drain=drain)
        # NOTE: live connections are deliberately NOT severed here —
        # handler threads may still be writing drained responses, and
        # graceful shutdown promises every in-flight request its
        # answer.  Fleet servers (whose stop() means *death*) sever
        # theirs via close_connections().
        self._httpd = None
        self._thread = None
        self._stopped.set()

    def wait(self) -> None:
        """Block the calling thread until :meth:`stop` completes."""
        self._stopped.wait()

    # Context-manager sugar for tests and the benchmark.
    def __enter__(self) -> "HotspotServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
