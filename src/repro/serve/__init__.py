"""Long-running inference service around a persisted detector.

The :mod:`repro.serve` subsystem turns ``.npz`` detector archives
(:mod:`repro.core.persist`) into an observable network service:

- :mod:`repro.serve.metrics` — Prometheus-style counters, gauges and
  latency histograms, reusable by the core detector;
- :mod:`repro.serve.registry` — named model versions with hot-reload on
  file change;
- :mod:`repro.serve.batching` — a bounded micro-batching queue that
  coalesces clip-prediction requests with backpressure and timeouts;
- :mod:`repro.serve.service` — the transport-independent service facade;
- :mod:`repro.serve.httpd` — a stdlib-only threaded HTTP front end
  (``POST /v1/predict``, ``POST /v1/scan``, ``GET /healthz``,
  ``GET /metrics``);
- :mod:`repro.serve.client` — :class:`ServeClient`, the Python client
  used by the tests, the CLI and the throughput benchmark.

Everything here is standard library + numpy; there is no new dependency.
"""

from repro.serve.batching import BatchingConfig, MicroBatcher
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.httpd import HotspotServer, ServerConfig
from repro.serve.metrics import MetricsRegistry
from repro.serve.registry import ModelRegistry
from repro.serve.service import ServeService

__all__ = [
    "BatchingConfig",
    "HotspotServer",
    "MetricsRegistry",
    "MicroBatcher",
    "ModelRegistry",
    "ServeClient",
    "ServeClientError",
    "ServeService",
    "ServerConfig",
]
