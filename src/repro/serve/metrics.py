"""Prometheus-style process metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` owns a set of named metric families and can
render them in the Prometheus text exposition format (``GET /metrics``).
It is deliberately tiny and dependency-free, but keeps the semantics a
scraper expects: counters only go up, histogram buckets are cumulative,
``_sum``/``_count`` accompany every histogram, and label values are
escaped.

The registry doubles as a generic timing sink: it exposes
``observe(name, value)`` and ``increment(name)`` so components that must
not depend on the serve layer (e.g. :class:`repro.core.detector.
HotspotDetector`) can feed it through duck typing alone.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

#: Default latency buckets (seconds) — micro-batch serving lives in the
#: sub-millisecond to low-second range.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Observations kept per histogram child for quantile estimation.
RESERVOIR_SIZE = 2048


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing counter child."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, timestamps)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram child with quantile estimation.

    Buckets follow Prometheus semantics (``le`` upper bounds, cumulative
    on render).  Quantiles come from a bounded ring of recent
    observations — exact for the first :data:`RESERVOIR_SIZE` samples,
    a sliding window afterwards, which is the behaviour a serving
    dashboard wants (recent latency, not all-time).
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count", "_ring", "_ring_pos")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self._lock = threading.Lock()
        self._bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self._bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._ring: list[float] = []
        self._ring_pos = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = bisect.bisect_left(self._bounds, value)
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if len(self._ring) < RESERVOIR_SIZE:
                self._ring.append(value)
            else:
                self._ring[self._ring_pos] = value
                self._ring_pos = (self._ring_pos + 1) % RESERVOIR_SIZE

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the recent-observation window.

        Returns 0.0 for an empty histogram (back-compat convenience);
        callers that must distinguish "no data" from "zero latency"
        should use :meth:`stats`, which reports ``None`` quantiles for
        empty histograms.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            window = sorted(self._ring)
        if not window:
            return 0.0
        rank = min(len(window) - 1, max(0, int(round(q * (len(window) - 1)))))
        return window[rank]

    def stats(self, quantiles: Sequence[float] = (0.50, 0.99)) -> dict:
        """Atomic count/sum/quantile read under one lock acquisition.

        ``count``, ``sum`` and every quantile come from the same locked
        view, so concurrent ``observe`` calls from batcher worker
        threads cannot produce a torn snapshot (e.g. a count that
        disagrees with the quantile window).  Quantiles are ``None``
        when the histogram is empty; a single sample is every quantile.
        """
        with self._lock:
            count = self._count
            total = self._sum
            window = sorted(self._ring)
        out: dict = {"count": count, "sum": total}
        for q in quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1], got {q}")
            key = f"p{q * 100:g}".replace(".", "_")
            if not window:
                out[key] = None
            else:
                rank = min(len(window) - 1, max(0, int(round(q * (len(window) - 1)))))
                out[key] = window[rank]
        return out

    def snapshot(self) -> dict:
        with self._lock:
            cumulative = []
            running = 0
            for bound, count in zip(self._bounds, self._counts):
                running += count
                cumulative.append((bound, running))
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": cumulative,
            }

    def state(self) -> dict:
        """Full-fidelity, mergeable dump: raw (non-cumulative) buckets.

        Unlike :meth:`snapshot`, per-bucket counts here are *raw*, so two
        states with identical bounds merge by plain element-wise
        addition (see :meth:`absorb`).  The quantile ring is not part of
        the state — it is a process-local sliding window and has no
        meaningful cross-process merge.
        """
        with self._lock:
            return {
                "bounds": list(self._bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def absorb(self, state: dict) -> None:
        """Add another histogram's :meth:`state` into this one.

        Bucket-wise: both histograms must share the exact bound list
        (``ValueError`` otherwise — silently re-bucketing would corrupt
        the distribution).  The quantile ring is left untouched.
        """
        bounds = tuple(state.get("bounds", ()))
        counts = list(state.get("counts", ()))
        with self._lock:
            if bounds != self._bounds or len(counts) != len(self._counts):
                raise ValueError(
                    f"histogram bucket mismatch: {bounds} vs {self._bounds}"
                )
            for index, count in enumerate(counts):
                self._counts[index] += int(count)
            self._sum += float(state.get("sum", 0.0))
            self._count += int(state.get("count", 0))


@dataclass
class _Family:
    """One named metric family: children keyed by label-value tuples."""

    name: str
    kind: str
    help: str
    label_names: tuple[str, ...]
    factory: object
    children: dict = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock)

    def child(self, label_values: tuple[str, ...]):
        if len(label_values) != len(self.label_names):
            raise ValueError(
                f"metric {self.name} expects labels {self.label_names}, "
                f"got {label_values}"
            )
        with self.lock:
            if label_values not in self.children:
                self.children[label_values] = self.factory()  # type: ignore[operator]
            return self.children[label_values]


class MetricsRegistry:
    """A named collection of metric families with text rendering."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # family constructors
    # ------------------------------------------------------------------
    def _family(
        self, name: str, kind: str, help_: str, label_names: Iterable[str], factory
    ) -> _Family:
        full = f"{self.namespace}_{name}" if self.namespace else name
        return self._family_full(full, kind, help_, label_names, factory)

    def _family_full(
        self, full: str, kind: str, help_: str, label_names: Iterable[str], factory
    ) -> _Family:
        """Register/fetch a family by its already-namespaced name."""
        with self._lock:
            family = self._families.get(full)
            if family is None:
                family = _Family(full, kind, help_, tuple(label_names), factory)
                self._families[full] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {full} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help_: str = "", labels: Iterable[str] = ()) -> "_Bound":
        return _Bound(self._family(name, "counter", help_, labels, Counter))

    def gauge(self, name: str, help_: str = "", labels: Iterable[str] = ()) -> "_Bound":
        return _Bound(self._family(name, "gauge", help_, labels, Gauge))

    def histogram(
        self,
        name: str,
        help_: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> "_Bound":
        return _Bound(
            self._family(name, "histogram", help_, labels, lambda: Histogram(buckets))
        )

    # ------------------------------------------------------------------
    # duck-typed sink interface (used by the core detector)
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram called ``name``."""
        self.histogram(name).labels().observe(value)

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Bump the counter called ``name``."""
        self.counter(name).labels().inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).labels().set(value)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition format, stably ordered."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            with family.lock:
                children = sorted(family.children.items())
            for label_values, child in children:
                labels = _render_labels(family.label_names, label_values)
                if family.kind in ("counter", "gauge"):
                    lines.append(f"{family.name}{labels} {child.value:g}")
                else:
                    snap = child.snapshot()
                    for bound, cumulative in snap["buckets"]:
                        le = _render_labels(
                            family.label_names + ("le",),
                            label_values + (f"{bound:g}",),
                        )
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    inf = _render_labels(
                        family.label_names + ("le",), label_values + ("+Inf",)
                    )
                    lines.append(f"{family.name}_bucket{inf} {snap['count']}")
                    lines.append(f"{family.name}_sum{labels} {snap['sum']:g}")
                    lines.append(f"{family.name}_count{labels} {snap['count']}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly dump: values, and p50/p99 for histograms."""
        out: dict = {}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            with family.lock:
                children = list(family.children.items())
            for label_values, child in children:
                key = family.name
                if label_values:
                    key += "{" + ",".join(label_values) + "}"
                if family.kind in ("counter", "gauge"):
                    out[key] = child.value
                else:
                    stats = child.stats((0.50, 0.99))
                    out[key] = {
                        "count": stats["count"],
                        "sum": stats["sum"],
                        "p50": stats["p50"],
                        "p99": stats["p99"],
                    }
        return out

    # ------------------------------------------------------------------
    # federation: mergeable state export/absorb
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """A lossless, JSON-able dump for cross-process merging.

        Family names are fully namespaced; histogram children carry raw
        per-bucket counts (see :meth:`Histogram.state`), so N states
        merge into exactly the registry that would have observed the
        union of all observations (modulo the process-local quantile
        rings, which do not travel).
        """
        families = []
        with self._lock:
            snapshot = sorted(self._families.values(), key=lambda f: f.name)
        for family in snapshot:
            with family.lock:
                children = sorted(family.children.items())
            dumped = []
            for label_values, child in children:
                if family.kind == "histogram":
                    entry = {"labels": list(label_values)}
                    entry.update(child.state())
                else:
                    entry = {"labels": list(label_values), "value": child.value}
                dumped.append(entry)
            families.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "label_names": list(family.label_names),
                    "children": dumped,
                }
            )
        return {"families": families}

    def absorb_state(self, state: dict) -> None:
        """Merge one :meth:`export_state` document into this registry.

        Counters and gauges add; histograms merge bucket-wise.  Label
        sets are preserved: a child that exists in both registries merges
        into one child, a child unique to the absorbed state is created.
        A malformed family (kind clash, bucket mismatch) raises
        ``ValueError`` — callers federating untrusted peers should catch
        it per state and count the peer as unscrapable.
        """
        for family_state in state.get("families", ()):
            name = str(family_state.get("name", ""))
            kind = str(family_state.get("kind", ""))
            if not name or kind not in ("counter", "gauge", "histogram"):
                raise ValueError(f"malformed metrics family {family_state!r}")
            label_names = tuple(
                str(label) for label in family_state.get("label_names", ())
            )
            if kind == "histogram":
                factory = Histogram  # bounds come from the absorbed state
            else:
                factory = Counter if kind == "counter" else Gauge
            family = self._family_full(
                name, kind, str(family_state.get("help", "")), label_names, factory
            )
            if family.label_names != label_names:
                raise ValueError(
                    f"metric {name} label mismatch: "
                    f"{label_names} vs {family.label_names}"
                )
            for entry in family_state.get("children", ()):
                labels = tuple(str(v) for v in entry.get("labels", ()))
                if len(labels) != len(label_names):
                    raise ValueError(
                        f"metric {name} child labels {labels} do not match "
                        f"label names {label_names}"
                    )
                if kind == "histogram":
                    bounds = tuple(entry.get("bounds", ()))
                    with family.lock:
                        child = family.children.get(labels)
                        if child is None:
                            child = Histogram(bounds or DEFAULT_BUCKETS)
                            family.children[labels] = child
                    child.absorb(entry)
                else:
                    value = float(entry.get("value", 0.0))
                    child = family.child(labels)
                    if kind == "counter":
                        child.inc(max(0.0, value))
                    else:
                        child.inc(value)  # gauges federate by summing


def merge_metrics_states(
    states: Iterable[dict], namespace: str = ""
) -> MetricsRegistry:
    """Merge N :meth:`MetricsRegistry.export_state` docs into one registry.

    The merge is bucket-wise for histograms and additive for counters and
    gauges, preserving every label set — the algebra behind the fleet's
    federated ``/metrics`` view.  A malformed state raises ``ValueError``;
    federating callers should validate per member before merging.
    """
    merged = MetricsRegistry(namespace=namespace)
    for state in states:
        merged.absorb_state(state)
    return merged


class _Bound:
    """A family handle; ``labels(...)`` resolves the concrete child."""

    __slots__ = ("_family",)

    def __init__(self, family: _Family) -> None:
        self._family = family

    def labels(self, *values: object) -> object:
        return self._family.child(tuple(str(v) for v in values))


class Timer:
    """Context manager feeding elapsed seconds to a histogram child."""

    __slots__ = ("_histogram", "_started", "elapsed")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started: Optional[float] = None
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._started is None:  # __exit__ without __enter__ — record nothing
            return
        self.elapsed = time.perf_counter() - self._started
        self._histogram.observe(self.elapsed)
