"""Wire format of the serving API: JSON payloads <-> domain objects.

Requests and responses are plain JSON so any client can speak the
protocol.  Geometry is encoded as integer DBU rectangles
``[x0, y0, x1, y1]``:

``POST /v1/predict`` ::

    {"model": "default",          # optional; the registry default
     "threshold": 0.5,            # optional; the model's trained value
     "clips": [
        {"window": [x0, y0, x1, y1],   # clip_side x clip_side square
         "rects":  [[x0, y0, x1, y1], ...]},
        ...]}
    -> {"model": "default", "threshold": 0.0,
        "flags": [true, false, ...], "margins": [0.83, -1.2, ...],
        "count": 2, "batch": {...telemetry...}}

``POST /v1/scan`` ::

    {"model": "default", "layer": 1, "threshold": null,
     "rects": [[x0, y0, x1, y1], ...]}
    -> {"reports": [{"core": [...], "window": [...]}, ...],
        "candidates": 41, "eval_seconds": 0.8, ...}

Decoding is strict: malformed payloads raise :class:`ProtocolError`
with a message naming the offending field, which the HTTP layer turns
into a structured ``400``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ServeError
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipSpec
from repro.layout.layout import Layout


class ProtocolError(ServeError):
    """The request payload does not match the wire format."""


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------


def decode_rect(payload: object, field: str) -> Rect:
    if (
        not isinstance(payload, (list, tuple))
        or len(payload) != 4
        or not all(isinstance(v, int) and not isinstance(v, bool) for v in payload)
    ):
        raise ProtocolError(
            f"{field} must be an integer rectangle [x0, y0, x1, y1], got {payload!r}"
        )
    x0, y0, x1, y1 = payload
    if x0 >= x1 or y0 >= y1:
        raise ProtocolError(f"{field} is degenerate: {payload!r}")
    return Rect(x0, y0, x1, y1)


def encode_rect(rect: Rect) -> list[int]:
    return [rect.x0, rect.y0, rect.x1, rect.y1]


def decode_rects(payload: object, field: str) -> list[Rect]:
    if not isinstance(payload, list):
        raise ProtocolError(f"{field} must be a list of rectangles")
    return [decode_rect(item, f"{field}[{i}]") for i, item in enumerate(payload)]


def _get_threshold(document: dict) -> Optional[float]:
    threshold = document.get("threshold")
    if threshold is None:
        return None
    if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
        raise ProtocolError(f"threshold must be a number, got {threshold!r}")
    return float(threshold)


def request_model_name(document: object) -> Optional[str]:
    """The model a request addresses (``None`` = registry default).

    Used before full decoding: the clip spec needed to decode geometry
    belongs to the addressed model.
    """
    if not isinstance(document, dict):
        raise ProtocolError("request body must be a JSON object")
    model = document.get("model")
    if model is not None and not isinstance(model, str):
        raise ProtocolError(f"model must be a string, got {model!r}")
    return model


_get_model = request_model_name


def _get_layer(document: dict) -> int:
    layer = document.get("layer", 1)
    if isinstance(layer, bool) or not isinstance(layer, int):
        raise ProtocolError(f"layer must be an integer, got {layer!r}")
    return layer


# ----------------------------------------------------------------------
# predict
# ----------------------------------------------------------------------


def decode_clip(payload: object, spec: ClipSpec, layer: int, field: str) -> Clip:
    if not isinstance(payload, dict):
        raise ProtocolError(f"{field} must be an object with window/rects")
    if "window" not in payload:
        raise ProtocolError(f"{field} is missing 'window'")
    window = decode_rect(payload["window"], f"{field}.window")
    if window.width != spec.clip_side or window.height != spec.clip_side:
        raise ProtocolError(
            f"{field}.window must be a {spec.clip_side} DBU square for this "
            f"model, got {window.width}x{window.height}"
        )
    rects = decode_rects(payload.get("rects", []), f"{field}.rects")
    return Clip.build(window, spec, rects, layer=layer)


def encode_clip(clip: Clip) -> dict:
    return {
        "window": encode_rect(clip.window),
        "rects": [encode_rect(rect) for rect in clip.rects],
    }


def decode_predict_request(
    document: object, spec: ClipSpec
) -> tuple[list[Clip], Optional[float], Optional[str]]:
    """Parse a ``/v1/predict`` body into (clips, threshold, model name)."""
    if not isinstance(document, dict):
        raise ProtocolError("request body must be a JSON object")
    clips_payload = document.get("clips")
    if not isinstance(clips_payload, list) or not clips_payload:
        raise ProtocolError("'clips' must be a non-empty list")
    layer = _get_layer(document)
    clips = [
        decode_clip(item, spec, layer, f"clips[{i}]")
        for i, item in enumerate(clips_payload)
    ]
    return clips, _get_threshold(document), _get_model(document)


def encode_predict_response(
    model: str,
    threshold: float,
    flags: Sequence[bool],
    margins: Sequence[float],
    request_id: Optional[str] = None,
) -> dict:
    document = {
        "model": model,
        "threshold": threshold,
        "flags": [bool(f) for f in flags],
        "margins": [float(m) for m in margins],
        "count": int(sum(bool(f) for f in flags)),
    }
    if request_id is not None:
        document["request_id"] = request_id
    return document


# ----------------------------------------------------------------------
# scan
# ----------------------------------------------------------------------


def decode_scan_request(
    document: object,
) -> tuple[Layout, int, Optional[float], Optional[str]]:
    """Parse a ``/v1/scan`` body into (layout, layer, threshold, model)."""
    if not isinstance(document, dict):
        raise ProtocolError("request body must be a JSON object")
    rects = decode_rects(document.get("rects"), "rects")
    if not rects:
        raise ProtocolError("'rects' must be a non-empty list")
    layer = _get_layer(document)
    layout = Layout()
    for rect in rects:
        layout.add_rect(layer, rect)
    return layout, layer, _get_threshold(document), _get_model(document)


def encode_scan_response(model: str, report, request_id: Optional[str] = None) -> dict:
    """Serialise a :class:`~repro.core.detector.DetectionReport`."""
    document = {
        "model": model,
        "reports": [
            {"core": encode_rect(clip.core), "window": encode_rect(clip.window)}
            for clip in report.reports
        ],
        "count": report.report_count,
        "candidates": report.extraction.candidate_count,
        "flagged_before_feedback": report.flagged_before_feedback,
        "flagged_after_feedback": report.flagged_after_feedback,
        "eval_seconds": report.eval_seconds,
        "quarantined": getattr(report, "quarantined", 0),
        "feedback_degraded": getattr(report, "feedback_degraded", False),
    }
    if request_id is not None:
        document["request_id"] = request_id
    return document


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------


def encode_error(code: str, message: str, request_id: Optional[str] = None) -> dict:
    """The structured error envelope every non-2xx response carries."""
    document: dict = {"error": {"code": code, "message": message}}
    if request_id is not None:
        document["request_id"] = request_id
    return document
