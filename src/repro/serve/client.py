"""``ServeClient`` — the Python client of the serving API.

Wraps :mod:`http.client` (no third-party HTTP stack) and speaks the JSON
protocol of :mod:`repro.serve.protocol`.  Domain-level helpers accept
and return :class:`~repro.layout.clip.Clip` / numpy objects, so tests
and benchmarks can round-trip through the wire format without manual
encoding::

    client = ServeClient("http://127.0.0.1:8976")
    result = client.predict(clips)           # PredictResult
    assert result.flags.dtype == bool
    report = client.scan(rects, layer=1)     # decoded /v1/scan response
    client.healthz()                         # raises if unhealthy
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ServeError
from repro.geometry.rect import Rect
from repro.layout.clip import Clip
from repro.resilience.retry import RetryPolicy
from repro.serve.protocol import encode_clip, encode_rect

#: HTTP statuses the client treats as transient for idempotent requests.
RETRYABLE_STATUSES = (429, 503)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Delay seconds from a ``Retry-After`` header (delta form only)."""
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None  # HTTP-date form: fall back to local backoff


class ServeClientError(ServeError):
    """A non-2xx response; carries the server's structured error."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message


@dataclass
class PredictResult:
    """Decoded ``/v1/predict`` response."""

    model: str
    threshold: float
    flags: np.ndarray
    margins: np.ndarray
    #: Correlation id echoed by the server (``X-Request-Id``).
    request_id: Optional[str] = None
    #: Transport attempts the client spent (1 = no retry needed).
    attempts: int = 1

    @property
    def hotspot_count(self) -> int:
        return int(self.flags.sum())


class ServeClient:
    """Thin, thread-safe client for one hotspot-inference server."""

    def __init__(
        self,
        url: str,
        timeout: float = 60.0,
        retries: int = 2,
        backoff: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ServeError(f"unsupported scheme {parsed.scheme!r}")
        netloc = parsed.netloc or parsed.path
        if ":" not in netloc:
            raise ServeError(f"client URL needs host:port, got {url!r}")
        host, port = netloc.rsplit(":", 1)
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        #: Extra attempts on 429/503 for idempotent requests; the
        #: server's ``Retry-After`` wins over the local backoff schedule.
        self.retries = retries
        self.backoff = backoff or RetryPolicy(
            attempts=retries + 1, base_delay_s=0.05, max_delay_s=1.0
        )
        self._sleep = sleep
        self._local = threading.local()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _request(
        self,
        method: str,
        path: str,
        document: Optional[dict] = None,
        request_id: Optional[str] = None,
    ) -> tuple[int, object, str, dict]:
        body = None if document is None else json.dumps(document).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # Stale keep-alive connection: retry once on a fresh socket.
                self.close()
                if attempt:
                    raise
        content_type = response.headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            try:
                decoded: object = json.loads(payload)
            except ValueError as exc:
                raise ServeError(f"invalid JSON from server: {exc}") from exc
        else:
            decoded = payload.decode("utf-8", "replace")
        return response.status, decoded, content_type, dict(response.headers)

    def _request_ok(
        self,
        method: str,
        path: str,
        document: Optional[dict] = None,
        request_id: Optional[str] = None,
        idempotent: bool = True,
    ) -> tuple[object, int]:
        """Request with transient-status retry; returns (body, attempts).

        ``429``/``503`` responses to idempotent requests are retried up
        to ``self.retries`` extra times, sleeping for the server's
        ``Retry-After`` when present and the local deterministic backoff
        otherwise.  Every repro-serve endpoint is a pure function of its
        payload, so prediction and scan requests are safely idempotent.
        """
        attempts = 0
        while True:
            attempts += 1
            status, decoded, _, headers = self._request(
                method, path, document, request_id
            )
            if status < 300:
                return decoded, attempts
            if (
                idempotent
                and status in RETRYABLE_STATUSES
                and attempts <= self.retries
            ):
                delay = _parse_retry_after(headers.get("Retry-After"))
                if delay is None:
                    delay = self.backoff.delay(attempts - 1, label=path)
                self._sleep(delay)
                continue
            if isinstance(decoded, dict) and isinstance(decoded.get("error"), dict):
                error = decoded["error"]
                raise ServeClientError(
                    status,
                    str(error.get("code", "error")),
                    str(error.get("message", "")),
                )
            raise ServeClientError(status, "error", str(decoded)[:200])

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def predict(
        self,
        clips: Sequence[Clip],
        model: Optional[str] = None,
        threshold: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> PredictResult:
        document: dict = {"clips": [encode_clip(clip) for clip in clips]}
        if model is not None:
            document["model"] = model
        if threshold is not None:
            document["threshold"] = threshold
        response, attempts = self._request_ok(
            "POST", "/v1/predict", document, request_id
        )
        return PredictResult(
            model=response["model"],
            threshold=response["threshold"],
            flags=np.array(response["flags"], dtype=bool),
            margins=np.array(response["margins"], dtype=float),
            request_id=response.get("request_id"),
            attempts=attempts,
        )

    def predict_payload(self, document: dict) -> dict:
        """Raw ``/v1/predict`` for callers that already hold payloads."""
        return self._request_ok("POST", "/v1/predict", document)[0]

    def scan(
        self,
        rects: Sequence[Rect],
        layer: int = 1,
        model: Optional[str] = None,
        threshold: Optional[float] = None,
    ) -> dict:
        document: dict = {
            "rects": [encode_rect(rect) for rect in rects],
            "layer": layer,
        }
        if model is not None:
            document["model"] = model
        if threshold is not None:
            document["threshold"] = threshold
        response, attempts = self._request_ok("POST", "/v1/scan", document)
        assert isinstance(response, dict)
        response["client_attempts"] = attempts
        return response

    def healthz(self) -> dict:
        """The health document; raises :class:`ServeClientError` on 503."""
        status, decoded, _, _ = self._request("GET", "/healthz")
        if status != 200:
            message = decoded.get("status", "") if isinstance(decoded, dict) else ""
            raise ServeClientError(status, "unhealthy", str(message))
        assert isinstance(decoded, dict)
        return decoded

    def health_document(self) -> tuple[int, dict]:
        """(status code, body) without raising — for readiness probes."""
        status, decoded, _, _ = self._request("GET", "/healthz")
        return status, decoded if isinstance(decoded, dict) else {}

    def models(self) -> dict:
        result = self._request_ok("GET", "/v1/models")[0]
        assert isinstance(result, dict)
        return result

    def metrics_text(self) -> str:
        status, decoded, _, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServeClientError(status, "metrics", str(decoded)[:200])
        assert isinstance(decoded, str)
        return decoded
