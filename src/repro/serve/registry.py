"""Named detector versions with hot-reload on file change.

The registry maps model names to loaded
:class:`~repro.core.detector.HotspotDetector` instances backed by
``.npz`` archives (:mod:`repro.core.persist`).  Multiple versions serve
side by side; each lookup cheaply re-``stat``\\ s the backing file (at
most once per ``poll_interval``) and transparently reloads when the
archive's mtime or size changes — so a deploy is "overwrite the file".

Loads are guarded per entry, so concurrent request threads never load
the same archive twice, and readers keep getting the previous detector
until the replacement is fully constructed (load is atomic-swap).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Optional, Union

from repro.core.detector import HotspotDetector
from repro.core.persist import load_detector, read_archive_info
from repro.errors import ModelNotFoundError, ServeError, TransientError
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy, call_with_retry

#: Registry name used when the caller does not pick one.
DEFAULT_MODEL = "default"

#: Archive loads retry torn reads: a deploy is "overwrite the file", so a
#: reader can race the writer and see a half-written npz for a moment.
#: ValueError covers numpy/zip/json complaints about truncated archives.
LOAD_RETRY = RetryPolicy(
    attempts=3,
    base_delay_s=0.02,
    max_delay_s=0.25,
    retry_on=(TransientError, OSError, ValueError),
)


@dataclass
class ModelEntry:
    """One loaded model version."""

    name: str
    path: Path
    detector: HotspotDetector
    info: dict
    mtime: float
    size: int
    loaded_unix: float
    reloads: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def spec(self):
        return self.detector.config.spec


def _stat_signature(path: Path) -> tuple[float, int]:
    stat = os.stat(path)
    return stat.st_mtime, stat.st_size


class ModelRegistry:
    """Thread-safe named collection of detector archives.

    Parameters
    ----------
    poll_interval:
        Minimum seconds between file-change checks per model.  ``0``
        checks on every lookup (used by the hot-reload tests).
    metrics:
        Optional :class:`~repro.serve.metrics.MetricsRegistry`; model
        load timestamps, load durations and reload counts are emitted
        when present.
    cache:
        Optional shared :class:`repro.cache.HotspotCache`, attached to
        every loaded detector (including hot reloads) so repeated clip
        geometries are extracted and scored once across requests and
        model versions.
    compute:
        Optional compute-mode override ("exact"/"fast") applied to every
        loaded detector (including hot reloads).  Fast mode compacts and
        caches the blocked-kernel state of every support-vector machine
        at load time, so the first request pays no warm-up.
    """

    def __init__(
        self, poll_interval: float = 1.0, metrics=None, cache=None, compute=None
    ) -> None:
        self.poll_interval = poll_interval
        self.metrics = metrics
        self.cache = cache
        self.compute = compute
        self._entries: dict[str, ModelEntry] = {}
        self._lock = threading.Lock()
        self._last_poll: dict[str, float] = {}

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, path: Union[str, Path], name: Optional[str] = None) -> ModelEntry:
        """Load (or replace) the model ``name`` from a ``.npz`` archive."""
        path = Path(path)
        if name is None:
            name = DEFAULT_MODEL if not self._entries else path.stem
        started = time.perf_counter()

        def _load() -> tuple[tuple[float, int], HotspotDetector, dict]:
            faults.inject("registry.load", model=name, path=str(path))
            signature = _stat_signature(path)
            return signature, load_detector(path), read_archive_info(path)

        try:
            (mtime, size), detector, info = call_with_retry(
                _load, LOAD_RETRY, label=f"model:{name}"
            )
            if self.metrics is not None:
                detector.metrics_sink_ = self.metrics
            if self.cache is not None:
                detector.attach_cache(self.cache)
            if self.compute is not None:
                detector.set_compute(self.compute)
            if detector.config.features.compute == "fast":
                from repro.svm.fastpath import warm_fast_states

                warm_fast_states(detector)
        except (OSError, ValueError) as exc:
            raise ServeError(f"cannot load model {name!r} from {path}: {exc}") from exc
        entry = ModelEntry(
            name=name,
            path=path,
            detector=detector,
            info=info,
            mtime=mtime,
            size=size,
            loaded_unix=time.time(),
        )
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None:
                entry.reloads = previous.reloads + 1
            self._entries[name] = entry
            self._last_poll[name] = time.monotonic()
        self._emit_load_metrics(entry, time.perf_counter() - started)
        return entry

    def _emit_load_metrics(self, entry: ModelEntry, seconds: float) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge(
            "serve_model_loaded_timestamp_seconds",
            "Unix time the model version was loaded.",
            labels=("model",),
        ).labels(entry.name).set(entry.loaded_unix)
        self.metrics.counter(
            "serve_model_loads_total",
            "Model archive loads, including hot reloads.",
            labels=("model",),
        ).labels(entry.name).inc()
        self.metrics.histogram(
            "serve_model_load_seconds",
            "Time spent loading a model archive.",
            labels=("model",),
        ).labels(entry.name).observe(seconds)

    # ------------------------------------------------------------------
    # lookup + hot reload
    # ------------------------------------------------------------------
    def get(self, name: Optional[str] = None) -> ModelEntry:
        """The named model (or the only/default one), hot-reloaded."""
        with self._lock:
            if not self._entries:
                raise ModelNotFoundError("no model loaded")
            if name is None:
                if DEFAULT_MODEL in self._entries:
                    name = DEFAULT_MODEL
                elif len(self._entries) == 1:
                    name = next(iter(self._entries))
                else:
                    raise ModelNotFoundError(
                        f"model name required; loaded: {sorted(self._entries)}"
                    )
            entry = self._entries.get(name)
            if entry is None:
                raise ModelNotFoundError(
                    f"model {name!r} not loaded; loaded: {sorted(self._entries)}"
                )
        return self._maybe_reload(entry)

    def _maybe_reload(self, entry: ModelEntry) -> ModelEntry:
        now = time.monotonic()
        with self._lock:
            last = self._last_poll.get(entry.name, 0.0)
            if now - last < self.poll_interval:
                return self._entries.get(entry.name, entry)
            self._last_poll[entry.name] = now
        with entry.lock:
            current = self._entries.get(entry.name)
            if current is not entry:  # replaced while we waited
                return current or entry
            try:
                mtime, size = _stat_signature(entry.path)
            except OSError:
                # The file vanished mid-deploy; keep serving the loaded copy.
                return entry
            if (mtime, size) == (entry.mtime, entry.size):
                return entry
            return self.load(entry.path, entry.name)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def signature(self) -> str:
        """Deterministic version id of the loaded model set.

        Hashes every (name, mtime, size) triple, so two replicas agree
        iff they loaded the same archive bytes under the same names —
        the membership layer publishes this so a fleet front end can
        spot replicas that drifted apart mid-deploy.
        """
        with self._lock:
            triples = sorted(
                (entry.name, entry.mtime, entry.size)
                for entry in self._entries.values()
            )
        blob = json.dumps(triples, sort_keys=True)
        return sha256(blob.encode("utf-8")).hexdigest()[:16]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def unload(self, name: str) -> None:
        with self._lock:
            if name not in self._entries:
                raise ModelNotFoundError(f"model {name!r} not loaded")
            del self._entries[name]
            self._last_poll.pop(name, None)

    def describe(self) -> list[dict]:
        """JSON-friendly description of every loaded version."""
        with self._lock:
            entries = list(self._entries.values())
        out = []
        for entry in sorted(entries, key=lambda e: e.name):
            out.append(
                {
                    "name": entry.name,
                    "path": str(entry.path),
                    "loaded_unix": entry.loaded_unix,
                    "reloads": entry.reloads,
                    "spec": {
                        "core_side": entry.spec.core_side,
                        "clip_side": entry.spec.clip_side,
                    },
                    "kernels": entry.info.get("kernels"),
                    "feedback": entry.info.get("feedback"),
                    "decision_threshold": entry.info.get("decision_threshold"),
                    "registry": entry.info.get("registry"),
                }
            )
        return out
