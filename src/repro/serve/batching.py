"""Micro-batching: coalesce prediction requests into model-sized batches.

Incoming requests (each carrying one or more clips) enter a bounded
queue.  Worker threads pull *batches*: a worker takes the oldest pending
request, then keeps absorbing same-group requests until either the batch
holds ``max_batch_clips`` clips or the oldest request has waited
``max_delay_s`` — whichever comes first.  The whole batch is evaluated
in one callback invocation (one :meth:`MultiKernelModel.margins` pass),
and each request receives its slice of the results.

Guarantees:

- **Backpressure** — ``submit`` raises :class:`QueueFullError`
  immediately when admitting the request would exceed
  ``max_queue_clips``; memory use is bounded.
- **Timeouts** — a request that waits past its deadline raises
  :class:`RequestTimeoutError` in the submitting thread and is skipped
  by workers (its slot is reclaimed, not evaluated).
- **Graceful shutdown** — ``close()`` rejects new work with
  :class:`ServerClosedError` while workers drain every queued request;
  ``close(drain=False)`` cancels the queue instead.
- **Grouping** — requests are only batched with requests for the same
  ``group`` key (e.g. model name), so multi-model serving never mixes
  feature spaces.  Thresholds may differ within a batch; the evaluation
  callback receives per-request thresholds.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import (
    ConfigError,
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    ServerClosedError,
)
from repro.obs import get_logger, trace

_log = get_logger("serve.batching")


@dataclass(frozen=True)
class BatchingConfig:
    """Tunables of the micro-batching engine."""

    #: Flush a batch once it holds this many clips.
    max_batch_clips: int = 64
    #: ... or once the oldest queued request has waited this long.
    max_delay_s: float = 0.005
    #: Admission limit: total clips queued (not yet picked by a worker).
    max_queue_clips: int = 1024
    #: Worker threads evaluating batches concurrently.
    workers: int = 2
    #: Default per-request deadline (seconds); ``None`` waits forever.
    default_timeout_s: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.max_batch_clips < 1:
            raise ConfigError("max_batch_clips must be >= 1")
        if self.max_delay_s < 0:
            raise ConfigError("max_delay_s must be non-negative")
        if self.max_queue_clips < self.max_batch_clips:
            raise ConfigError("max_queue_clips must be >= max_batch_clips")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")


@dataclass
class _Request:
    """One queued unit of work and its completion state."""

    group: str
    items: Sequence[object]
    context: object
    enqueued: float
    deadline: Optional[float]
    #: Caller-supplied correlation id; surfaces in batch spans and logs.
    request_id: Optional[str] = None
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[Sequence[object]] = None
    error: Optional[BaseException] = None
    #: Set by the submitter on timeout; workers skip cancelled requests.
    cancelled: bool = False

    def finish(self, result: Optional[Sequence[object]], error=None) -> None:
        self.result = result
        self.error = error
        self.done.set()


#: Evaluation callback: (group, [(items, context), ...]) -> [results, ...]
#: where ``results[i]`` answers request ``i`` (same order, same length).
BatchFunction = Callable[[str, list[tuple[Sequence[object], object]]], list]


class MicroBatcher:
    """Bounded request queue + worker pool forming micro-batches."""

    def __init__(
        self,
        evaluate: BatchFunction,
        config: Optional[BatchingConfig] = None,
        metrics=None,
    ) -> None:
        self.evaluate = evaluate
        self.config = config or BatchingConfig()
        self.metrics = metrics
        self._queue: list[_Request] = []
        self._queued_clips = 0
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._closing = False
        self._threads: list[threading.Thread] = []
        self._started = False
        if metrics is not None:
            self._m_batch_size = metrics.histogram(
                "serve_batch_size_clips",
                "Clips evaluated per micro-batch.",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            ).labels()
            self._m_batch_seconds = metrics.histogram(
                "serve_batch_eval_seconds", "Model evaluation time per batch."
            ).labels()
            self._m_queue_depth = metrics.gauge(
                "serve_queue_depth_clips", "Clips waiting in the batching queue."
            ).labels()
            self._m_rejected = metrics.counter(
                "serve_rejected_total",
                "Requests rejected before evaluation.",
                labels=("reason",),
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._started:
            return self
        self._started = True
        self._closing = False
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-batch-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting work; drain (or cancel) the queue, join workers."""
        with self._lock:
            self._closing = True
            if not drain:
                for request in self._queue:
                    request.finish(None, ServerClosedError("server shutting down"))
                self._queue.clear()
                self._queued_clips = 0
                self._set_depth()
            self._work_ready.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self._started = False

    @property
    def closing(self) -> bool:
        return self._closing

    def queue_depth(self) -> int:
        with self._lock:
            return self._queued_clips

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        group: str,
        items: Sequence[object],
        context: object = None,
        timeout: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Sequence[object]:
        """Queue ``items`` and block until their results are ready.

        Raises :class:`QueueFullError` (backpressure),
        :class:`RequestTimeoutError` (deadline missed) or
        :class:`ServerClosedError` (shutting down).  Any exception from
        the evaluation callback is re-raised here, in the caller.
        """
        if timeout is None:
            timeout = self.config.default_timeout_s
        if self._closing:
            raise ServerClosedError("server is shutting down")
        if not self._started:
            raise ServeError("MicroBatcher.submit before start()")
        now = time.monotonic()
        request = _Request(
            group=group,
            items=items,
            context=context,
            enqueued=now,
            deadline=None if timeout is None else now + timeout,
            request_id=request_id,
        )
        with self._lock:
            if self._closing:
                raise ServerClosedError("server is shutting down")
            if self._queued_clips + len(items) > self.config.max_queue_clips:
                if self.metrics is not None:
                    self._m_rejected.labels("queue_full").inc()
                raise QueueFullError(
                    f"queue full: {self._queued_clips} clips queued, "
                    f"request adds {len(items)}, "
                    f"limit {self.config.max_queue_clips}"
                )
            self._queue.append(request)
            self._queued_clips += len(items)
            self._set_depth()
            self._work_ready.notify()
        remaining = None if request.deadline is None else request.deadline - now
        if not request.done.wait(remaining):
            request.cancelled = True
            # The worker may have completed it between the wait timing out
            # and the flag being set; honour a real result when present.
            if not request.done.is_set():
                if self.metrics is not None:
                    self._m_rejected.labels("timeout").inc()
                raise RequestTimeoutError(
                    f"request timed out after {timeout:.3f}s "
                    f"({len(items)} clips, group {group!r})"
                )
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result

    def _set_depth(self) -> None:
        if self.metrics is not None:
            self._m_queue_depth.set(self._queued_clips)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _take_batch(self) -> Optional[list[_Request]]:
        """Block until a batch is ready (or ``None`` on drained shutdown)."""
        with self._lock:
            while True:
                self._prune_expired_locked()
                if self._queue:
                    oldest = self._queue[0]
                    batch_clips = self._clips_for_group_locked(oldest.group)
                    deadline = oldest.enqueued + self.config.max_delay_s
                    now = time.monotonic()
                    if (
                        batch_clips >= self.config.max_batch_clips
                        or now >= deadline
                        or self._closing
                    ):
                        return self._pop_batch_locked(oldest.group)
                    self._work_ready.wait(timeout=deadline - now)
                    continue
                if self._closing:
                    return None
                self._work_ready.wait(timeout=0.05)

    def _prune_expired_locked(self) -> None:
        kept = []
        for request in self._queue:
            if request.cancelled:
                self._queued_clips -= len(request.items)
            else:
                kept.append(request)
        if len(kept) != len(self._queue):
            self._queue[:] = kept
            self._set_depth()

    def _clips_for_group_locked(self, group: str) -> int:
        return sum(len(r.items) for r in self._queue if r.group == group)

    def _pop_batch_locked(self, group: str) -> list[_Request]:
        batch: list[_Request] = []
        taken = 0
        kept: list[_Request] = []
        for request in self._queue:
            fits = taken + len(request.items) <= self.config.max_batch_clips
            if request.group == group and (fits or not batch):
                batch.append(request)
                taken += len(request.items)
            else:
                kept.append(request)
        self._queue[:] = kept
        self._queued_clips -= taken
        self._set_depth()
        return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _run_batch(self, batch: list[_Request]) -> None:
        group = batch[0].group
        payload = [(request.items, request.context) for request in batch]
        clip_count = sum(len(request.items) for request in batch)
        request_ids = [r.request_id for r in batch if r.request_id is not None]
        started = time.perf_counter()
        try:
            with trace(
                "serve.batch",
                group=group,
                requests=len(batch),
                clips=clip_count,
                request_ids=request_ids,
            ):
                # The span marks itself errored on the way out, so the
                # failure is visible in traces as well as in the log line.
                results = self.evaluate(group, payload)
            if len(results) != len(batch):
                raise ServeError(
                    f"batch function returned {len(results)} results "
                    f"for {len(batch)} requests"
                )
        except Exception as exc:  # forwarded to each submitting thread
            _log.error(
                "batch_failed",
                group=group,
                requests=len(batch),
                clips=clip_count,
                error_type=type(exc).__name__,
                error=str(exc),
                request_ids=request_ids,
            )
            for request in batch:
                request.finish(None, exc)
            return
        elapsed = time.perf_counter() - started
        if self.metrics is not None:
            self._m_batch_size.observe(clip_count)
            self._m_batch_seconds.observe(elapsed)
        for request, result in zip(batch, results):
            request.finish(result)
