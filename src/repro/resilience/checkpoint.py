"""Checkpoint/resume for multiple-kernel training.

Kernel training is the long pole of a ``repro train`` run, and kernels
are independent — so the natural checkpoint unit is one converged
cluster kernel.  A :class:`CheckpointStore` is a directory holding

- ``meta.json`` — the run *fingerprint* (a hash of the training set's
  geometry and the detector config) plus the expected kernel count, and
- ``kernel_NNNN.npz`` — one archive per completed kernel, written
  atomically (tmp file + ``os.replace``) as each kernel converges.

A killed run (SIGTERM, OOM, injected fault, stage deadline) leaves the
completed kernels on disk; ``repro train --resume`` reloads them and
trains only the remainder.  The fingerprint guards against resuming
against different data or config: a mismatch discards the stale
checkpoints and starts fresh (with a warning) rather than silently
mixing incompatible kernels.  A corrupt checkpoint file is likewise
skipped and retrained, not fatal.
"""

from __future__ import annotations

import io
import json
import os
import time
from hashlib import sha256
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.errors import CheckpointError
from repro.obs import get_logger

if TYPE_CHECKING:  # core <-> resilience cycle: core modules use faults/quarantine
    from repro.core.training import TrainedKernel

#: Bump on breaking checkpoint-layout changes.
CHECKPOINT_VERSION = 1

_log = get_logger("resilience.checkpoint")


def training_fingerprint(training, config) -> str:
    """Hash of everything that must match for checkpoints to be reusable.

    Covers the training set's geometry (via the observability
    fingerprint) and the detector configuration, minus execution-only
    knobs (``parallel``/``worker_count``/``backend`` — the same kernels
    fall out either way, so toggling parallelism must not invalidate a
    resume).
    """
    from repro.obs import config_summary, fingerprint_clipset

    summary = config_summary(config)
    for volatile in ("parallel", "worker_count", "backend"):
        summary.pop(volatile, None)
    blob = json.dumps(
        {"clips": fingerprint_clipset(training), "config": summary},
        sort_keys=True,
        default=str,
    )
    return sha256(blob.encode("utf-8")).hexdigest()


class CheckpointStore:
    """One directory of per-kernel training checkpoints."""

    META_NAME = "meta.json"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    def _meta_path(self) -> Path:
        return self.directory / self.META_NAME

    def _kernel_path(self, index: int) -> Path:
        return self.directory / f"kernel_{index:04d}.npz"

    def _read_meta(self) -> Optional[dict]:
        try:
            return json.loads(self._meta_path().read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            _log.warning("checkpoint_meta_unreadable", path=str(self._meta_path()), error=str(exc))
            return None

    # ------------------------------------------------------------------
    def begin(self, fingerprint: str, kernels: int, resume: bool = True) -> dict[int, TrainedKernel]:
        """Prepare the store for a run; return resumable kernels by index.

        With ``resume`` and a matching fingerprint, previously completed
        kernels are loaded and returned; otherwise the store is cleared
        and an empty mapping comes back.  Always (re)writes ``meta.json``
        so a run killed before its first kernel still leaves a coherent
        store.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {self.directory}: {exc}"
            ) from exc
        meta = self._read_meta()
        compatible = (
            meta is not None
            and meta.get("version") == CHECKPOINT_VERSION
            and meta.get("fingerprint") == fingerprint
            and meta.get("kernels") == kernels
        )
        loaded: dict[int, TrainedKernel] = {}
        if compatible and resume:
            loaded = self._load_kernels(kernels)
        else:
            if meta is not None and resume:
                _log.warning(
                    "checkpoint_fingerprint_mismatch",
                    directory=str(self.directory),
                    expected=fingerprint[:16],
                    found=str(meta.get("fingerprint"))[:16],
                )
            self._clear_kernels()
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "kernels": kernels,
            "created_unix": time.time(),
        }
        try:
            self._meta_path().write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
        except OSError as exc:
            raise CheckpointError(f"cannot write checkpoint meta: {exc}") from exc
        return loaded

    # ------------------------------------------------------------------
    def save_kernel(self, index: int, kernel: "TrainedKernel") -> None:
        """Atomically persist one completed kernel."""
        from repro.core.persist import encode_trained_kernel

        arrays: dict = {}
        meta = encode_trained_kernel(kernel, arrays, "k")
        meta["index"] = index
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ).copy()
        path = self._kernel_path(index)
        tmp = path.with_suffix(".npz.tmp")
        try:
            buffer = io.BytesIO()
            np.savez_compressed(buffer, **arrays)
            tmp.write_bytes(buffer.getvalue())
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc

    def _load_kernels(self, kernels: int) -> "dict[int, TrainedKernel]":
        from repro.core.persist import decode_trained_kernel

        loaded: dict = {}
        for path in sorted(self.directory.glob("kernel_*.npz")):
            try:
                with np.load(path) as archive:
                    arrays = {name: archive[name] for name in archive.files}
                meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
                index = int(meta["index"])
                if not 0 <= index < kernels:
                    raise ValueError(f"kernel index {index} out of range")
                loaded[index] = decode_trained_kernel(meta, arrays, "k")
            except (OSError, KeyError, ValueError) as exc:
                # A torn write (crash mid-save) must cost one kernel's
                # retraining, never the whole resume.
                _log.warning(
                    "checkpoint_kernel_unreadable", path=str(path), error=str(exc)
                )
        return loaded

    def completed_indices(self) -> list[int]:
        """Indices that already have a checkpoint file on disk."""
        out = []
        for path in sorted(self.directory.glob("kernel_*.npz")):
            try:
                out.append(int(path.stem.split("_")[1]))
            except (IndexError, ValueError):
                continue
        return out

    # ------------------------------------------------------------------
    def _clear_kernels(self) -> None:
        for path in self.directory.glob("kernel_*.npz"):
            path.unlink(missing_ok=True)
        for path in self.directory.glob("kernel_*.npz.tmp"):
            path.unlink(missing_ok=True)

    def clear(self) -> None:
        """Remove every checkpoint artifact (after a successful run)."""
        if not self.directory.exists():
            return
        self._clear_kernels()
        self._meta_path().unlink(missing_ok=True)
        try:
            self.directory.rmdir()
        except OSError:
            pass  # directory holds unrelated files; leave it
