"""repro.resilience — fault tolerance for the hotspot pipeline.

Stdlib-only building blocks, wired through core, IO and serving:

- typed failures (:class:`~repro.errors.InputError`,
  :class:`~repro.errors.TransientError`,
  :class:`~repro.errors.StageTimeout`,
  :class:`~repro.errors.CheckpointError`,
  :class:`~repro.errors.CircuitOpenError`) re-exported here;
- :func:`~repro.resilience.retry.call_with_retry` /
  :class:`~repro.resilience.retry.RetryPolicy` /
  :class:`~repro.resilience.retry.Deadline` — exponential backoff with
  deterministic jitter and per-stage deadlines;
- :class:`~repro.resilience.checkpoint.CheckpointStore` — per-cluster
  kernel checkpoints behind ``repro train --resume``;
- :class:`~repro.resilience.quarantine.QuarantineReport` — skip, count
  and report malformed inputs instead of crashing;
- :class:`~repro.resilience.breaker.CircuitBreaker` — per-model load
  shedding in the serving path;
- :mod:`~repro.resilience.faults` — seeded, deterministic fault
  injection (``REPRO_FAULTS``) for the test suite and CI chaos job;
- :mod:`~repro.resilience.drill` — :class:`~repro.resilience.drill.ChaosDrill`:
  seeded multi-process fleet drills (``repro chaos``) that kill and
  partition nodes on a schedule, then assert bit-identical output.

See ``docs/RESILIENCE.md`` for the full tour.
"""

from repro.errors import (
    CheckpointError,
    CircuitOpenError,
    InputError,
    StageTimeout,
    TransientError,
)

from . import faults
from .breaker import BreakerConfig, CircuitBreaker
from .drill import ChaosDrill, DrillAction, DrillReport, DrillSchedule
from .checkpoint import CheckpointStore, training_fingerprint
from .quarantine import QuarantineItem, QuarantineReport
from .retry import IO_RETRY, Deadline, RetryPolicy, RetryState, call_with_retry

__all__ = [
    "BreakerConfig",
    "ChaosDrill",
    "CheckpointError",
    "CheckpointStore",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DrillAction",
    "DrillReport",
    "DrillSchedule",
    "IO_RETRY",
    "InputError",
    "QuarantineItem",
    "QuarantineReport",
    "RetryPolicy",
    "RetryState",
    "StageTimeout",
    "TransientError",
    "call_with_retry",
    "faults",
    "training_fingerprint",
]
