"""Deterministic chaos drills for the fleet: kill, partition, verify.

A drill runs a real multi-process fleet topology — a primary
coordinator, an optional warm standby and N workers, all spawned as
``repro`` subprocesses — then executes a **seeded schedule** of
disruptions against it on a reproducible timeline and finally asserts
the property every other fleet test leans on: the merged hotspot set,
funnel counts and margins are **bit-identical** to a quiet single-node
scan of the same layout.

The schedule DSL is deliberately tiny.  Entries are separated by
newlines or ``;``; ``#`` starts a comment::

    seed 42
    at 0 faults worker-0 fleet.lease=kill:1.0@1!1
    at 1.5 kill primary
    at 6.0 cont primary        # no-op here; primary is dead

- ``seed N`` — seeds any ``faults`` plans that do not carry their own
  (the same schedule injects the same faults run after run).
- ``at T kill <role>`` — SIGKILL the role's process at T seconds.
- ``at T stop <role>`` / ``at T cont <role>`` — SIGSTOP / SIGCONT: a
  stopped coordinator is the *zombie primary* (alive but frozen, later
  resumed to test the stale-epoch fence), a stopped worker a network
  partition of that node, a stopped cache node a flapping member of the
  warm tier (its half-open probe re-admits it after ``cont``).
- ``at T promote standby`` — force promotion via ``POST
  /fleet/v1/promote`` without waiting for missed probes.
- ``at T add cache-K`` — spawn a brand-new cache node mid-drill; it
  announces itself to the coordinator (``repro fleet-cache --join``),
  which piggybacks the new ring membership on the next lease responses.
- ``at 0 faults <role> <REPRO_FAULTS spec>`` — install a fault plan in
  that role's environment at spawn time (``at`` must be 0; fault
  *firing* times are governed by the plan's own counters, which is what
  keeps them deterministic while wall-clock actions are best-effort).

Roles are ``primary``, ``standby``, ``worker-0`` .. ``worker-N`` and —
when the drill carries a cache tier — ``cache-0`` .. ``cache-K``
(:class:`ServeFleetDrill` adds ``frontend`` and ``replica-N``).  Action
timestamps are wall-clock best effort — the bit-identity assertion at
the end is what makes the drill deterministic, not the exact
millisecond a SIGKILL lands.

:class:`ChaosDrill` optionally runs a **long-running session**:
``scans=N`` re-runs the same fleet scan N times against the surviving
cache tier (fresh coordinator + workers each time, cache nodes
persist), so scan 2 measures the warm-rescan remote hit rate the drill
asserts on.  :class:`ServeFleetDrill` drives a predict front end over
churning serve replicas instead of a scan.

Everything heavier than the stdlib is imported lazily inside methods:
:mod:`repro.fleet` imports :mod:`repro.resilience` (fault points), so
this module must not complete the cycle at import time.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import InputError
from repro.obs import get_logger

_log = get_logger("resilience.drill")

VERBS = ("kill", "stop", "cont", "promote", "add", "faults")
ROLES = ("primary", "standby", "frontend")  # plus worker-/cache-/replica-<n>

#: Role-name prefixes of the numbered process families.
ROLE_PREFIXES = ("worker-", "cache-", "replica-")

#: Hard ceiling on one drill's wall clock; a wedged topology is killed
#: and reported as failed rather than hanging CI.
DEFAULT_DEADLINE_S = 240.0


@dataclass
class DrillAction:
    """One scheduled disruption."""

    at_s: float
    verb: str
    target: str
    arg: str = ""

    def label(self) -> str:
        suffix = f" {self.arg}" if self.arg else ""
        return f"at {self.at_s:g} {self.verb} {self.target}{suffix}"


@dataclass
class DrillSchedule:
    """A parsed, validated drill schedule."""

    seed: int = 42
    actions: list[DrillAction] = field(default_factory=list)

    @classmethod
    def parse(cls, spec: str) -> "DrillSchedule":
        schedule = cls()
        entries = [
            chunk.strip()
            for line in spec.splitlines()
            for chunk in line.split(";")
        ]
        for entry in entries:
            entry = entry.partition("#")[0].strip()
            if not entry:
                continue
            words = entry.split()
            if words[0] == "seed":
                if len(words) != 2:
                    raise InputError(f"bad schedule entry {entry!r}")
                schedule.seed = int(words[1])
                continue
            if words[0] != "at" or len(words) < 4:
                raise InputError(
                    f"bad schedule entry {entry!r} "
                    "(want 'seed N' or 'at T verb target [arg]')"
                )
            at_s = float(words[1])
            verb, target = words[2], words[3]
            arg = " ".join(words[4:])
            if verb not in VERBS:
                raise InputError(f"unknown drill verb {verb!r} in {entry!r}")
            if target not in ROLES and not target.startswith(ROLE_PREFIXES):
                raise InputError(f"unknown drill target {target!r}")
            if verb == "promote" and target != "standby":
                raise InputError("promote only targets the standby")
            if verb == "add" and not target.startswith("cache-"):
                raise InputError("add only targets cache-<n> nodes")
            if verb == "faults":
                if at_s != 0:
                    raise InputError(
                        f"faults plans are installed at spawn; {entry!r} "
                        "must use 'at 0'"
                    )
                if not arg:
                    raise InputError(f"faults entry {entry!r} needs a plan")
            schedule.actions.append(DrillAction(at_s, verb, target, arg))
        schedule.actions.sort(key=lambda action: action.at_s)
        return schedule

    def spawn_faults(self, target: str) -> Optional[str]:
        """The ``REPRO_FAULTS`` plan for one role, seed-prefixed."""
        plans = [
            action.arg
            for action in self.actions
            if action.verb == "faults" and action.target == target
        ]
        if not plans:
            return None
        plan = ";".join(plans)
        if "seed=" not in plan:
            plan = f"seed={self.seed};{plan}"
        return plan


@dataclass
class DrillReport:
    """What one drill did and whether the invariant held."""

    identical: bool = False
    promoted: bool = False
    leader: str = ""
    leader_epoch: int = 0
    shards: int = 0
    completed: int = 0
    stale_epoch_fenced: int = 0
    wall_s: float = 0.0
    reference_reports: int = 0
    drill_reports: int = 0
    error: str = ""
    timeline: list[dict] = field(default_factory=list)
    artifacts: dict = field(default_factory=dict)
    #: Cache-tier churn coverage (empty when the drill has no cache).
    cache_nodes: list[str] = field(default_factory=list)
    scans_completed: int = 0
    scan_cache: list[dict] = field(default_factory=list)
    warm_hit_rate: Optional[float] = None
    remote_corrupt: int = 0

    def to_dict(self) -> dict:
        return {
            "identical": self.identical,
            "promoted": self.promoted,
            "leader": self.leader,
            "leader_epoch": self.leader_epoch,
            "shards": self.shards,
            "completed": self.completed,
            "stale_epoch_fenced": self.stale_epoch_fenced,
            "wall_s": round(self.wall_s, 3),
            "reference_reports": self.reference_reports,
            "drill_reports": self.drill_reports,
            "error": self.error,
            "timeline": self.timeline,
            "artifacts": self.artifacts,
            "cache_nodes": self.cache_nodes,
            "scans_completed": self.scans_completed,
            "scan_cache": self.scan_cache,
            "warm_hit_rate": self.warm_hit_rate,
            "remote_corrupt": self.remote_corrupt,
        }


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class ChaosDrill:
    """Run one fleet topology under a :class:`DrillSchedule`."""

    def __init__(
        self,
        model_path: Path,
        layout_path: Path,
        schedule: DrillSchedule,
        layer: int = 1,
        workers: int = 2,
        standby: bool = True,
        lease_ttl_s: float = 2.0,
        probe_interval_s: float = 0.3,
        shard_side: Optional[int] = None,
        workdir: Optional[Path] = None,
        trace: bool = False,
        deadline_s: float = DEFAULT_DEADLINE_S,
        cache_nodes: int = 0,
        scans: int = 1,
    ) -> None:
        self.model_path = Path(model_path)
        self.layout_path = Path(layout_path)
        self.schedule = schedule
        self.layer = layer
        self.workers = max(1, workers)
        self.standby = standby
        self.lease_ttl_s = lease_ttl_s
        self.probe_interval_s = probe_interval_s
        self.shard_side = shard_side
        self.workdir = Path(workdir) if workdir else self.layout_path.parent
        self.trace = trace
        self.deadline_s = deadline_s
        self.cache_nodes = max(0, cache_nodes)
        self.scans = max(1, scans)
        self._procs: dict[str, subprocess.Popen] = {}
        self._stopped: set[str] = set()
        self._urls: dict[str, str] = {}
        self._cache_urls: list[str] = []
        self._endpoints: list[str] = []

    # ------------------------------------------------------------------
    def run(self) -> DrillReport:
        from repro.cli import load_detector, load_layout_auto

        report = DrillReport()
        detector = load_detector(self.model_path)
        layout = load_layout_auto(self.layout_path)
        reference = detector.detect(layout, layer=self.layer)
        report.reference_reports = reference.report_count
        started = time.perf_counter()
        pending = list(self.schedule.actions)
        try:
            self._launch_cache_tier(report)
            for scan_index in range(self.scans):
                if scan_index:
                    self._teardown_scan()
                self._launch(report, scan_index)
                leader = self._drive(report, started, pending)
                self._settle(leader)
                self._compare(
                    report, detector, layout, reference, leader, scan_index
                )
                report.scans_completed = scan_index + 1
                if not report.identical:
                    break  # a diverged scan fails the whole session
            if len(report.scan_cache) >= 2:
                report.warm_hit_rate = float(
                    report.scan_cache[-1].get("hit_rate", 0.0)
                )
        except Exception as exc:  # a failed drill is a report, not a crash
            report.error = f"{type(exc).__name__}: {exc}"
            report.identical = False
            _log.error("drill_failed", error=report.error)
        finally:
            self._cleanup()
            report.wall_s = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def _journal_dir(self, role: str, scan_index: int = 0) -> Path:
        suffix = f"-s{scan_index}" if scan_index else ""
        return self.workdir / f"drill-journal-{role}{suffix}"

    def _wait_healthy(self, url: str, what: str, timeout_s: float = 30.0) -> None:
        from repro.fleet.protocol import FleetClient, wait_until

        def _up() -> bool:
            try:
                code, _ = FleetClient(url, timeout=1.0).get_json("/healthz")
            except Exception:
                return False
            return code == 200

        if not wait_until(_up, timeout_s=timeout_s, interval_s=0.1):
            raise InputError(f"{what} never became healthy at {url}")

    def _spawn_cache(self, role: str, join: bool) -> str:
        port = _free_port()
        url = f"http://127.0.0.1:{port}"
        args = ["fleet-cache", "--port", str(port)]
        if join and self._endpoints:
            args += [
                "--join", ",".join(self._endpoints),
                "--advertise", url,
            ]
        self._spawn(role, args, role)
        self._urls[role] = url
        self._cache_urls.append(url)
        return url

    def _launch_cache_tier(self, report: DrillReport) -> None:
        if not self.cache_nodes:
            return
        self.workdir.mkdir(parents=True, exist_ok=True)
        for index in range(self.cache_nodes):
            self._spawn_cache(f"cache-{index}", join=False)
        for index in range(self.cache_nodes):
            role = f"cache-{index}"
            self._wait_healthy(self._urls[role], f"cache node {role}")
        report.cache_nodes = list(self._cache_urls)

    def _spawn(self, role: str, command: list, log_name: str) -> None:
        env = dict(os.environ)
        env.pop("REPRO_FAULTS", None)
        plan = self.schedule.spawn_faults(role)
        if plan is not None:
            env["REPRO_FAULTS"] = plan
        log_path = self.workdir / f"drill-{log_name}.log"
        stream = open(log_path, "w")
        self._procs[role] = subprocess.Popen(
            [sys.executable, "-m", "repro", *command],
            env=env,
            stdout=stream,
            stderr=subprocess.STDOUT,
        )

    def _launch(self, report: DrillReport, scan_index: int = 0) -> None:
        self.workdir.mkdir(parents=True, exist_ok=True)
        ports = {"primary": _free_port(), "standby": _free_port()}
        suffix = f"-s{scan_index}" if scan_index else ""
        self._urls["primary"] = f"http://127.0.0.1:{ports['primary']}"
        coordinator_args = [
            "--model", str(self.model_path),
            "--layout", str(self.layout_path),
            "--layer", str(self.layer),
            "--lease-ttl", str(self.lease_ttl_s),
        ]
        if self.shard_side is not None:
            coordinator_args += ["--shard-side", str(self.shard_side)]
        for url in self._cache_urls:
            coordinator_args += ["--cache-url", url]
        primary_args = [
            "fleet-coordinator", *coordinator_args,
            "--port", str(ports["primary"]),
            "--journal-dir", str(self._journal_dir("primary", scan_index)),
        ]
        if self.trace:
            trace_path = self.workdir / f"drill-trace-primary{suffix}.json"
            primary_args += ["--trace", str(trace_path)]
            report.artifacts[f"trace_primary{suffix}"] = str(trace_path)
        self._spawn("primary", primary_args, f"primary{suffix}")
        self._wait_healthy(self._urls["primary"], "primary coordinator")

        endpoints = [self._urls["primary"]]
        if self.standby:
            self._urls["standby"] = f"http://127.0.0.1:{ports['standby']}"
            standby_args = [
                "fleet-coordinator", *coordinator_args,
                "--port", str(ports["standby"]),
                "--journal-dir", str(self._journal_dir("standby", scan_index)),
                "--standby-of", self._urls["primary"],
                "--probe-interval", str(self.probe_interval_s),
            ]
            if self.trace:
                trace_path = self.workdir / f"drill-trace-standby{suffix}.json"
                standby_args += ["--trace", str(trace_path)]
                report.artifacts[f"trace_standby{suffix}"] = str(trace_path)
            self._spawn("standby", standby_args, f"standby{suffix}")
            endpoints.append(self._urls["standby"])
        self._endpoints = endpoints

        for index in range(self.workers):
            role = f"worker-{index}"
            self._spawn(
                role,
                [
                    "fleet-worker",
                    "--url", ",".join(endpoints),
                    "--model", str(self.model_path),
                    "--layout", str(self.layout_path),
                    "--worker-id", f"drill-{role}",
                ],
                f"{role}{suffix}",
            )

    # ------------------------------------------------------------------
    # timeline + completion
    # ------------------------------------------------------------------
    def _execute(self, action: DrillAction, report: DrillReport, t: float) -> None:
        from repro.fleet.protocol import FleetClient

        detail = ""
        if action.verb == "faults":
            detail = "installed at spawn"
        elif action.verb == "add":
            proc = self._procs.get(action.target)
            if proc is not None and proc.poll() is None:
                detail = "already running"
            else:
                url = self._spawn_cache(action.target, join=True)
                report.cache_nodes.append(url)
                detail = f"cache node joining at {url}"
        elif action.verb == "promote":
            url = self._urls.get("standby")
            if url is None:
                detail = "no standby in this drill"
            else:
                try:
                    code, answer = FleetClient(url, timeout=5.0).post_json(
                        "/fleet/v1/promote", {}
                    )
                    detail = f"HTTP {code}: {answer.get('status')}"
                except Exception as exc:
                    detail = f"failed: {exc}"
        else:
            proc = self._procs.get(action.target)
            if proc is None or proc.poll() is not None:
                detail = "process already gone"
            elif action.verb == "kill":
                proc.kill()
                detail = f"SIGKILL pid {proc.pid}"
            elif action.verb == "stop":
                proc.send_signal(signal.SIGSTOP)
                self._stopped.add(action.target)
                detail = f"SIGSTOP pid {proc.pid}"
            elif action.verb == "cont":
                proc.send_signal(signal.SIGCONT)
                self._stopped.discard(action.target)
                detail = f"SIGCONT pid {proc.pid}"
        entry = {
            "t_s": round(t, 3),
            "action": action.label(),
            "detail": detail,
        }
        report.timeline.append(entry)
        _log.info("drill_action", **entry)

    def _poll_roles(self) -> dict:
        """Healthz of each reachable coordinator, keyed by spawn role."""
        from repro.fleet.protocol import FleetClient

        healths = {}
        for role in ("primary", "standby"):
            url = self._urls.get(role)
            if url is None:
                continue
            try:
                code, health = FleetClient(url, timeout=1.0).get_json("/healthz")
            except Exception:
                continue
            if code == 200:
                healths[role] = health
        return healths

    def _drive(
        self, report: DrillReport, started: float,
        pending: Optional[list] = None,
    ) -> str:
        """Execute the timeline while polling for a finished leader.

        ``pending`` is shared across the scans of a multi-scan session:
        the timeline clock keeps running, so an action at t=30s can land
        inside scan 2.
        """
        if pending is None:
            pending = list(self.schedule.actions)
        deadline = started + self.deadline_s
        leader = ""
        while time.perf_counter() < deadline:
            now = time.perf_counter() - started
            while pending and pending[0].at_s <= now:
                self._execute(pending.pop(0), report, now)
            healths = self._poll_roles()
            # Latch any observed promotion — a transiently-dead primary
            # (SIGSTOP) may resume and finish first, but the promotion
            # still happened and the report must say so.
            if healths.get("standby", {}).get("role") == "primary":
                report.promoted = True
            for role, health in healths.items():
                if health.get("role") != "primary":
                    continue
                leader = leader or role
                if health.get("done"):
                    report.leader = role
                    report.leader_epoch = int(health.get("epoch", 0))
                    self._final_status(report, role)
                    return role
            time.sleep(0.2)
        raise InputError(
            f"drill deadline ({self.deadline_s:.0f}s) expired; last "
            f"reachable leader: {leader or 'none'}"
        )

    def _final_status(self, report: DrillReport, leader: str) -> None:
        from repro.fleet.protocol import FleetClient

        try:
            code, status = FleetClient(
                self._urls[leader], timeout=2.0
            ).get_json("/fleet/v1/status")
        except Exception:
            return
        if code == 200:
            report.stale_epoch_fenced = int(
                status.get("stale_epoch_fenced", 0)
            )
            cache = status.get("cache")
            if isinstance(cache, dict) and self._cache_urls:
                report.scan_cache.append(cache)
                report.remote_corrupt += int(cache.get("remote_corrupt", 0))

    def _settle(self, leader: str) -> None:
        """Let workers drain and the leader write its trace, then stop."""
        for role, proc in self._procs.items():
            if role.startswith("worker-") and role not in self._stopped:
                try:
                    proc.wait(timeout=15.0)
                except subprocess.TimeoutExpired:
                    pass
        # The leader lingers after done (writing its merged trace);
        # give it that window before the cleanup sweep terminates it.
        proc = self._procs.get(leader)
        if proc is not None:
            try:
                proc.wait(timeout=20.0)
            except subprocess.TimeoutExpired:
                pass

    def _teardown_scan(self) -> None:
        """Stop the coordinators/workers of one scan; cache nodes persist."""
        scan_roles = [
            role for role in self._procs if not role.startswith("cache-")
        ]
        for role in scan_roles:
            proc = self._procs[role]
            if role in self._stopped and proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGCONT)
                except OSError:
                    pass
                self._stopped.discard(role)
            if proc.poll() is None:
                proc.terminate()
        for role in scan_roles:
            proc = self._procs.pop(role)
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
            self._urls.pop(role, None)

    def _cleanup(self) -> None:
        for role in list(self._stopped):
            proc = self._procs.get(role)
            if proc is not None and proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGCONT)
                except OSError:
                    pass
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _compare(
        self, report: DrillReport, detector, layout, reference, leader: str,
        scan_index: int = 0,
    ) -> None:
        import numpy as np

        from repro.fleet import FleetCoordinator, FleetOptions

        journal_dir = self._journal_dir(leader, scan_index)
        merger = FleetCoordinator(
            detector,
            layout,
            layer=self.layer,
            options=FleetOptions(
                journal_dir=journal_dir,
                resume=True,
                shard_side=self.shard_side,
            ),
        )
        report.shards = len(merger.shards)
        report.completed = len(merger._completed)
        scan = merger.result()
        drill_result = detector.detect(layout, layer=self.layer, scan=scan)
        report.drill_reports = drill_result.report_count

        def _signature(result):
            cores = tuple(
                (clip.core.x0, clip.core.y0, clip.core.x1, clip.core.y1)
                for clip in result.reports
            )
            extraction = result.extraction
            funnel = (
                extraction.anchor_count,
                extraction.rejected_density,
                extraction.rejected_count,
                extraction.rejected_boundary,
                len(extraction.clips),
            )
            return cores, funnel, detector.margins(extraction.clips)

        left = _signature(reference)
        right = _signature(drill_result)
        report.identical = (
            left[0] == right[0]
            and left[1] == right[1]
            and np.array_equal(left[2], right[2])
        )
        if not report.identical:
            report.error = (
                f"drill output diverged: reports {len(right[0])} vs "
                f"{len(left[0])}, funnel {right[1]} vs {left[1]}"
            )


class ServeFleetDrill(ChaosDrill):
    """Long-running serve drill: predict through churn, answers identical.

    Spawns a ``fleet-frontend`` plus N ``repro serve`` replicas that
    self-register with it, then fires a stream of ``/v1/predict``
    requests while the schedule kills/stops/resumes ``replica-<n>``
    processes (and, if it dares, the ``frontend``).  The invariant is
    the serving version of bit-identity: every answered request returns
    exactly the margins the local detector computes for the same clips,
    no matter which replica happened to serve it or how many died along
    the way.
    """

    #: Transport retries per request before the drill declares an outage.
    REQUEST_ATTEMPTS = 8

    def __init__(
        self,
        model_path: Path,
        layout_path: Path,
        schedule: DrillSchedule,
        replicas: int = 2,
        requests: int = 40,
        layer: int = 1,
        workdir: Optional[Path] = None,
        deadline_s: float = DEFAULT_DEADLINE_S,
    ) -> None:
        super().__init__(
            model_path,
            layout_path,
            schedule,
            layer=layer,
            workers=1,
            standby=False,
            workdir=workdir,
            deadline_s=deadline_s,
        )
        self.replicas = max(1, replicas)
        self.requests = max(1, requests)

    # ------------------------------------------------------------------
    def run(self) -> DrillReport:
        from repro.cli import load_detector, load_layout_auto
        from repro.serve.protocol import encode_clip

        report = DrillReport()
        started = time.perf_counter()
        try:
            detector = load_detector(self.model_path)
            layout = load_layout_auto(self.layout_path)
            result = detector.detect(layout, layer=self.layer)
            report.reference_reports = result.report_count
            clips = list(result.extraction.clips)[:4]
            if not clips:
                raise InputError(
                    "layout yields no clips for the serve drill; use a "
                    "layout with at least one extracted clip"
                )
            payload = {"clips": [encode_clip(clip) for clip in clips]}
            expected = [float(m) for m in detector.margins(clips)]
            self._launch_serve(report)
            self._drive_predicts(report, payload, expected, started)
        except Exception as exc:  # a failed drill is a report, not a crash
            report.error = f"{type(exc).__name__}: {exc}"
            report.identical = False
            _log.error("serve_drill_failed", error=report.error)
        finally:
            self._cleanup()
            report.wall_s = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _launch_serve(self, report: DrillReport) -> None:
        self.workdir.mkdir(parents=True, exist_ok=True)
        port = _free_port()
        frontend_url = f"http://127.0.0.1:{port}"
        self._urls["frontend"] = frontend_url
        self._spawn("frontend", ["fleet-frontend", "--port", str(port)], "frontend")
        for index in range(self.replicas):
            role = f"replica-{index}"
            replica_port = _free_port()
            self._urls[role] = f"http://127.0.0.1:{replica_port}"
            self._spawn(
                role,
                [
                    "serve",
                    "--model", str(self.model_path),
                    "--port", str(replica_port),
                    "--frontend", frontend_url,
                ],
                role,
            )
        for index in range(self.replicas):
            role = f"replica-{index}"
            self._wait_healthy(self._urls[role], f"serve replica {role}")
        # The frontend reports healthy only once >= 1 replica registered.
        self._wait_healthy(frontend_url, "serve frontend")
        report.leader = "frontend"

    # ------------------------------------------------------------------
    def _drive_predicts(
        self,
        report: DrillReport,
        payload: dict,
        expected: list,
        started: float,
    ) -> None:
        from repro.fleet.protocol import FleetClient

        pending = list(self.schedule.actions)
        deadline = started + self.deadline_s
        frontend = self._urls["frontend"]
        answered = 0
        attempts_total = 0
        retried = 0
        for number in range(self.requests):
            now = time.perf_counter() - started
            while pending and pending[0].at_s <= now:
                self._execute(pending.pop(0), report, now)
            document = None
            for attempt in range(self.REQUEST_ATTEMPTS):
                if time.perf_counter() > deadline:
                    raise InputError(
                        f"serve drill deadline ({self.deadline_s:.0f}s) "
                        f"expired at request {number}"
                    )
                attempts_total += 1
                if attempt:
                    retried += 1
                try:
                    code, answer = FleetClient(frontend, timeout=10.0).post_json(
                        "/v1/predict", payload
                    )
                except Exception:
                    code, answer = 0, None
                if code == 200 and isinstance(answer, dict):
                    document = answer
                    break
                time.sleep(0.3)
            if document is None:
                report.error = (
                    f"request {number} failed after "
                    f"{self.REQUEST_ATTEMPTS} attempts"
                )
                report.identical = False
                break
            answered += 1
            margins = [float(m) for m in document.get("margins", [])]
            if margins != expected:
                report.error = (
                    f"request {number} diverged from the local reference: "
                    f"{margins} vs {expected}"
                )
                report.identical = False
                break
        else:
            report.identical = True
        report.completed = answered
        report.drill_reports = report.reference_reports
        report.artifacts["serve"] = {
            "requests": self.requests,
            "answered": answered,
            "attempts": attempts_total,
            "retried": retried,
            "replicas": self.replicas,
        }
