"""Deterministic chaos drills for the fleet: kill, partition, verify.

A drill runs a real multi-process fleet topology — a primary
coordinator, an optional warm standby and N workers, all spawned as
``repro`` subprocesses — then executes a **seeded schedule** of
disruptions against it on a reproducible timeline and finally asserts
the property every other fleet test leans on: the merged hotspot set,
funnel counts and margins are **bit-identical** to a quiet single-node
scan of the same layout.

The schedule DSL is deliberately tiny.  Entries are separated by
newlines or ``;``; ``#`` starts a comment::

    seed 42
    at 0 faults worker-0 fleet.lease=kill:1.0@1!1
    at 1.5 kill primary
    at 6.0 cont primary        # no-op here; primary is dead

- ``seed N`` — seeds any ``faults`` plans that do not carry their own
  (the same schedule injects the same faults run after run).
- ``at T kill <role>`` — SIGKILL the role's process at T seconds.
- ``at T stop <role>`` / ``at T cont <role>`` — SIGSTOP / SIGCONT: a
  stopped coordinator is the *zombie primary* (alive but frozen, later
  resumed to test the stale-epoch fence), a stopped worker a network
  partition of that node.
- ``at T promote standby`` — force promotion via ``POST
  /fleet/v1/promote`` without waiting for missed probes.
- ``at 0 faults <role> <REPRO_FAULTS spec>`` — install a fault plan in
  that role's environment at spawn time (``at`` must be 0; fault
  *firing* times are governed by the plan's own counters, which is what
  keeps them deterministic while wall-clock actions are best-effort).

Roles are ``primary``, ``standby`` and ``worker-0`` .. ``worker-N``.
Action timestamps are wall-clock best effort — the bit-identity
assertion at the end is what makes the drill deterministic, not the
exact millisecond a SIGKILL lands.

Everything heavier than the stdlib is imported lazily inside methods:
:mod:`repro.fleet` imports :mod:`repro.resilience` (fault points), so
this module must not complete the cycle at import time.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import InputError
from repro.obs import get_logger

_log = get_logger("resilience.drill")

VERBS = ("kill", "stop", "cont", "promote", "faults")
ROLES = ("primary", "standby")  # plus worker-<n>

#: Hard ceiling on one drill's wall clock; a wedged topology is killed
#: and reported as failed rather than hanging CI.
DEFAULT_DEADLINE_S = 240.0


@dataclass
class DrillAction:
    """One scheduled disruption."""

    at_s: float
    verb: str
    target: str
    arg: str = ""

    def label(self) -> str:
        suffix = f" {self.arg}" if self.arg else ""
        return f"at {self.at_s:g} {self.verb} {self.target}{suffix}"


@dataclass
class DrillSchedule:
    """A parsed, validated drill schedule."""

    seed: int = 42
    actions: list[DrillAction] = field(default_factory=list)

    @classmethod
    def parse(cls, spec: str) -> "DrillSchedule":
        schedule = cls()
        entries = [
            chunk.strip()
            for line in spec.splitlines()
            for chunk in line.split(";")
        ]
        for entry in entries:
            entry = entry.partition("#")[0].strip()
            if not entry:
                continue
            words = entry.split()
            if words[0] == "seed":
                if len(words) != 2:
                    raise InputError(f"bad schedule entry {entry!r}")
                schedule.seed = int(words[1])
                continue
            if words[0] != "at" or len(words) < 4:
                raise InputError(
                    f"bad schedule entry {entry!r} "
                    "(want 'seed N' or 'at T verb target [arg]')"
                )
            at_s = float(words[1])
            verb, target = words[2], words[3]
            arg = " ".join(words[4:])
            if verb not in VERBS:
                raise InputError(f"unknown drill verb {verb!r} in {entry!r}")
            if target not in ROLES and not target.startswith("worker-"):
                raise InputError(f"unknown drill target {target!r}")
            if verb == "promote" and target != "standby":
                raise InputError("promote only targets the standby")
            if verb == "faults":
                if at_s != 0:
                    raise InputError(
                        f"faults plans are installed at spawn; {entry!r} "
                        "must use 'at 0'"
                    )
                if not arg:
                    raise InputError(f"faults entry {entry!r} needs a plan")
            schedule.actions.append(DrillAction(at_s, verb, target, arg))
        schedule.actions.sort(key=lambda action: action.at_s)
        return schedule

    def spawn_faults(self, target: str) -> Optional[str]:
        """The ``REPRO_FAULTS`` plan for one role, seed-prefixed."""
        plans = [
            action.arg
            for action in self.actions
            if action.verb == "faults" and action.target == target
        ]
        if not plans:
            return None
        plan = ";".join(plans)
        if "seed=" not in plan:
            plan = f"seed={self.seed};{plan}"
        return plan


@dataclass
class DrillReport:
    """What one drill did and whether the invariant held."""

    identical: bool = False
    promoted: bool = False
    leader: str = ""
    leader_epoch: int = 0
    shards: int = 0
    completed: int = 0
    stale_epoch_fenced: int = 0
    wall_s: float = 0.0
    reference_reports: int = 0
    drill_reports: int = 0
    error: str = ""
    timeline: list[dict] = field(default_factory=list)
    artifacts: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "identical": self.identical,
            "promoted": self.promoted,
            "leader": self.leader,
            "leader_epoch": self.leader_epoch,
            "shards": self.shards,
            "completed": self.completed,
            "stale_epoch_fenced": self.stale_epoch_fenced,
            "wall_s": round(self.wall_s, 3),
            "reference_reports": self.reference_reports,
            "drill_reports": self.drill_reports,
            "error": self.error,
            "timeline": self.timeline,
            "artifacts": self.artifacts,
        }


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class ChaosDrill:
    """Run one fleet topology under a :class:`DrillSchedule`."""

    def __init__(
        self,
        model_path: Path,
        layout_path: Path,
        schedule: DrillSchedule,
        layer: int = 1,
        workers: int = 2,
        standby: bool = True,
        lease_ttl_s: float = 2.0,
        probe_interval_s: float = 0.3,
        shard_side: Optional[int] = None,
        workdir: Optional[Path] = None,
        trace: bool = False,
        deadline_s: float = DEFAULT_DEADLINE_S,
    ) -> None:
        self.model_path = Path(model_path)
        self.layout_path = Path(layout_path)
        self.schedule = schedule
        self.layer = layer
        self.workers = max(1, workers)
        self.standby = standby
        self.lease_ttl_s = lease_ttl_s
        self.probe_interval_s = probe_interval_s
        self.shard_side = shard_side
        self.workdir = Path(workdir) if workdir else self.layout_path.parent
        self.trace = trace
        self.deadline_s = deadline_s
        self._procs: dict[str, subprocess.Popen] = {}
        self._stopped: set[str] = set()
        self._urls: dict[str, str] = {}

    # ------------------------------------------------------------------
    def run(self) -> DrillReport:
        from repro.cli import load_detector, load_layout_auto

        report = DrillReport()
        detector = load_detector(self.model_path)
        layout = load_layout_auto(self.layout_path)
        reference = detector.detect(layout, layer=self.layer)
        report.reference_reports = reference.report_count
        started = time.perf_counter()
        try:
            self._launch(report)
            leader = self._drive(report, started)
            self._settle(leader)
            self._compare(report, detector, layout, reference, leader)
        except Exception as exc:  # a failed drill is a report, not a crash
            report.error = f"{type(exc).__name__}: {exc}"
            _log.error("drill_failed", error=report.error)
        finally:
            self._cleanup()
            report.wall_s = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def _journal_dir(self, role: str) -> Path:
        return self.workdir / f"drill-journal-{role}"

    def _spawn(self, role: str, command: list, log_name: str) -> None:
        env = dict(os.environ)
        env.pop("REPRO_FAULTS", None)
        plan = self.schedule.spawn_faults(role)
        if plan is not None:
            env["REPRO_FAULTS"] = plan
        log_path = self.workdir / f"drill-{log_name}.log"
        stream = open(log_path, "w")
        self._procs[role] = subprocess.Popen(
            [sys.executable, "-m", "repro", *command],
            env=env,
            stdout=stream,
            stderr=subprocess.STDOUT,
        )

    def _launch(self, report: DrillReport) -> None:
        from repro.fleet.protocol import FleetClient, wait_until

        self.workdir.mkdir(parents=True, exist_ok=True)
        ports = {"primary": _free_port(), "standby": _free_port()}
        self._urls["primary"] = f"http://127.0.0.1:{ports['primary']}"
        coordinator_args = [
            "--model", str(self.model_path),
            "--layout", str(self.layout_path),
            "--layer", str(self.layer),
            "--lease-ttl", str(self.lease_ttl_s),
        ]
        if self.shard_side is not None:
            coordinator_args += ["--shard-side", str(self.shard_side)]
        primary_args = [
            "fleet-coordinator", *coordinator_args,
            "--port", str(ports["primary"]),
            "--journal-dir", str(self._journal_dir("primary")),
        ]
        if self.trace:
            trace_path = self.workdir / "drill-trace-primary.json"
            primary_args += ["--trace", str(trace_path)]
            report.artifacts["trace_primary"] = str(trace_path)
        self._spawn("primary", primary_args, "primary")

        def _healthy() -> bool:
            try:
                code, _ = FleetClient(
                    self._urls["primary"], timeout=1.0
                ).get_json("/healthz")
            except Exception:
                return False
            return code == 200

        if not wait_until(_healthy, timeout_s=30.0, interval_s=0.1):
            raise InputError("primary coordinator never became healthy")

        endpoints = [self._urls["primary"]]
        if self.standby:
            self._urls["standby"] = f"http://127.0.0.1:{ports['standby']}"
            standby_args = [
                "fleet-coordinator", *coordinator_args,
                "--port", str(ports["standby"]),
                "--journal-dir", str(self._journal_dir("standby")),
                "--standby-of", self._urls["primary"],
                "--probe-interval", str(self.probe_interval_s),
            ]
            if self.trace:
                trace_path = self.workdir / "drill-trace-standby.json"
                standby_args += ["--trace", str(trace_path)]
                report.artifacts["trace_standby"] = str(trace_path)
            self._spawn("standby", standby_args, "standby")
            endpoints.append(self._urls["standby"])

        for index in range(self.workers):
            role = f"worker-{index}"
            self._spawn(
                role,
                [
                    "fleet-worker",
                    "--url", ",".join(endpoints),
                    "--model", str(self.model_path),
                    "--layout", str(self.layout_path),
                    "--worker-id", f"drill-{role}",
                ],
                role,
            )

    # ------------------------------------------------------------------
    # timeline + completion
    # ------------------------------------------------------------------
    def _execute(self, action: DrillAction, report: DrillReport, t: float) -> None:
        from repro.fleet.protocol import FleetClient

        detail = ""
        if action.verb == "faults":
            detail = "installed at spawn"
        elif action.verb == "promote":
            url = self._urls.get("standby")
            if url is None:
                detail = "no standby in this drill"
            else:
                try:
                    code, answer = FleetClient(url, timeout=5.0).post_json(
                        "/fleet/v1/promote", {}
                    )
                    detail = f"HTTP {code}: {answer.get('status')}"
                except Exception as exc:
                    detail = f"failed: {exc}"
        else:
            proc = self._procs.get(action.target)
            if proc is None or proc.poll() is not None:
                detail = "process already gone"
            elif action.verb == "kill":
                proc.kill()
                detail = f"SIGKILL pid {proc.pid}"
            elif action.verb == "stop":
                proc.send_signal(signal.SIGSTOP)
                self._stopped.add(action.target)
                detail = f"SIGSTOP pid {proc.pid}"
            elif action.verb == "cont":
                proc.send_signal(signal.SIGCONT)
                self._stopped.discard(action.target)
                detail = f"SIGCONT pid {proc.pid}"
        entry = {
            "t_s": round(t, 3),
            "action": action.label(),
            "detail": detail,
        }
        report.timeline.append(entry)
        _log.info("drill_action", **entry)

    def _poll_roles(self) -> dict:
        """Healthz of each reachable coordinator, keyed by spawn role."""
        from repro.fleet.protocol import FleetClient

        healths = {}
        for role in ("primary", "standby"):
            url = self._urls.get(role)
            if url is None:
                continue
            try:
                code, health = FleetClient(url, timeout=1.0).get_json("/healthz")
            except Exception:
                continue
            if code == 200:
                healths[role] = health
        return healths

    def _drive(self, report: DrillReport, started: float) -> str:
        """Execute the timeline while polling for a finished leader."""
        pending = list(self.schedule.actions)
        deadline = started + self.deadline_s
        leader = ""
        while time.perf_counter() < deadline:
            now = time.perf_counter() - started
            while pending and pending[0].at_s <= now:
                self._execute(pending.pop(0), report, now)
            healths = self._poll_roles()
            # Latch any observed promotion — a transiently-dead primary
            # (SIGSTOP) may resume and finish first, but the promotion
            # still happened and the report must say so.
            if healths.get("standby", {}).get("role") == "primary":
                report.promoted = True
            for role, health in healths.items():
                if health.get("role") != "primary":
                    continue
                leader = leader or role
                if health.get("done"):
                    report.leader = role
                    report.leader_epoch = int(health.get("epoch", 0))
                    self._final_status(report, role)
                    return role
            time.sleep(0.2)
        raise InputError(
            f"drill deadline ({self.deadline_s:.0f}s) expired; last "
            f"reachable leader: {leader or 'none'}"
        )

    def _final_status(self, report: DrillReport, leader: str) -> None:
        from repro.fleet.protocol import FleetClient

        try:
            code, status = FleetClient(
                self._urls[leader], timeout=2.0
            ).get_json("/fleet/v1/status")
        except Exception:
            return
        if code == 200:
            report.stale_epoch_fenced = int(
                status.get("stale_epoch_fenced", 0)
            )

    def _settle(self, leader: str) -> None:
        """Let workers drain and the leader write its trace, then stop."""
        for role, proc in self._procs.items():
            if role.startswith("worker-") and role not in self._stopped:
                try:
                    proc.wait(timeout=15.0)
                except subprocess.TimeoutExpired:
                    pass
        # The leader lingers after done (writing its merged trace);
        # give it that window before the cleanup sweep terminates it.
        proc = self._procs.get(leader)
        if proc is not None:
            try:
                proc.wait(timeout=20.0)
            except subprocess.TimeoutExpired:
                pass

    def _cleanup(self) -> None:
        for role in list(self._stopped):
            proc = self._procs.get(role)
            if proc is not None and proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGCONT)
                except OSError:
                    pass
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _compare(
        self, report: DrillReport, detector, layout, reference, leader: str
    ) -> None:
        import numpy as np

        from repro.fleet import FleetCoordinator, FleetOptions

        journal_dir = self._journal_dir(leader)
        merger = FleetCoordinator(
            detector,
            layout,
            layer=self.layer,
            options=FleetOptions(
                journal_dir=journal_dir,
                resume=True,
                shard_side=self.shard_side,
            ),
        )
        report.shards = len(merger.shards)
        report.completed = len(merger._completed)
        scan = merger.result()
        drill_result = detector.detect(layout, layer=self.layer, scan=scan)
        report.drill_reports = drill_result.report_count

        def _signature(result):
            cores = tuple(
                (clip.core.x0, clip.core.y0, clip.core.x1, clip.core.y1)
                for clip in result.reports
            )
            extraction = result.extraction
            funnel = (
                extraction.anchor_count,
                extraction.rejected_density,
                extraction.rejected_count,
                extraction.rejected_boundary,
                len(extraction.clips),
            )
            return cores, funnel, detector.margins(extraction.clips)

        left = _signature(reference)
        right = _signature(drill_result)
        report.identical = (
            left[0] == right[0]
            and left[1] == right[1]
            and np.array_equal(left[2], right[2])
        )
        if not report.identical:
            report.error = (
                f"drill output diverged: reports {len(right[0])} vs "
                f"{len(left[0])}, funnel {right[1]} vs {left[1]}"
            )
