"""Quarantine-not-crash: collect bad inputs instead of aborting.

Full-chip workloads routinely contain a few malformed records — a
truncated clip structure, a zero-area geometry, a corrupt OASIS record.
One bad item must not abort a multi-hour run, but it must not vanish
silently either.  A :class:`QuarantineReport` is the middle path: the
pipeline skips the item, the report counts it (by kind) and keeps a
bounded sample of details, and the run's manifest / ``/metrics`` expose
the totals.  ``repro scan --quarantine`` writes the report as JSON for
offline triage.

Thread-safe: extraction workers add items concurrently.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union


@dataclass
class QuarantineItem:
    """One skipped input: what it was, why, and where it came from."""

    kind: str
    reason: str
    source: Optional[str] = None
    context: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "reason": self.reason}
        if self.source:
            out["source"] = self.source
        if self.context:
            out["context"] = {k: str(v) for k, v in self.context.items()}
        return out


class QuarantineReport:
    """Counters plus a bounded sample of quarantined inputs."""

    #: Item details kept; counts keep increasing past this.
    MAX_ITEMS = 200

    def __init__(self, max_items: int = MAX_ITEMS) -> None:
        self._lock = threading.Lock()
        self._items: list[QuarantineItem] = []
        self._by_kind: dict[str, int] = {}
        self._total = 0
        self._max_items = max_items

    # ------------------------------------------------------------------
    def add(
        self,
        kind: str,
        reason: str,
        source: Optional[object] = None,
        **context,
    ) -> None:
        """Record one quarantined input."""
        with self._lock:
            self._total += 1
            self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
            if len(self._items) < self._max_items:
                self._items.append(
                    QuarantineItem(
                        kind=kind,
                        reason=reason,
                        source=None if source is None else str(source),
                        context=context,
                    )
                )

    def merge(self, other: "QuarantineReport") -> None:
        """Fold another report (e.g. a per-process one) into this one."""
        with other._lock:
            items = list(other._items)
            by_kind = dict(other._by_kind)
            total = other._total
        with self._lock:
            self._total += total
            for kind, count in by_kind.items():
                self._by_kind[kind] = self._by_kind.get(kind, 0) + count
            room = self._max_items - len(self._items)
            if room > 0:
                self._items.extend(items[:room])

    # ------------------------------------------------------------------
    # pickling: reports cross process boundaries (repro.work shard
    # results, shard-journal replay), and locks do not pickle.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        with self._lock:
            state = dict(self.__dict__)
            state["_items"] = list(self._items)
            state["_by_kind"] = dict(self._by_kind)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        with self._lock:
            return self._total

    def __len__(self) -> int:
        return self.total

    def __bool__(self) -> bool:
        return self.total > 0

    def counts_by_kind(self) -> dict:
        with self._lock:
            return dict(self._by_kind)

    def items(self) -> list[QuarantineItem]:
        with self._lock:
            return list(self._items)

    @classmethod
    def from_dict(cls, payload: dict) -> "QuarantineReport":
        """Rebuild a report from :meth:`to_dict` output (journal replay).

        Counters round-trip exactly; item details round-trip up to the
        sampling bound that was in force when the source was written.
        """
        report = cls()
        report._total = int(payload.get("total", 0))
        report._by_kind = {
            str(kind): int(count)
            for kind, count in dict(payload.get("by_kind", {})).items()
        }
        for item in payload.get("items", []):
            report._items.append(
                QuarantineItem(
                    kind=str(item.get("kind", "")),
                    reason=str(item.get("reason", "")),
                    source=item.get("source"),
                    context=dict(item.get("context", {})),
                )
            )
        return report

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "total": self._total,
                "by_kind": dict(self._by_kind),
                "items": [item.to_dict() for item in self._items],
                "truncated": self._total > len(self._items),
            }

    def write(self, path: Union[str, Path]) -> Path:
        """Write the report as a JSON artifact."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path
