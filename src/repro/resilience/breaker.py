"""A per-resource circuit breaker (closed -> open -> half-open).

Protects callers from a failing dependency — here, a served model whose
evaluation keeps erroring — by *shedding* calls once failures pass a
threshold, instead of queueing more doomed work:

- **closed** — normal operation; consecutive failures are counted, any
  success resets the count.
- **open** — every call is rejected immediately with
  :class:`~repro.errors.CircuitOpenError` (mapped to HTTP 503 +
  ``Retry-After``) until ``reset_timeout_s`` elapses.
- **half-open** — after the cool-down, a limited number of probe calls
  pass through; a success closes the circuit, a failure re-opens it.

The clock is injectable so tests step through states without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import CircuitOpenError, ConfigError

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of one circuit breaker."""

    #: Consecutive failures that trip the circuit open.
    failure_threshold: int = 5
    #: Seconds the circuit stays open before probing.
    reset_timeout_s: float = 10.0
    #: Concurrent probe calls admitted while half-open.
    half_open_max: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if self.reset_timeout_s <= 0:
            raise ConfigError("reset_timeout_s must be positive")
        if self.half_open_max < 1:
            raise ConfigError("half_open_max must be >= 1")


class CircuitBreaker:
    """Thread-safe breaker guarding one named resource."""

    def __init__(
        self,
        name: str,
        config: BreakerConfig = BreakerConfig(),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        #: Monotonically increasing counters for metrics/health.
        self.rejected_total = 0
        self.opened_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    # ------------------------------------------------------------------
    def before_call(self) -> None:
        """Admit the call or raise :class:`CircuitOpenError`."""
        with self._lock:
            if self._state == CLOSED:
                return
            now = self._clock()
            remaining = self._opened_at + self.config.reset_timeout_s - now
            if self._state == OPEN:
                if remaining > 0:
                    self.rejected_total += 1
                    raise CircuitOpenError(
                        f"circuit for {self.name!r} is open "
                        f"({self._failures} consecutive failures); "
                        f"retry in {max(remaining, 0.0):.1f}s",
                        retry_after_s=max(remaining, 0.05),
                    )
                self._state = HALF_OPEN
                self._probes = 0
            # half-open: admit a bounded number of probes.
            if self._probes >= self.config.half_open_max:
                self.rejected_total += 1
                raise CircuitOpenError(
                    f"circuit for {self.name!r} is half-open and probing; "
                    "retry shortly",
                    retry_after_s=max(self.config.reset_timeout_s / 4, 0.05),
                )
            self._probes += 1

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probes = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == HALF_OPEN
                or self._failures >= self.config.failure_threshold
            )
            if tripped and self._state != OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self.opened_total += 1
            elif self._state == HALF_OPEN:
                self._probes = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "CircuitBreaker":
        self.before_call()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is None:
            self.record_success()
        elif not isinstance(exc, CircuitOpenError):
            self.record_failure()
        return False
