"""Deterministic fault injection for chaos testing the pipeline.

A :class:`FaultPlan` is a set of rules bound to named *injection
points* — call sites scattered through the stack (``io.read``,
``train.kernel``, ``extract.clip``, ``serve.evaluate``, ...) that ask
"should a fault fire here?" on every pass.  Whether a given hit fires is
decided by a **seeded** PRNG plus per-point hit counters, so the same
plan against the same workload injects exactly the same faults — chaos
runs are reproducible and assertable.

Plans are written as a compact spec string (the ``REPRO_FAULTS``
environment variable uses the same syntax)::

    seed=42;io.read=error:1.0!2;train.kernel=error:1@1!1;extract.clip=corrupt:0.3

Entries are ``;``-separated.  ``seed=N`` seeds the PRNG; every other
entry is ``point=kind:probability`` with two optional suffixes:
``@N`` skips the first N matching hits, ``!M`` fires at most M times.
``point`` is an :mod:`fnmatch` pattern, so ``train.*=error:0.1`` covers
every training stage.  Kinds map to failure modes at the call site:

- ``error``   -> raises :class:`~repro.errors.TransientError`
- ``timeout`` -> raises :class:`~repro.errors.StageTimeout`
- ``corrupt`` -> raises :class:`~repro.errors.InputError`
- ``slow``    -> sleeps :data:`SLOW_SECONDS` and continues
- ``kill``    -> SIGKILLs the **current process** — simulates a native
  crash or OOM kill.  Inside a :mod:`repro.work` pool worker this is
  survivable chaos (the supervisor respawns the worker and retries the
  task); at a parent-side point like ``work.shard`` it kills the whole
  run, which is how the CI chaos job produces a journal to resume.

The fleet adds network-shaped points on top of the pipeline ones:
``fleet.lease`` fires in the worker the moment it accepts a lease (a
``kill`` there is the scenario lease TTLs exist for);
``fleet.partition.<host>_<port>`` fires in
:class:`~repro.fleet.protocol.FleetClient` before every request to that
peer, so ``fleet.partition.*_8990=error:1.0`` partitions one endpoint
off the network; ``fleet.promote`` fires in the standby coordinator as
it takes over, letting a drill fail the promotion itself.
``fleet.cache`` fires in the remote-cache client before every
get/put/batch RPC (an ``error`` there fails the node from the client's
view, driving the half-open recovery machinery), and
``fleet.cache_server`` fires in the cache node as it serves a blob — a
``corrupt`` fault there makes the node serve deliberately rotten bytes,
which the reading tier must reject by digest and count as
``remote_corrupt``.

Install a plan process-wide with :func:`install` / :func:`from_env`, or
scope one to a block with :func:`active`::

    with faults.active("extract.clip=corrupt:0.5"):
        report = detector.detect(layout)
    assert report.quarantined > 0

Injection points cost one module-global ``is None`` check when no plan
is installed, so production paths pay nothing.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Iterator, Optional

from repro.errors import ConfigError, InputError, StageTimeout, TransientError

#: Environment variable holding the process-wide fault plan spec.
ENV_VAR = "REPRO_FAULTS"

#: Seconds a ``slow`` fault stalls the injection point.
SLOW_SECONDS = 0.05

#: Failure modes a rule may request.
KINDS = ("error", "timeout", "corrupt", "slow", "kill")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, what, how often."""

    point: str
    kind: str
    probability: float
    after: int = 0
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; use one of {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.after < 0 or (self.limit is not None and self.limit < 1):
            raise ConfigError("fault @after must be >= 0 and !limit >= 1")


@dataclass
class FaultPlan:
    """Parsed rules plus the seed that makes them deterministic."""

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the ``seed=N;point=kind:prob[@N][!M]`` spec syntax."""
        plan = cls()
        for raw in spec.split(";"):
            entry = raw.strip()
            if not entry:
                continue
            name, sep, value = entry.partition("=")
            if not sep:
                raise ConfigError(f"fault entry {entry!r} is not name=value")
            name = name.strip()
            value = value.strip()
            if name == "seed":
                plan.seed = int(value)
                continue
            limit: Optional[int] = None
            if "!" in value:
                value, _, raw_limit = value.partition("!")
                limit = int(raw_limit)
            after = 0
            if "@" in value:
                value, _, raw_after = value.partition("@")
                after = int(raw_after)
            kind, sep, raw_prob = value.partition(":")
            probability = float(raw_prob) if sep else 1.0
            plan.rules.append(
                FaultRule(
                    point=name,
                    kind=kind.strip(),
                    probability=probability,
                    after=after,
                    limit=limit,
                )
            )
        return plan


@dataclass
class FiredFault:
    """Record of one injected fault (for reports and assertions)."""

    point: str
    kind: str
    context: dict


class FaultInjector:
    """Executable plan state: seeded PRNG + per-rule counters."""

    #: Details kept for the newest fires (counters are unbounded).
    MAX_RECORDED = 256

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._random = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._hits: dict[int, int] = {}
        self._fires: dict[int, int] = {}
        self.fired: list[FiredFault] = []
        self.fire_count = 0

    def match(self, point: str) -> Optional[FaultRule]:
        """Decide whether a fault fires at ``point`` (counts the hit)."""
        with self._lock:
            for index, rule in enumerate(self.plan.rules):
                if not fnmatchcase(point, rule.point):
                    continue
                self._hits[index] = self._hits.get(index, 0) + 1
                if self._hits[index] <= rule.after:
                    continue
                if rule.limit is not None and self._fires.get(index, 0) >= rule.limit:
                    continue
                if rule.probability < 1.0 and self._random.random() >= rule.probability:
                    continue
                self._fires[index] = self._fires.get(index, 0) + 1
                return rule
        return None

    def record(self, point: str, kind: str, context: dict) -> None:
        with self._lock:
            self.fire_count += 1
            if len(self.fired) < self.MAX_RECORDED:
                self.fired.append(FiredFault(point, kind, context))

    def summary(self) -> dict:
        with self._lock:
            by_point: dict[str, int] = {}
            for fault in self.fired:
                by_point[fault.point] = by_point.get(fault.point, 0) + 1
            return {"fired": self.fire_count, "by_point": by_point}


_injector: Optional[FaultInjector] = None


def install(plan: FaultPlan) -> FaultInjector:
    """Install a plan process-wide; returns the live injector."""
    global _injector
    _injector = FaultInjector(plan)
    return _injector


def uninstall() -> None:
    global _injector
    _injector = None


def get() -> Optional[FaultInjector]:
    """The installed injector, or ``None`` when injection is off."""
    return _injector


def from_env(environ=os.environ) -> Optional[FaultInjector]:
    """Install the plan named by ``REPRO_FAULTS``; no-op when unset."""
    spec = environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    return install(FaultPlan.from_spec(spec))


@contextmanager
def active(plan_or_spec) -> Iterator[FaultInjector]:
    """Scope a plan to a ``with`` block, restoring the previous one."""
    plan = (
        FaultPlan.from_spec(plan_or_spec)
        if isinstance(plan_or_spec, str)
        else plan_or_spec
    )
    global _injector
    previous = _injector
    injector = FaultInjector(plan)
    _injector = injector
    try:
        yield injector
    finally:
        _injector = previous


def inject(point: str, **context) -> None:
    """The injection-point hook: raise/stall when the plan says so.

    Call this at the top of any operation chaos tests should be able to
    break.  With no plan installed this is a single ``is None`` check.
    """
    injector = _injector
    if injector is None:
        return
    rule = injector.match(point)
    if rule is None:
        return
    injector.record(point, rule.kind, context)
    detail = ", ".join(f"{k}={v}" for k, v in context.items())
    message = f"injected {rule.kind} fault at {point}" + (f" ({detail})" if detail else "")
    if rule.kind == "slow":
        time.sleep(SLOW_SECONDS)
        return
    if rule.kind == "kill":
        # A real crash takes no exception path: no handlers, no cleanup.
        os.kill(os.getpid(), signal.SIGKILL)
        return  # pragma: no cover — the line above does not return
    if rule.kind == "timeout":
        raise StageTimeout(message)
    if rule.kind == "corrupt":
        raise InputError(message)
    raise TransientError(message)
