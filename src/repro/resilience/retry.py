"""Retries with exponential backoff, deterministic jitter and deadlines.

The two building blocks of the fault-tolerance layer:

- :class:`Deadline` — a wall-clock budget for a stage.  ``check()``
  raises :class:`~repro.errors.StageTimeout` once the budget is spent,
  so long loops (kernel training, retry loops) stop at a predictable
  point instead of running away.
- :func:`call_with_retry` — run a callable, retrying *transient*
  failures (:class:`~repro.errors.TransientError`, ``OSError`` by
  default) under a :class:`RetryPolicy`.  Backoff grows exponentially
  and is jittered **deterministically**: the jitter fraction is a hash
  of the call label and attempt number, not a PRNG draw, so two runs of
  the same workload sleep the same schedule — timing-sensitive tests
  and chaos runs stay reproducible.

Both take an injectable ``clock``/``sleep`` so tests drive them with a
fake clock and assert the exact backoff schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Callable, Optional, TypeVar

from repro.errors import ConfigError, StageTimeout, TransientError

T = TypeVar("T")


class Deadline:
    """A monotonic-clock budget shared by the stages under it."""

    __slots__ = ("seconds", "_clock", "_expires")

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic):
        if seconds <= 0:
            raise ConfigError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._expires = clock() + seconds

    @classmethod
    def after(cls, seconds: Optional[float], clock=time.monotonic) -> Optional["Deadline"]:
        """A deadline, or ``None`` when no budget was requested."""
        return None if seconds is None else cls(seconds, clock)

    def remaining(self) -> float:
        return self._expires - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, stage: str) -> None:
        """Raise :class:`StageTimeout` once the budget is spent."""
        if self.expired():
            raise StageTimeout(
                f"stage {stage!r} exceeded its {self.seconds:.1f}s deadline"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape and the exception types worth retrying."""

    attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    #: Fraction of each delay subtracted by deterministic jitter (0..1).
    jitter: float = 0.5
    retry_on: tuple = (TransientError, OSError)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigError("retry attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ConfigError("retry delays must satisfy 0 <= base <= max")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("retry jitter must be in [0, 1]")

    def delay(self, attempt: int, label: str = "") -> float:
        """Backoff before retry ``attempt`` (0-based), jittered.

        The jitter fraction is derived from ``sha256(label:attempt)`` so
        the schedule is fully determined by the call site — concurrent
        callers with different labels still de-synchronise.
        """
        raw = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
        digest = sha256(f"{label}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return raw * (1.0 - self.jitter * fraction)


#: Conservative default for file IO (model archives, layouts).
IO_RETRY = RetryPolicy(attempts=3, base_delay_s=0.02, max_delay_s=0.25)


def call_with_retry(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    label: str = "",
    deadline: Optional[Deadline] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> T:
    """Run ``fn`` retrying transient failures; return its result.

    Retries stop on the first non-``retry_on`` exception, when attempts
    are exhausted, or when ``deadline`` expires (the deadline check runs
    *before* each sleep, so a spent budget raises ``StageTimeout``
    instead of sleeping uselessly).  ``on_retry(attempt, exc, delay)``
    observes each scheduled retry — logging and tests hook it.
    """
    policy = policy or RetryPolicy()
    last: Optional[BaseException] = None
    for attempt in range(policy.attempts):
        try:
            return fn()
        except policy.retry_on as exc:  # type: ignore[misc]
            last = exc
            if attempt + 1 >= policy.attempts:
                break
            if deadline is not None:
                deadline.check(label or "retry")
            pause = policy.delay(attempt, label)
            if on_retry is not None:
                on_retry(attempt, exc, pause)
            if pause > 0:
                sleep(pause)
    assert last is not None
    raise last


@dataclass
class RetryState:
    """Mutable attempt counter threaded through client-side retries."""

    attempts: int = 1
    last_delay_s: float = 0.0
    delays: list = field(default_factory=list)

    def note(self, delay_s: float) -> None:
        self.attempts += 1
        self.last_delay_s = delay_s
        self.delays.append(delay_s)
