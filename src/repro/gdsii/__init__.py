"""From-scratch GDSII stream-format substrate.

Replaces the Anuvad C++ GDSII library the paper used.  Provides a binary
record codec, an object model (library / structure / element), a reader, a
writer and hierarchy flattening.
"""

from repro.gdsii.library import (
    GdsARef,
    GdsBoundary,
    GdsBox,
    GdsLibrary,
    GdsPath,
    GdsSRef,
    GdsStructure,
    GdsTransform,
    check_reference_closure,
)
from repro.gdsii.reader import read_library, read_library_file
from repro.gdsii.records import (
    DataType,
    Record,
    RecordType,
    decode_real8,
    decode_record,
    encode_real8,
    encode_record,
    iter_records,
)
from repro.gdsii.writer import write_library, write_library_file
from repro.gdsii.flatten import FlatShape, flatten_structure, flatten_top

__all__ = [
    "GdsLibrary",
    "GdsStructure",
    "GdsBoundary",
    "GdsPath",
    "GdsBox",
    "GdsSRef",
    "GdsARef",
    "GdsTransform",
    "check_reference_closure",
    "read_library",
    "read_library_file",
    "write_library",
    "write_library_file",
    "flatten_structure",
    "flatten_top",
    "FlatShape",
    "Record",
    "RecordType",
    "DataType",
    "encode_record",
    "decode_record",
    "iter_records",
    "encode_real8",
    "decode_real8",
]
