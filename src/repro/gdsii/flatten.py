"""Hierarchy flattening: resolve SREF/AREF into plain polygons.

The detection pipeline works on flat geometry.  :func:`flatten_structure`
expands a structure's reference tree into a list of ``(layer, datatype,
Polygon)`` tuples, applying GDSII placement transforms (reflection first,
then rotation, then translation) at every level.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import GdsiiError
from repro.gdsii.library import (
    GdsARef,
    GdsBoundary,
    GdsBox,
    GdsLibrary,
    GdsPath,
    GdsSRef,
    GdsStructure,
    GdsTransform,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

FlatShape = tuple[int, int, Polygon]

_MAX_DEPTH = 64


def flatten_structure(library: GdsLibrary, structure: GdsStructure) -> list[FlatShape]:
    """Flatten one structure (and its reference tree) to polygons."""
    return list(_flatten(library, structure, GdsTransform(), Point(0, 0), depth=0))


def flatten_top(library: GdsLibrary) -> list[FlatShape]:
    """Flatten the unique top structure of a library."""
    return flatten_structure(library, library.single_top())


def _compose_point(
    outer: GdsTransform, outer_origin: Point, inner_point: Point
) -> Point:
    moved = outer.apply(inner_point)
    return Point(moved.x + outer_origin.x, moved.y + outer_origin.y)


def _compose_transforms(outer: GdsTransform, inner: GdsTransform) -> GdsTransform:
    """Compose placement transforms (outer applied after inner).

    With reflection R (about x) and rotation by theta, a GDSII transform is
    ``T(p) = Rot(theta) . Mirror^m (p)``.  Composition stays in the same
    family: the combined mirror flag is the XOR and the combined angle is
    ``outer_angle + (-1)^{outer_mirror} * inner_angle``.
    """
    reflect = outer.reflect_x != inner.reflect_x
    sign = -1 if outer.reflect_x else 1
    rotation = (outer.rotation_degrees + sign * inner.rotation_degrees) % 360
    return GdsTransform(reflect, rotation)


def _flatten(
    library: GdsLibrary,
    structure: GdsStructure,
    transform: GdsTransform,
    origin: Point,
    depth: int,
) -> Iterator[FlatShape]:
    if depth > _MAX_DEPTH:
        raise GdsiiError(
            f"reference depth exceeds {_MAX_DEPTH}; cycle through {structure.name!r}?"
        )
    for element in structure.elements:
        if isinstance(element, GdsBoundary):
            vertices = [_compose_point(transform, origin, p) for p in element.xy]
            yield element.layer, element.datatype, Polygon(vertices)
        elif isinstance(element, GdsBox):
            vertices = [_compose_point(transform, origin, p) for p in element.xy]
            yield element.layer, element.boxtype, Polygon(vertices)
        elif isinstance(element, GdsPath):
            for polygon in element.to_polygons():
                vertices = [
                    _compose_point(transform, origin, p) for p in polygon.vertices
                ]
                yield element.layer, element.datatype, Polygon(vertices)
        elif isinstance(element, GdsSRef):
            child = library.get(element.sname)
            child_origin = _compose_point(transform, origin, element.origin)
            child_transform = _compose_transforms(transform, element.transform)
            yield from _flatten(
                library, child, child_transform, child_origin, depth + 1
            )
        elif isinstance(element, GdsARef):
            child = library.get(element.sname)
            child_transform = _compose_transforms(transform, element.transform)
            for placement in element.placements():
                child_origin = _compose_point(transform, origin, placement)
                yield from _flatten(
                    library, child, child_transform, child_origin, depth + 1
                )
        else:
            raise GdsiiError(f"cannot flatten element {type(element).__name__}")
