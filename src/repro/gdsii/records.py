"""GDSII stream-format record codec.

A GDSII file is a sequence of records.  Each record is::

    +--------+--------+--------+-----------------+
    | length (2B, BE) | rtype  | dtype  | payload |
    +--------+--------+--------+-----------------+

where ``length`` includes the 4 header bytes, ``rtype`` identifies the
record (HEADER, BGNLIB, BOUNDARY, ...) and ``dtype`` the payload encoding.
Reals use the legacy IBM excess-64 hexadecimal floating point format, which
this module converts to and from Python floats exactly for the magnitudes a
layout file contains.

This codec is deliberately complete enough to round-trip everything the
benchmark generator and the clip writer emit, and everything a typical
polygon-only metal-layer GDSII contains (BOUNDARY, PATH, SREF, AREF).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Union

from repro.errors import GdsiiRecordError


class RecordType(IntEnum):
    """GDSII record identifiers (subset sufficient for layout geometry)."""

    HEADER = 0x00
    BGNLIB = 0x01
    LIBNAME = 0x02
    UNITS = 0x03
    ENDLIB = 0x04
    BGNSTR = 0x05
    STRNAME = 0x06
    ENDSTR = 0x07
    BOUNDARY = 0x08
    PATH = 0x09
    SREF = 0x0A
    AREF = 0x0B
    TEXT = 0x0C
    LAYER = 0x0D
    DATATYPE = 0x0E
    WIDTH = 0x0F
    XY = 0x10
    ENDEL = 0x11
    SNAME = 0x12
    COLROW = 0x13
    TEXTTYPE = 0x16
    PRESENTATION = 0x17
    STRING = 0x19
    STRANS = 0x1A
    MAG = 0x1B
    ANGLE = 0x1C
    PATHTYPE = 0x21
    PROPATTR = 0x2B
    PROPVALUE = 0x2C
    BOX = 0x2D
    BOXTYPE = 0x2E


class DataType(IntEnum):
    """GDSII payload encodings."""

    NO_DATA = 0
    BIT_ARRAY = 1
    INT2 = 2
    INT4 = 3
    REAL4 = 4
    REAL8 = 5
    ASCII = 6


Payload = Union[None, bytes, list[int], list[float], str]


@dataclass(frozen=True)
class Record:
    """A decoded GDSII record: type tag plus typed payload."""

    rtype: RecordType
    dtype: DataType
    payload: Payload

    def ints(self) -> list[int]:
        """The payload as an integer list, validating the data type."""
        if self.dtype not in (DataType.INT2, DataType.INT4):
            raise GdsiiRecordError(f"{self.rtype.name} payload is not integral")
        assert isinstance(self.payload, list)
        return self.payload  # type: ignore[return-value]

    def reals(self) -> list[float]:
        """The payload as a float list, validating the data type."""
        if self.dtype not in (DataType.REAL4, DataType.REAL8):
            raise GdsiiRecordError(f"{self.rtype.name} payload is not real")
        assert isinstance(self.payload, list)
        return self.payload  # type: ignore[return-value]

    def text(self) -> str:
        """The payload as text, validating the data type."""
        if self.dtype is not DataType.ASCII:
            raise GdsiiRecordError(f"{self.rtype.name} payload is not ASCII")
        assert isinstance(self.payload, str)
        return self.payload


# ----------------------------------------------------------------------
# excess-64 real conversion
# ----------------------------------------------------------------------


def encode_real8(value: float) -> bytes:
    """Encode a float as an 8-byte GDSII excess-64 real.

    The format is ``S EEEEEEE MMMM...`` with a sign bit, a 7-bit excess-64
    exponent of 16, and a 56-bit mantissa in ``[1/16, 1)``.
    """
    if value == 0.0:
        return b"\x00" * 8
    sign = 0x80 if value < 0 else 0x00
    magnitude = abs(value)
    exponent = 64
    # Normalise mantissa into [1/16, 1).
    while magnitude >= 1.0:
        magnitude /= 16.0
        exponent += 1
    while magnitude < 1.0 / 16.0:
        magnitude *= 16.0
        exponent -= 1
    if not 0 <= exponent <= 127:
        raise GdsiiRecordError(f"real {value} out of excess-64 exponent range")
    mantissa = int(magnitude * (1 << 56))
    out = bytearray(8)
    out[0] = sign | exponent
    for i in range(7):
        out[7 - i] = mantissa & 0xFF
        mantissa >>= 8
    return bytes(out)


def decode_real8(data: bytes) -> float:
    """Decode an 8-byte GDSII excess-64 real to a float."""
    if len(data) != 8:
        raise GdsiiRecordError(f"REAL8 needs 8 bytes, got {len(data)}")
    first = data[0]
    sign = -1.0 if first & 0x80 else 1.0
    exponent = (first & 0x7F) - 64
    mantissa = 0
    for byte in data[1:]:
        mantissa = (mantissa << 8) | byte
    return sign * mantissa * (16.0**exponent) / float(1 << 56)


# ----------------------------------------------------------------------
# record encode / decode
# ----------------------------------------------------------------------


def encode_record(rtype: RecordType, dtype: DataType, payload: Payload) -> bytes:
    """Serialise one record to bytes (header + payload, padded to even)."""
    if dtype is DataType.NO_DATA:
        body = b""
    elif dtype is DataType.BIT_ARRAY:
        if not isinstance(payload, bytes) or len(payload) != 2:
            raise GdsiiRecordError("BIT_ARRAY payload must be exactly 2 bytes")
        body = payload
    elif dtype is DataType.INT2:
        assert isinstance(payload, list)
        body = b"".join(struct.pack(">h", v) for v in payload)
    elif dtype is DataType.INT4:
        assert isinstance(payload, list)
        body = b"".join(struct.pack(">i", v) for v in payload)
    elif dtype is DataType.REAL8:
        assert isinstance(payload, list)
        body = b"".join(encode_real8(v) for v in payload)
    elif dtype is DataType.ASCII:
        assert isinstance(payload, str)
        raw = payload.encode("ascii")
        if len(raw) % 2:
            raw += b"\x00"
        body = raw
    else:
        raise GdsiiRecordError(f"unsupported encode data type {dtype!r}")
    length = len(body) + 4
    if length > 0xFFFF:
        raise GdsiiRecordError(f"record too long ({length} bytes)")
    return struct.pack(">HBB", length, int(rtype), int(dtype)) + body


def decode_record(data: bytes, offset: int) -> tuple[Record, int]:
    """Decode the record starting at ``offset``; return it and the next offset."""
    if offset + 4 > len(data):
        raise GdsiiRecordError(f"truncated record header at offset {offset}")
    length, rtype_raw, dtype_raw = struct.unpack_from(">HBB", data, offset)
    if length < 4:
        raise GdsiiRecordError(f"record length {length} < 4 at offset {offset}")
    end = offset + length
    if end > len(data):
        raise GdsiiRecordError(f"record at offset {offset} overruns file end")
    body = data[offset + 4 : end]
    try:
        rtype = RecordType(rtype_raw)
    except ValueError:
        raise GdsiiRecordError(f"unknown record type 0x{rtype_raw:02X}") from None
    try:
        dtype = DataType(dtype_raw)
    except ValueError:
        raise GdsiiRecordError(f"unknown data type 0x{dtype_raw:02X}") from None

    payload: Payload
    if dtype is DataType.NO_DATA:
        payload = None
    elif dtype is DataType.BIT_ARRAY:
        payload = body
    elif dtype is DataType.INT2:
        if len(body) % 2:
            raise GdsiiRecordError(f"{rtype.name}: INT2 payload has odd length")
        payload = [v[0] for v in struct.iter_unpack(">h", body)]
    elif dtype is DataType.INT4:
        if len(body) % 4:
            raise GdsiiRecordError(f"{rtype.name}: INT4 payload not 4-byte aligned")
        payload = [v[0] for v in struct.iter_unpack(">i", body)]
    elif dtype is DataType.REAL8:
        if len(body) % 8:
            raise GdsiiRecordError(f"{rtype.name}: REAL8 payload not 8-byte aligned")
        payload = [decode_real8(body[i : i + 8]) for i in range(0, len(body), 8)]
    elif dtype is DataType.REAL4:
        raise GdsiiRecordError("REAL4 records are obsolete and unsupported")
    else:  # ASCII
        payload = body.rstrip(b"\x00").decode("ascii")
    return Record(rtype, dtype, payload), end


def iter_records(data: bytes):
    """Yield every record in a GDSII byte stream, stopping after ENDLIB."""
    offset = 0
    while offset < len(data):
        record, offset = decode_record(data, offset)
        yield record
        if record.rtype is RecordType.ENDLIB:
            return
    raise GdsiiRecordError("stream ended without ENDLIB")
