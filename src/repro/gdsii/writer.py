"""GDSII stream writer: :class:`repro.gdsii.library.GdsLibrary` -> bytes.

Produces streams that the sibling reader round-trips exactly, and that
standard tools (KLayout, gdstk) accept: timestamps are fixed (layouts are
content-addressed in tests, so determinism beats wall-clock fidelity),
records are emitted in canonical order, and vertex loops are closed on the
way out.
"""

from __future__ import annotations

from pathlib import Path as FsPath
from typing import Union

from repro.errors import GdsiiError
from repro.gdsii.library import (
    GdsARef,
    GdsBoundary,
    GdsBox,
    GdsLibrary,
    GdsPath,
    GdsSRef,
    GdsStructure,
    GdsTransform,
    check_reference_closure,
)
from repro.gdsii.records import DataType, RecordType, encode_record
from repro.geometry.point import Point

# A fixed modification timestamp: 2013-06-02, the first day of DAC 2013.
_TIMESTAMP = [2013, 6, 2, 0, 0, 0]


def write_library(library: GdsLibrary) -> bytes:
    """Serialise a library to GDSII bytes."""
    dangling = check_reference_closure(library)
    if dangling is not None:
        raise GdsiiError(f"library references missing structure {dangling!r}")
    chunks: list[bytes] = [
        encode_record(RecordType.HEADER, DataType.INT2, [600]),
        encode_record(RecordType.BGNLIB, DataType.INT2, _TIMESTAMP * 2),
        encode_record(RecordType.LIBNAME, DataType.ASCII, library.name),
        encode_record(
            RecordType.UNITS,
            DataType.REAL8,
            [library.user_unit, library.meters_per_dbu],
        ),
    ]
    for structure in library.structures.values():
        chunks.append(_encode_structure(structure))
    chunks.append(encode_record(RecordType.ENDLIB, DataType.NO_DATA, None))
    return b"".join(chunks)


def write_library_file(library: GdsLibrary, path: Union[str, FsPath]) -> None:
    """Serialise a library to a GDSII file on disk."""
    data = write_library(library)
    with open(path, "wb") as handle:
        handle.write(data)


def _encode_structure(structure: GdsStructure) -> bytes:
    chunks = [
        encode_record(RecordType.BGNSTR, DataType.INT2, _TIMESTAMP * 2),
        encode_record(RecordType.STRNAME, DataType.ASCII, structure.name),
    ]
    for element in structure.elements:
        if isinstance(element, GdsBoundary):
            chunks.append(_encode_boundary(element))
        elif isinstance(element, GdsPath):
            chunks.append(_encode_path(element))
        elif isinstance(element, GdsBox):
            chunks.append(_encode_box(element))
        elif isinstance(element, GdsSRef):
            chunks.append(_encode_sref(element))
        elif isinstance(element, GdsARef):
            chunks.append(_encode_aref(element))
        else:
            raise GdsiiError(f"cannot encode element {type(element).__name__}")
    chunks.append(encode_record(RecordType.ENDSTR, DataType.NO_DATA, None))
    return b"".join(chunks)


def _xy_payload(points: list[Point], *, close: bool) -> list[int]:
    loop = list(points) + ([points[0]] if close else [])
    out: list[int] = []
    for p in loop:
        out.extend((p.x, p.y))
    return out


def _encode_boundary(boundary: GdsBoundary) -> bytes:
    if len(boundary.xy) < 3:
        raise GdsiiError("BOUNDARY needs at least 3 vertices")
    return b"".join(
        (
            encode_record(RecordType.BOUNDARY, DataType.NO_DATA, None),
            encode_record(RecordType.LAYER, DataType.INT2, [boundary.layer]),
            encode_record(RecordType.DATATYPE, DataType.INT2, [boundary.datatype]),
            encode_record(
                RecordType.XY, DataType.INT4, _xy_payload(boundary.xy, close=True)
            ),
            encode_record(RecordType.ENDEL, DataType.NO_DATA, None),
        )
    )


def _encode_path(path: GdsPath) -> bytes:
    if len(path.xy) < 2:
        raise GdsiiError("PATH needs at least 2 vertices")
    return b"".join(
        (
            encode_record(RecordType.PATH, DataType.NO_DATA, None),
            encode_record(RecordType.LAYER, DataType.INT2, [path.layer]),
            encode_record(RecordType.DATATYPE, DataType.INT2, [path.datatype]),
            encode_record(RecordType.PATHTYPE, DataType.INT2, [path.pathtype]),
            encode_record(RecordType.WIDTH, DataType.INT4, [path.width]),
            encode_record(
                RecordType.XY, DataType.INT4, _xy_payload(path.xy, close=False)
            ),
            encode_record(RecordType.ENDEL, DataType.NO_DATA, None),
        )
    )


def _encode_box(box: GdsBox) -> bytes:
    if len(box.xy) != 4:
        raise GdsiiError("BOX needs exactly 4 vertices")
    return b"".join(
        (
            encode_record(RecordType.BOX, DataType.NO_DATA, None),
            encode_record(RecordType.LAYER, DataType.INT2, [box.layer]),
            encode_record(RecordType.BOXTYPE, DataType.INT2, [box.boxtype]),
            encode_record(
                RecordType.XY, DataType.INT4, _xy_payload(box.xy, close=True)
            ),
            encode_record(RecordType.ENDEL, DataType.NO_DATA, None),
        )
    )


def _encode_transform(transform: GdsTransform) -> bytes:
    if not transform.reflect_x and transform.rotation_degrees == 0:
        return b""
    chunks = [
        encode_record(
            RecordType.STRANS,
            DataType.BIT_ARRAY,
            b"\x80\x00" if transform.reflect_x else b"\x00\x00",
        )
    ]
    if transform.rotation_degrees:
        chunks.append(
            encode_record(
                RecordType.ANGLE, DataType.REAL8, [float(transform.rotation_degrees)]
            )
        )
    return b"".join(chunks)


def _encode_sref(sref: GdsSRef) -> bytes:
    return b"".join(
        (
            encode_record(RecordType.SREF, DataType.NO_DATA, None),
            encode_record(RecordType.SNAME, DataType.ASCII, sref.sname),
            _encode_transform(sref.transform),
            encode_record(
                RecordType.XY, DataType.INT4, [sref.origin.x, sref.origin.y]
            ),
            encode_record(RecordType.ENDEL, DataType.NO_DATA, None),
        )
    )


def _encode_aref(aref: GdsARef) -> bytes:
    col_corner = Point(
        aref.origin.x + aref.columns * aref.col_step.x,
        aref.origin.y + aref.columns * aref.col_step.y,
    )
    row_corner = Point(
        aref.origin.x + aref.rows * aref.row_step.x,
        aref.origin.y + aref.rows * aref.row_step.y,
    )
    return b"".join(
        (
            encode_record(RecordType.AREF, DataType.NO_DATA, None),
            encode_record(RecordType.SNAME, DataType.ASCII, aref.sname),
            _encode_transform(aref.transform),
            encode_record(
                RecordType.COLROW, DataType.INT2, [aref.columns, aref.rows]
            ),
            encode_record(
                RecordType.XY,
                DataType.INT4,
                [
                    aref.origin.x,
                    aref.origin.y,
                    col_corner.x,
                    col_corner.y,
                    row_corner.x,
                    row_corner.y,
                ],
            ),
            encode_record(RecordType.ENDEL, DataType.NO_DATA, None),
        )
    )
