"""In-memory GDSII object model: libraries, structures, elements.

Mirrors the stream format's hierarchy: a :class:`GdsLibrary` holds named
:class:`GdsStructure` cells, each containing geometry elements (boundaries,
paths, boxes) and hierarchy references (:class:`GdsSRef`,
:class:`GdsARef`).  Coordinates are integer database units (DBU); the
library records how many metres one DBU is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.errors import GdsiiError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


@dataclass
class GdsBoundary:
    """A filled polygon on ``layer``/``datatype``.

    ``xy`` is the closed vertex loop *without* the repeated final vertex
    (the stream format repeats it; the model does not).
    """

    layer: int
    datatype: int
    xy: list[Point]

    def to_polygon(self) -> Polygon:
        """Convert to the geometry engine's polygon type."""
        return Polygon(self.xy)

    @staticmethod
    def from_rect(layer: int, datatype: int, rect: Rect) -> "GdsBoundary":
        return GdsBoundary(layer, datatype, list(rect.corners()))


@dataclass
class GdsPath:
    """A wire path with a width; flush (pathtype 0) ends only.

    Paths are converted to boundaries on read by :meth:`to_polygons`, since
    the detection pipeline operates purely on polygons.
    """

    layer: int
    datatype: int
    width: int
    xy: list[Point]
    pathtype: int = 0

    def to_polygons(self) -> list[Polygon]:
        """Expand each axis-parallel segment to a width-``width`` rectangle."""
        if self.width <= 0:
            raise GdsiiError(f"path on layer {self.layer} has width {self.width}")
        half = self.width // 2
        out: list[Polygon] = []
        for a, b in zip(self.xy, self.xy[1:]):
            if a.x == b.x:
                y0, y1 = min(a.y, b.y), max(a.y, b.y)
                out.append(Polygon.from_rect(Rect(a.x - half, y0, a.x + half, y1)))
            elif a.y == b.y:
                x0, x1 = min(a.x, b.x), max(a.x, b.x)
                out.append(Polygon.from_rect(Rect(x0, a.y - half, x1, a.y + half)))
            else:
                raise GdsiiError("non-Manhattan path segments are unsupported")
        return out


@dataclass
class GdsBox:
    """A BOX element; semantically a labelled rectangle."""

    layer: int
    boxtype: int
    xy: list[Point]

    def to_polygon(self) -> Polygon:
        return Polygon(self.xy)


@dataclass
class GdsTransform:
    """Placement transform of a structure reference.

    Only the manufacturable subset is supported: right-angle rotations and
    an optional x-axis reflection (STRANS bit 0), with unit magnification.
    """

    reflect_x: bool = False
    rotation_degrees: int = 0
    magnification: float = 1.0

    def __post_init__(self) -> None:
        if self.rotation_degrees % 90:
            raise GdsiiError(
                f"only right-angle rotations supported, got {self.rotation_degrees}"
            )
        if not math.isclose(self.magnification, 1.0):
            raise GdsiiError("non-unit magnification is unsupported")

    def apply(self, p: Point) -> Point:
        """Transform a point (reflection first, then rotation — GDSII order)."""
        x, y = p.x, p.y
        if self.reflect_x:
            y = -y
        quarter_turns = (self.rotation_degrees // 90) % 4
        for _ in range(quarter_turns):
            x, y = -y, x
        return Point(x, y)


@dataclass
class GdsSRef:
    """A single placement of structure ``sname`` at ``origin``."""

    sname: str
    origin: Point
    transform: GdsTransform = field(default_factory=GdsTransform)


@dataclass
class GdsARef:
    """An array placement: ``columns`` x ``rows`` copies of ``sname``.

    ``col_step`` / ``row_step`` are the displacement vectors between
    adjacent columns and rows (derived from the three XY points of the
    stream AREF record).
    """

    sname: str
    origin: Point
    columns: int
    rows: int
    col_step: Point
    row_step: Point
    transform: GdsTransform = field(default_factory=GdsTransform)

    def placements(self) -> Iterator[Point]:
        """The origin of every array instance."""
        for row in range(self.rows):
            for col in range(self.columns):
                yield Point(
                    self.origin.x + col * self.col_step.x + row * self.row_step.x,
                    self.origin.y + col * self.col_step.y + row * self.row_step.y,
                )


GdsElement = Union[GdsBoundary, GdsPath, GdsBox, GdsSRef, GdsARef]


@dataclass
class GdsStructure:
    """A named cell holding geometry and references."""

    name: str
    elements: list[GdsElement] = field(default_factory=list)

    def boundaries(self) -> list[GdsBoundary]:
        return [e for e in self.elements if isinstance(e, GdsBoundary)]

    def references(self) -> list[Union[GdsSRef, GdsARef]]:
        return [e for e in self.elements if isinstance(e, (GdsSRef, GdsARef))]

    def add(self, element: GdsElement) -> None:
        self.elements.append(element)


@dataclass
class GdsLibrary:
    """A GDSII library: named structures plus unit metadata.

    ``user_unit`` is DBU size in user units (typically 1e-3 for nm DBU with
    micron user units); ``meters_per_dbu`` the physical DBU size.
    """

    name: str = "LIB"
    user_unit: float = 1e-3
    meters_per_dbu: float = 1e-9
    structures: dict[str, GdsStructure] = field(default_factory=dict)

    def add_structure(self, structure: GdsStructure) -> GdsStructure:
        if structure.name in self.structures:
            raise GdsiiError(f"duplicate structure name {structure.name!r}")
        self.structures[structure.name] = structure
        return structure

    def new_structure(self, name: str) -> GdsStructure:
        return self.add_structure(GdsStructure(name))

    def get(self, name: str) -> GdsStructure:
        try:
            return self.structures[name]
        except KeyError:
            raise GdsiiError(f"unknown structure {name!r}") from None

    def top_structures(self) -> list[GdsStructure]:
        """Structures not referenced by any other structure."""
        referenced = {
            ref.sname
            for structure in self.structures.values()
            for ref in structure.references()
        }
        return [s for s in self.structures.values() if s.name not in referenced]

    def single_top(self) -> GdsStructure:
        """The unique top structure, erroring when it is ambiguous."""
        tops = self.top_structures()
        if len(tops) != 1:
            names = sorted(s.name for s in tops)
            raise GdsiiError(f"expected one top structure, found {names}")
        return tops[0]


def check_reference_closure(library: GdsLibrary) -> Optional[str]:
    """Return the first dangling reference name, or ``None`` when closed."""
    for structure in library.structures.values():
        for ref in structure.references():
            if ref.sname not in library.structures:
                return ref.sname
    return None
