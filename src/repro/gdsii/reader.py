"""GDSII stream reader: bytes -> :class:`repro.gdsii.library.GdsLibrary`.

The reader is a small state machine over the record stream.  It accepts the
element kinds the object model supports (BOUNDARY, PATH, BOX, SREF, AREF)
and raises :class:`~repro.errors.GdsiiError` with record context on any
structural violation, rather than silently skipping content — a corrupted
benchmark file should fail loudly.
"""

from __future__ import annotations

import math
import struct
from pathlib import Path as FsPath
from typing import Optional, Union

from repro.errors import GdsiiError
from repro.gdsii.library import (
    GdsARef,
    GdsBoundary,
    GdsBox,
    GdsLibrary,
    GdsPath,
    GdsSRef,
    GdsStructure,
    GdsTransform,
)
from repro.gdsii.records import DataType, Record, RecordType, decode_record
from repro.geometry.point import Point


def read_library(data: bytes) -> GdsLibrary:
    """Parse a full GDSII byte stream into a library."""
    reader = _StreamReader(data)
    try:
        return reader.run()
    except (IndexError, struct.error, UnicodeDecodeError) as exc:
        # Raw decoder slips on corrupt payloads become typed input errors
        # carrying the offending record's file offset.
        raise GdsiiError(
            f"malformed GDSII record at offset {reader.last_offset}: {exc}"
        ) from exc


def read_library_file(path: Union[str, FsPath]) -> GdsLibrary:
    """Parse a GDSII file from disk."""
    with open(path, "rb") as handle:
        return read_library(handle.read())


class _StreamReader:
    """Record-stream state machine producing a :class:`GdsLibrary`."""

    def __init__(self, data: bytes):
        self._data = data
        self._offset = 0
        self._done = False
        #: Offset of the most recently decoded record (error context).
        self.last_offset = 0
        self._library = GdsLibrary()
        self._pushback: Optional[Record] = None

    # -- record cursor -------------------------------------------------
    def _next(self) -> Record:
        if self._pushback is not None:
            record, self._pushback = self._pushback, None
            return record
        if self._done or self._offset >= len(self._data):
            raise GdsiiError("unexpected end of record stream")
        self.last_offset = self._offset
        record, self._offset = decode_record(self._data, self._offset)
        if record.rtype is RecordType.ENDLIB:
            self._done = True
        return record

    def _push(self, record: Record) -> None:
        self._pushback = record

    def _expect(self, rtype: RecordType) -> Record:
        record = self._next()
        if record.rtype is not rtype:
            raise GdsiiError(f"expected {rtype.name}, got {record.rtype.name}")
        return record

    # -- grammar -------------------------------------------------------
    def run(self) -> GdsLibrary:
        self._expect(RecordType.HEADER)
        self._expect(RecordType.BGNLIB)
        self._library.name = self._expect(RecordType.LIBNAME).text()
        units = self._expect(RecordType.UNITS).reals()
        if len(units) != 2:
            raise GdsiiError(f"UNITS must carry 2 reals, got {len(units)}")
        self._library.user_unit, self._library.meters_per_dbu = units
        while True:
            record = self._next()
            if record.rtype is RecordType.ENDLIB:
                return self._library
            if record.rtype is RecordType.BGNSTR:
                self._read_structure()
            else:
                raise GdsiiError(
                    f"unexpected {record.rtype.name} at library level"
                )

    def _read_structure(self) -> None:
        name = self._expect(RecordType.STRNAME).text()
        structure = GdsStructure(name)
        while True:
            record = self._next()
            if record.rtype is RecordType.ENDSTR:
                self._library.add_structure(structure)
                return
            if record.rtype is RecordType.BOUNDARY:
                structure.add(self._read_boundary())
            elif record.rtype is RecordType.PATH:
                structure.add(self._read_path())
            elif record.rtype is RecordType.BOX:
                structure.add(self._read_box())
            elif record.rtype is RecordType.SREF:
                structure.add(self._read_sref())
            elif record.rtype is RecordType.AREF:
                structure.add(self._read_aref())
            elif record.rtype is RecordType.TEXT:
                self._skip_element()  # labels carry no detection geometry
            else:
                raise GdsiiError(
                    f"unexpected {record.rtype.name} in structure {name!r}"
                )

    def _skip_element(self) -> None:
        while self._next().rtype is not RecordType.ENDEL:
            pass

    def _read_xy_points(self, record: Record) -> list[Point]:
        values = record.ints()
        if len(values) % 2:
            raise GdsiiError("XY record holds an odd number of coordinates")
        return [Point(values[i], values[i + 1]) for i in range(0, len(values), 2)]

    def _read_boundary(self) -> GdsBoundary:
        layer = self._expect(RecordType.LAYER).ints()[0]
        datatype = self._expect(RecordType.DATATYPE).ints()[0]
        xy = self._read_xy_points(self._expect(RecordType.XY))
        if len(xy) < 4 or xy[0] != xy[-1]:
            raise GdsiiError("BOUNDARY loop must repeat its first vertex")
        self._expect(RecordType.ENDEL)
        return GdsBoundary(layer, datatype, xy[:-1])

    def _read_path(self) -> GdsPath:
        layer = self._expect(RecordType.LAYER).ints()[0]
        datatype = self._expect(RecordType.DATATYPE).ints()[0]
        pathtype = 0
        width = 0
        record = self._next()
        if record.rtype is RecordType.PATHTYPE:
            pathtype = record.ints()[0]
            record = self._next()
        if record.rtype is RecordType.WIDTH:
            width = record.ints()[0]
            record = self._next()
        if record.rtype is not RecordType.XY:
            raise GdsiiError(f"PATH: expected XY, got {record.rtype.name}")
        xy = self._read_xy_points(record)
        self._expect(RecordType.ENDEL)
        return GdsPath(layer, datatype, width, xy, pathtype)

    def _read_box(self) -> GdsBox:
        layer = self._expect(RecordType.LAYER).ints()[0]
        boxtype = self._expect(RecordType.BOXTYPE).ints()[0]
        xy = self._read_xy_points(self._expect(RecordType.XY))
        if len(xy) != 5 or xy[0] != xy[-1]:
            raise GdsiiError("BOX must carry a closed 5-point loop")
        self._expect(RecordType.ENDEL)
        return GdsBox(layer, boxtype, xy[:-1])

    def _read_transform_then(self, *terminal: RecordType) -> tuple[GdsTransform, Record]:
        """Parse optional STRANS/MAG/ANGLE; return transform + next record."""
        reflect_x = False
        rotation = 0.0
        magnification = 1.0
        record = self._next()
        if record.rtype is RecordType.STRANS:
            assert record.dtype is DataType.BIT_ARRAY
            assert isinstance(record.payload, bytes)
            reflect_x = bool(record.payload[0] & 0x80)
            record = self._next()
            if record.rtype is RecordType.MAG:
                magnification = record.reals()[0]
                record = self._next()
            if record.rtype is RecordType.ANGLE:
                rotation = record.reals()[0]
                record = self._next()
        if record.rtype not in terminal:
            names = "/".join(t.name for t in terminal)
            raise GdsiiError(f"reference: expected {names}, got {record.rtype.name}")
        rotation_int = int(round(rotation))
        if not math.isclose(rotation, rotation_int, abs_tol=1e-9):
            raise GdsiiError(f"non-integral reference angle {rotation}")
        return (
            GdsTransform(reflect_x, rotation_int % 360, magnification),
            record,
        )

    def _read_sref(self) -> GdsSRef:
        sname = self._expect(RecordType.SNAME).text()
        transform, record = self._read_transform_then(RecordType.XY)
        xy = self._read_xy_points(record)
        if len(xy) != 1:
            raise GdsiiError("SREF XY must carry exactly one point")
        self._expect(RecordType.ENDEL)
        return GdsSRef(sname, xy[0], transform)

    def _read_aref(self) -> GdsARef:
        sname = self._expect(RecordType.SNAME).text()
        transform, record = self._read_transform_then(
            RecordType.COLROW, RecordType.XY
        )
        if record.rtype is RecordType.COLROW:
            columns, rows = record.ints()
            record = self._expect(RecordType.XY)
        else:
            raise GdsiiError("AREF requires a COLROW record")
        xy = self._read_xy_points(record)
        if len(xy) != 3:
            raise GdsiiError("AREF XY must carry exactly three points")
        origin, col_corner, row_corner = xy
        if columns <= 0 or rows <= 0:
            raise GdsiiError(f"AREF COLROW must be positive, got {columns}x{rows}")
        col_step = Point(
            (col_corner.x - origin.x) // columns, (col_corner.y - origin.y) // columns
        )
        row_step = Point(
            (row_corner.x - origin.x) // rows, (row_corner.y - origin.y) // rows
        )
        self._expect(RecordType.ENDEL)
        return GdsARef(sname, origin, columns, rows, col_step, row_step, transform)
