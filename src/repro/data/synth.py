"""Synthetic layout fabric and benchmark-piece builders.

Produces the two artefact kinds a benchmark pair needs:

- *training clips*: a labelled motif core embedded in routing-fabric ambit
  (the shape of the MX training archives), and
- *testing layouts*: a routing fabric with motifs planted at known core
  windows, giving exact ground truth for hit/extra scoring.

The fabric is a standard-cell-style metal layer: horizontal tracks at a
fixed pitch with random segment breaks plus sparse vertical stubs.  Its
dimensions are safely outside every motif's critical regime so the fabric
itself contains no accidental hotspots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import DataError
from repro.geometry.dissect import cut_to_max_size
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel, ClipSpec
from repro.layout.layout import Layout
from repro.data.patterns import AMBIT_MOTIF, MOTIFS, generate_ambit_motif, generate_motif

#: Fabric track geometry (nm): pitch/width chosen so spacing (128 nm) is
#: comfortably above the 70 nm hotspot regime.
FABRIC_PITCH = 192
FABRIC_WIDTH = 64
FABRIC_SPACING = FABRIC_PITCH - FABRIC_WIDTH


def fabric_bands(
    rng: np.random.Generator, window: Rect, fill_fraction: float
) -> list[tuple[int, int]]:
    """Standard-cell-style fabric band y-intervals for a window.

    Bands are tall enough to host a full clip core (so planted sites can
    sit inside dense fabric, where real hotspots live); channel gaps are
    sized so the covered fraction approximates ``fill_fraction``.
    """
    if fill_fraction >= 1.0:
        return [(window.y0, window.y1)]
    bands: list[tuple[int, int]] = []
    y = window.y0
    while y < window.y1:
        # Bands are at least a clip tall, so a clip centred on an in-band
        # site sees fabric all the way to its window boundary (the
        # extraction's bbox-proximity requirement).
        band_rows = int(rng.integers(30, 44))
        band_height = band_rows * FABRIC_PITCH
        top = min(window.y1, y + band_height)
        bands.append((y, top))
        gap_rows = max(2, round(band_rows * (1.0 - fill_fraction) / fill_fraction))
        y = top + gap_rows * FABRIC_PITCH
    return bands


def fabric_rects(
    rng: np.random.Generator,
    window: Rect,
    keep_out: Sequence[Rect] = (),
    break_probability: float = 0.35,
    stub_probability: float = 0.08,
    fill_fraction: float = 1.0,
    bands: Optional[list[tuple[int, int]]] = None,
) -> list[Rect]:
    """Routing-fabric rectangles filling ``window`` minus keep-out zones.

    Horizontal tracks at ``FABRIC_PITCH`` are segmented at random break
    points; segments intersecting a keep-out box are dropped entirely (so
    planted motifs keep clean surroundings).  Occasional vertical stubs
    connect adjacent tracks for corner variety — stubs are centred within
    the horizontal gap of a break so they never touch live segments
    sideways.

    ``fill_fraction`` < 1 structures the fabric into standard-cell-style
    bands separated by empty routing channels (real layouts are not
    wall-to-wall metal); the density-driven clip extraction's advantage
    over window scanning (Table V) comes precisely from skipping that
    empty area.
    """
    if not 0.0 < fill_fraction <= 1.0:
        raise DataError(f"fill_fraction must be in (0, 1], got {fill_fraction}")
    if bands is None:
        bands = fabric_bands(rng, window, fill_fraction)
    # Phase 1: horizontal track segments with random breaks, laid out in
    # the given bands (empty channels separate them when fill < 1).
    segments: list[Rect] = []
    stub_slots: list[tuple[int, int]] = []  # (x centre of a break, row y)
    band_index = 0
    y = window.y0 + FABRIC_SPACING // 2
    while y + FABRIC_WIDTH <= window.y1:
        while band_index < len(bands) and y >= bands[band_index][1]:
            band_index += 1
        if band_index >= len(bands):
            break
        band_lo, band_hi = bands[band_index]
        if y < band_lo:
            y = band_lo + FABRIC_SPACING // 2
            continue
        x = window.x0
        while x < window.x1:
            # Segment length: a few microns with jitter.
            length = int(rng.integers(1200, 4200))
            end = min(x + length, window.x1)
            segment = Rect.maybe(x, y, end, y + FABRIC_WIDTH)
            if segment is not None and segment.width >= FABRIC_WIDTH:
                blocked = any(segment.overlaps(k) for k in keep_out)
                if not blocked and rng.random() > break_probability * 0.3:
                    segments.append(segment)
            # Break gap before the next segment; gaps are wide enough that
            # a centred stub keeps safe-regime clearance on both sides.
            gap = int(rng.integers(FABRIC_SPACING + 260, 980))
            if rng.random() < stub_probability:
                stub_slots.append((end + gap // 2, y))
            x = end + gap
        y += FABRIC_PITCH

    # Phase 2: vertical stubs bridging adjacent rows, placed only where
    # they keep safe clearance (> the hotspot regime) from everything.
    from repro.data.patterns import GAP_REGIMES

    min_clear = GAP_REGIMES["hotspot"][1] + 30
    rects = list(segments)
    for stub_x, row_y in stub_slots:
        # The stub fills the space strictly between two track rows, so it
        # abuts (never overlaps) any segments above and below.
        stub = Rect.maybe(
            stub_x, row_y + FABRIC_WIDTH, stub_x + FABRIC_WIDTH, row_y + FABRIC_PITCH
        )
        if stub is None or stub.y1 + FABRIC_WIDTH > window.y1:
            continue
        if any(stub.overlaps(k) for k in keep_out):
            continue
        danger = stub.expanded(min_clear)
        if any(danger.overlaps(r) and not stub.touches(r) for r in rects):
            continue
        rects.append(stub)
    return rects


def anchor_of(rects: Sequence[Rect], core_side: int) -> tuple[int, int]:
    """The canonical extraction anchor of a rectangle set.

    Layout clip extraction (Section III-E) anchors candidate cores at the
    bottom-left corner of each dissected rectangle; the canonical anchor is
    the lexicographically smallest such corner.  Training clips are built
    at this anchor so the training distribution matches what evaluation
    extracts at the same geometry — exactly the alignment the real contest
    clips have, since those were themselves cut from layouts.
    """
    pieces = cut_to_max_size(list(rects), core_side)
    return min((piece.x0, piece.y0) for piece in pieces)


#: Fabric moat half-width around an ambit-sensitive motif's core: wide
#: enough that the crowding tracks (or their deliberate absence) are the
#: only geometry the feedback kernel sees near the core.
AMBIT_MOAT = 1100


def build_training_clip(
    rng: np.random.Generator,
    spec: ClipSpec,
    motif_name: str,
    hotspot: bool,
    origin: tuple[int, int] = (0, 0),
) -> Clip:
    """One labelled training clip: motif core inside fabric ambit.

    The motif is generated in a nominal core box, then the clip window is
    re-anchored at the motif's canonical extraction anchor (see
    :func:`anchor_of`) so training and evaluation see identically-aligned
    patterns.  The ambit-sensitive motif (:data:`AMBIT_MOTIF`) brings its
    own ambit geometry and a wider fabric moat.
    """
    nominal = spec.core_of(spec.clip_at(*origin))
    if motif_name == AMBIT_MOTIF:
        motif, ambit_extra = generate_ambit_motif(rng, hotspot, nominal)
    else:
        motif = generate_motif(motif_name, rng, hotspot, nominal)
        ambit_extra = []
    ax, ay = anchor_of(motif, spec.core_side)
    core = Rect(ax, ay, ax + spec.core_side, ay + spec.core_side)
    window = spec.clip_for_core(core)
    # Keep fabric out of the *anchored core* so the core region holds the
    # motif alone — matching what evaluation extracts at this anchor.
    moat = AMBIT_MOAT if motif_name == AMBIT_MOTIF else FABRIC_SPACING
    keep_out = [core.expanded(moat)]
    ambit = fabric_rects(rng, window, keep_out)
    label = ClipLabel.HOTSPOT if hotspot else ClipLabel.NON_HOTSPOT
    return Clip.build(window, spec, motif + ambit_extra + ambit, label)


def build_fabric_clip(
    rng: np.random.Generator,
    spec: ClipSpec,
    origin: tuple[int, int] = (0, 0),
) -> Clip:
    """A motif-free nonhotspot clip of plain routing fabric.

    Real nonhotspot training populations are dominated by ordinary layout;
    fabric clips teach the kernels what "nothing interesting" looks like.
    The window is re-anchored at the fabric's canonical extraction anchor
    for the same alignment reason as :func:`build_training_clip`.
    """
    window = spec.clip_at(*origin)
    rects = fabric_rects(rng, window.expanded(spec.core_side))
    in_window = [r for r in rects if r.overlaps(window)]
    ax, ay = anchor_of(in_window, spec.core_side)
    core = Rect(ax, ay, ax + spec.core_side, ay + spec.core_side)
    return Clip.build(
        spec.clip_for_core(core), spec, rects, ClipLabel.NON_HOTSPOT
    )


@dataclass
class PlantedSite:
    """One motif planted into a layout.

    ``anchor`` is the canonical extraction anchor of the site's geometry —
    the lower-left corner of the core window a detector-extracted clip
    will use for this motif.
    """

    core: Rect
    motif: str
    hotspot: bool
    anchor: tuple[int, int] = (0, 0)


@dataclass
class TestingLayout:
    """A testing layout plus its planted ground truth."""

    layout: Layout
    window: Rect
    spec: ClipSpec
    sites: list[PlantedSite] = field(default_factory=list)

    def hotspot_cores(self) -> list[Rect]:
        """Ground-truth hotspot core windows (the actual hotspots)."""
        return [site.core for site in self.sites if site.hotspot]

    @property
    def area_um2(self) -> float:
        return self.window.area / 1e6


def harvest_training_clips(
    planted: "TestingLayout",
    fabric_clip_count: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> list[Clip]:
    """Cut labelled training clips out of a planted layout.

    This mirrors how the contest training archives were made: clips are
    extracted from real (here: generated) layouts at the sites' anchors,
    so the training distribution matches what evaluation-time clip
    extraction produces — including array sites, companion-contaminated
    cores and ambit-sensitive cases.  ``fabric_clip_count`` additional
    motif-free nonhotspot clips are cut at fabric anchors.
    """
    spec = planted.spec
    clips: list[Clip] = []
    for site in planted.sites:
        ax, ay = site.anchor
        core = Rect(ax, ay, ax + spec.core_side, ay + spec.core_side)
        label = ClipLabel.HOTSPOT if site.hotspot else ClipLabel.NON_HOTSPOT
        clips.append(planted.layout.cut_clip_at_core(spec, core, label=label))
    if fabric_clip_count:
        rng = rng or np.random.default_rng(0)
        site_zone = [site.core.expanded(spec.clip_side) for site in planted.sites]
        layer_rects = planted.layout.layer(1).rects
        candidates = [
            r for r in layer_rects if not any(r.overlaps(z) for z in site_zone)
        ]
        picks = rng.permutation(len(candidates))
        taken = 0
        margin = spec.ambit_margin + spec.core_side
        for index in picks:
            if taken >= fabric_clip_count:
                break
            rect = candidates[int(index)]
            core = Rect(
                rect.x0, rect.y0, rect.x0 + spec.core_side, rect.y0 + spec.core_side
            )
            inner = planted.window.expanded(-margin)
            if not inner.contains_rect(core):
                continue
            clip = planted.layout.cut_clip_at_core(
                spec, core, label=ClipLabel.NON_HOTSPOT
            )
            if clip.core_rects():
                clips.append(clip)
                taken += 1
    return clips


def build_testing_layout(
    rng: np.random.Generator,
    spec: ClipSpec,
    window: Rect,
    hotspot_count: int,
    decoy_count: int = 0,
    motif_names: Optional[Sequence[str]] = None,
    layer: int = 1,
    fabric_fill: float = 1.0,
) -> TestingLayout:
    """Build a fabric layout with planted hotspot (and decoy) motifs.

    Sites are placed on a coarse grid with at least one clip side of
    separation so truth cores never overlap; decoys are safe-regime motif
    instances that stress the false-alarm behaviour of a detector.
    """
    names = list(motif_names) if motif_names else [m.name for m in MOTIFS]
    total = hotspot_count + decoy_count
    bands = fabric_bands(rng, window, fabric_fill)
    # Every fourth hotspot becomes a periodic array spanning two cores
    # (comb across a wide window) when the comb motif is available, and
    # every second decoy draws from the borderline regime — these feed the
    # redundancy and false-alarm machinery the paper evaluates (Fig. 12's
    # strongly-overlapped reports come from such dense periodic regions).
    array_stride = 4

    # Candidate anchor grid for core windows: cores stay disjoint (the
    # jitter below is under half a core, the step is 2.5 cores) while clip
    # windows may overlap, as they do in real layouts.
    # 1.5-core steps keep jittered cores disjoint (jitter < core/2) while
    # packing enough sites into the fabric bands.
    step = spec.core_side + spec.core_side // 2
    # Clip windows extend one ambit margin beyond a site core; this margin
    # keeps every site's clip fully inside the layout window.
    margin = spec.ambit_margin + spec.core_side
    xs = list(range(window.x0 + margin, window.x1 - margin - spec.core_side, step))
    # Sites (plus their jitter head-room) must sit inside a fabric band —
    # real hotspots live in dense regions, and the extraction's
    # polygon-distribution requirements assume surrounding geometry.
    # A site's whole clip (core + ambit + jitter) must stay inside its
    # band, or the extraction's polygon-distribution check rejects the
    # site's candidates.
    clip_headroom = spec.ambit_margin + spec.core_side + spec.core_side // 2
    ys: list[int] = []
    for band_lo, band_hi in bands:
        y = max(band_lo + spec.ambit_margin, window.y0 + margin)
        while y + clip_headroom <= min(band_hi, window.y1 - margin):
            ys.append(y)
            y += step
    anchors = [(x, y) for x in xs for y in ys]
    if len(anchors) < total:
        raise DataError(
            f"window {window.width}x{window.height} fits only {len(anchors)} "
            f"sites, need {total}"
        )
    chosen = rng.permutation(len(anchors))[:total]

    sites: list[PlantedSite] = []
    motif_rects: list[Rect] = []
    keep_out: list[Rect] = []
    for rank, anchor_index in enumerate(chosen):
        x, y = anchors[int(anchor_index)]
        # Jitter within half a core so sites do not align with the grid.
        jx = x + int(rng.integers(0, spec.core_side // 2))
        jy = y + int(rng.integers(0, spec.core_side // 2))
        core = Rect(jx, jy, jx + spec.core_side, jy + spec.core_side)
        hotspot = rank < hotspot_count
        motif = names[int(rng.integers(0, len(names)))]
        ambit_extra: list[Rect] = []
        if motif == AMBIT_MOTIF:
            rects, ambit_extra = generate_ambit_motif(rng, hotspot, core)
        elif hotspot and rank % array_stride == 0 and "comb" in names:
            # A periodic comb array spanning two core widths.
            motif = "comb"
            wide = Rect(core.x0, core.y0, core.x1 + spec.core_side, core.y1)
            rects = generate_motif(motif, rng, True, wide)
        elif not hotspot and rank % 2 == 0:
            # Borderline decoy: prints, but barely.
            rects = generate_motif(motif, rng, "borderline", core)
        else:
            rects = generate_motif(motif, rng, hotspot, core)
        for site_core, site_rects in [(core, rects)]:
            site_rects = [
                r
                for r in site_rects
                if not any(r.overlaps(m) for m in motif_rects)
            ]
            if not site_rects:
                continue
            motif_rects.extend(site_rects)
            # Clear fabric from the window a detector-extracted core
            # anchored at this motif will cover, so that core holds motif
            # geometry alone — the clean-core convention training uses.
            ax, ay = anchor_of(site_rects, spec.core_side)
            anchored_core = Rect(ax, ay, ax + spec.core_side, ay + spec.core_side)
            moat = AMBIT_MOAT if motif == AMBIT_MOTIF else FABRIC_SPACING
            zone = site_core.union_bbox(anchored_core)
            for extra in ambit_extra:
                zone = zone.union_bbox(extra)
            keep_out.append(zone.expanded(moat))
            motif_rects.extend(ambit_extra)
            ambit_extra = []
            sites.append(PlantedSite(site_core, motif, hotspot, (ax, ay)))

    fabric = fabric_rects(rng, window, keep_out, bands=bands)
    layout = Layout()
    for rect in motif_rects + fabric:
        layout.add_rect(layer, rect)
    return TestingLayout(layout, window, spec, sites)
